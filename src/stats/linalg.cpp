#include "stats/linalg.h"

#include <cmath>
#include <stdexcept>

namespace hpcfail::stats {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("ragged initializer for Matrix");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix*: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix+: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix-: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::ScaledBy(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

double Dot(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("Dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  if (a.cols() != x.size()) throw std::invalid_argument("MatVec: shape mismatch");
  std::vector<double> out(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    out[i] = s;
  }
  return out;
}

namespace {

// Lower-triangular Cholesky factor L with A = L L^T.
Matrix CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Cholesky: matrix not square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (!(d > 0.0)) {
      throw std::runtime_error("Cholesky: matrix not positive definite");
    }
    l(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

std::vector<double> ForwardSub(const Matrix& l, const std::vector<double>& b) {
  const std::size_t n = l.rows();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  return y;
}

std::vector<double> BackSubT(const Matrix& l, const std::vector<double>& y) {
  // Solves L^T x = y given lower-triangular L.
  const std::size_t n = l.rows();
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

}  // namespace

std::vector<double> CholeskySolve(const Matrix& a,
                                  const std::vector<double>& b) {
  if (a.rows() != b.size()) {
    throw std::invalid_argument("CholeskySolve: shape mismatch");
  }
  const Matrix l = CholeskyFactor(a);
  return BackSubT(l, ForwardSub(l, b));
}

Matrix CholeskyInverse(const Matrix& a) {
  const Matrix l = CholeskyFactor(a);
  const std::size_t n = a.rows();
  Matrix inv(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> e(n, 0.0);
    e[j] = 1.0;
    const std::vector<double> col = BackSubT(l, ForwardSub(l, e));
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
  }
  return inv;
}

std::vector<double> LuSolve(Matrix a, std::vector<double> b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    throw std::invalid_argument("LuSolve: shape mismatch");
  }
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-300) {
      throw std::runtime_error("LuSolve: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) s -= a(ii, c) * x[c];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

}  // namespace hpcfail::stats
