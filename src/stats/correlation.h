// Correlation measures: Pearson (Section V ties usage to failures via
// Pearson's r), Spearman rank correlation, and autocorrelation.
#pragma once

#include <span>
#include <vector>

namespace hpcfail::stats {

struct CorrelationResult {
  double r = 0.0;
  double t = 0.0;        // t statistic for H0: rho == 0
  double p_value = 1.0;  // two-sided
  int n = 0;
  bool significant_95 = false;
};

// Pearson product-moment correlation with a t-test p-value. Requires
// xs.size() == ys.size() >= 3 and non-constant inputs; constant input yields
// r == 0 with p == 1 (no linear relationship measurable).
CorrelationResult PearsonCorrelation(std::span<const double> xs,
                                     std::span<const double> ys);

// Spearman rank correlation (Pearson on mid-ranks; ties averaged).
CorrelationResult SpearmanCorrelation(std::span<const double> xs,
                                      std::span<const double> ys);

// Sample autocorrelation of a series at lags 0..max_lag.
std::vector<double> Autocorrelation(std::span<const double> xs, int max_lag);

}  // namespace hpcfail::stats
