// Seeded random-number utilities. Everything in hpcfail that draws random
// numbers takes an explicit Rng so traces and resampling are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace hpcfail::stats {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [0, 1).
  double Uniform() { return uniform_(engine_); }
  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }
  // Uniform integer in [0, n).
  std::size_t Index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::Index(0)");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t Int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  bool Bernoulli(double p) { return Uniform() < p; }
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }
  int Poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }
  // Pareto-distributed value with minimum xm and shape alpha (heavy-tailed
  // user activity in the workload generator).
  double Pareto(double xm, double alpha) {
    return xm / std::pow(1.0 - Uniform(), 1.0 / alpha);
  }
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  // Derives an independent child stream (for per-subsystem generators).
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace hpcfail::stats
