// Small dense linear algebra, sized for GLM design matrices (thousands of
// rows, a handful of columns). Row-major storage, bounds-checked accessors in
// debug builds via assert.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace hpcfail::stats {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  // Construct from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  Matrix Transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix ScaledBy(double s) const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// x^T y for equal-length vectors.
double Dot(const std::vector<double>& x, const std::vector<double>& y);

// Matrix-vector product A x.
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x);

// Solves A x = b for symmetric positive-definite A via Cholesky.
// Throws std::runtime_error when A is not (numerically) SPD.
std::vector<double> CholeskySolve(const Matrix& a, const std::vector<double>& b);

// Inverse of an SPD matrix via Cholesky; used for the GLM covariance matrix.
Matrix CholeskyInverse(const Matrix& a);

// Solves A x = b for general square A via LU with partial pivoting.
// Throws std::runtime_error on (numerical) singularity.
std::vector<double> LuSolve(Matrix a, std::vector<double> b);

}  // namespace hpcfail::stats
