#include "stats/glm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special.h"

namespace hpcfail::stats {
namespace {

// Bounds keeping exp(eta) finite and weights positive through IRLS.
constexpr double kEtaMin = -30.0;
constexpr double kEtaMax = 30.0;
constexpr double kThetaMin = 1e-3;
constexpr double kThetaMax = 1e8;

struct Design {
  Matrix x;  // n x p including intercept column when requested
  std::vector<std::string> names;
  std::vector<double> log_exposure;
};

Design BuildDesign(const Matrix& x, std::span<const double> y,
                   const GlmOptions& opts) {
  const std::size_t n = y.size();
  if (x.rows() != n && !(x.rows() == 0 && x.cols() == 0)) {
    throw std::invalid_argument("glm: x rows must match y length");
  }
  if (n == 0) throw std::invalid_argument("glm: empty response");
  for (double v : y) {
    if (v < 0.0 || !std::isfinite(v)) {
      throw std::invalid_argument("glm: response must be finite and >= 0");
    }
  }
  const std::size_t k = x.cols();
  if (!opts.add_intercept && k == 0) {
    throw std::invalid_argument("glm: no covariates and no intercept");
  }
  Design d;
  const std::size_t p = k + (opts.add_intercept ? 1 : 0);
  d.x = Matrix(n, p);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t j = 0;
    if (opts.add_intercept) d.x(i, j++) = 1.0;
    for (std::size_t c = 0; c < k; ++c) d.x(i, j++) = x(i, c);
  }
  if (opts.add_intercept) d.names.push_back("(Intercept)");
  for (std::size_t c = 0; c < k; ++c) {
    if (c < opts.names.size()) {
      d.names.push_back(opts.names[c]);
    } else {
      d.names.push_back("x" + std::to_string(c));
    }
  }
  d.log_exposure.assign(n, 0.0);
  if (!opts.exposure.empty()) {
    if (opts.exposure.size() != n) {
      throw std::invalid_argument("glm: exposure length mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!(opts.exposure[i] > 0.0)) {
        throw std::invalid_argument("glm: exposure must be positive");
      }
      d.log_exposure[i] = std::log(opts.exposure[i]);
    }
  }
  return d;
}

double PoissonDeviance(std::span<const double> y,
                       std::span<const double> mu) {
  double dev = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double term = y[i] > 0.0 ? y[i] * std::log(y[i] / mu[i]) : 0.0;
    dev += 2.0 * (term - (y[i] - mu[i]));
  }
  return dev;
}

double NegBinDeviance(std::span<const double> y, std::span<const double> mu,
                      double theta) {
  double dev = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double term = y[i] > 0.0 ? y[i] * std::log(y[i] / mu[i]) : 0.0;
    dev += 2.0 * (term - (y[i] + theta) * std::log((y[i] + theta) /
                                                   (mu[i] + theta)));
  }
  return dev;
}

// One full IRLS solve for fixed family weights. `weight_fn(mu)` returns the
// IRLS weight for an observation with mean mu.
template <typename WeightFn>
bool Irls(const Design& d, std::span<const double> y, WeightFn weight_fn,
          int max_iterations, double tolerance, std::vector<double>& beta,
          std::vector<double>& mu, Matrix& fisher_inv, int& iterations) {
  const std::size_t n = y.size();
  const std::size_t p = d.x.cols();
  // Initialize the working response from the data itself.
  std::vector<double> eta(n);
  for (std::size_t i = 0; i < n; ++i) {
    eta[i] = std::log(std::max(y[i], 0.1));
  }
  beta.assign(p, 0.0);
  mu.assign(n, 0.0);
  bool converged = false;
  double prev_dev = std::numeric_limits<double>::infinity();
  for (iterations = 0; iterations < max_iterations; ++iterations) {
    for (std::size_t i = 0; i < n; ++i) {
      const double e = std::clamp(eta[i], kEtaMin, kEtaMax);
      mu[i] = std::exp(e);
    }
    // Weighted least squares: solve (X^T W X) beta = X^T W z.
    Matrix xtwx(p, p);
    std::vector<double> xtwz(p, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double w = weight_fn(mu[i]);
      const double z =
          (eta[i] - d.log_exposure[i]) + (y[i] - mu[i]) / mu[i];
      for (std::size_t a = 0; a < p; ++a) {
        const double xa = d.x(i, a);
        if (xa == 0.0) continue;
        xtwz[a] += w * xa * z;
        for (std::size_t b = a; b < p; ++b) {
          xtwx(a, b) += w * xa * d.x(i, b);
        }
      }
    }
    for (std::size_t a = 0; a < p; ++a) {
      for (std::size_t b = 0; b < a; ++b) xtwx(a, b) = xtwx(b, a);
    }
    // Tiny ridge keeps near-collinear designs solvable without visibly
    // biasing estimates.
    for (std::size_t a = 0; a < p; ++a) xtwx(a, a) += 1e-10;
    std::vector<double> new_beta = CholeskySolve(xtwx, xtwz);
    for (std::size_t i = 0; i < n; ++i) {
      double e = d.log_exposure[i];
      for (std::size_t a = 0; a < p; ++a) e += d.x(i, a) * new_beta[a];
      eta[i] = std::clamp(e, kEtaMin, kEtaMax);
    }
    for (std::size_t i = 0; i < n; ++i) mu[i] = std::exp(eta[i]);
    const double dev = PoissonDeviance(y, mu);
    beta = std::move(new_beta);
    if (std::abs(dev - prev_dev) <
        tolerance * (std::abs(dev) + tolerance)) {
      converged = true;
      ++iterations;
      break;
    }
    prev_dev = dev;
  }
  // Fisher information at the final estimate (for standard errors).
  const std::size_t pp = d.x.cols();
  Matrix xtwx(pp, pp);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weight_fn(mu[i]);
    for (std::size_t a = 0; a < pp; ++a) {
      for (std::size_t b = a; b < pp; ++b) {
        xtwx(a, b) += w * d.x(i, a) * d.x(i, b);
      }
    }
  }
  for (std::size_t a = 0; a < pp; ++a) {
    for (std::size_t b = 0; b < a; ++b) xtwx(a, b) = xtwx(b, a);
  }
  for (std::size_t a = 0; a < pp; ++a) xtwx(a, a) += 1e-10;
  fisher_inv = CholeskyInverse(xtwx);
  return converged;
}

std::vector<GlmCoefficient> MakeCoefficients(const Design& d,
                                             const std::vector<double>& beta,
                                             const Matrix& fisher_inv) {
  std::vector<GlmCoefficient> out;
  out.reserve(beta.size());
  for (std::size_t j = 0; j < beta.size(); ++j) {
    GlmCoefficient c;
    c.name = d.names[j];
    c.estimate = beta[j];
    c.std_error = std::sqrt(std::max(0.0, fisher_inv(j, j)));
    if (c.std_error > 0.0) {
      c.z = c.estimate / c.std_error;
      c.p_value = 2.0 * NormalSf(std::abs(c.z));
    }
    out.push_back(std::move(c));
  }
  return out;
}

// Intercept-only deviance, used as the null deviance.
double NullDeviancePoisson(std::span<const double> y,
                           const std::vector<double>& log_exposure) {
  double sum_y = 0.0, sum_e = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    sum_y += y[i];
    sum_e += std::exp(log_exposure[i]);
  }
  const double rate = sum_y / sum_e;
  std::vector<double> mu(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    mu[i] = std::max(1e-300, rate * std::exp(log_exposure[i]));
  }
  return PoissonDeviance(y, mu);
}

// ML theta update by Newton iteration on the NB profile likelihood.
double UpdateTheta(std::span<const double> y, std::span<const double> mu,
                   double theta) {
  for (int iter = 0; iter < 50; ++iter) {
    double grad = 0.0, hess = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      grad += Digamma(y[i] + theta) - Digamma(theta) + std::log(theta) + 1.0 -
              std::log(theta + mu[i]) - (y[i] + theta) / (theta + mu[i]);
      hess += Trigamma(y[i] + theta) - Trigamma(theta) + 1.0 / theta -
              2.0 / (theta + mu[i]) +
              (y[i] + theta) / ((theta + mu[i]) * (theta + mu[i]));
    }
    if (hess >= 0.0) {
      // Newton step unusable (likelihood locally convex); nudge along the
      // gradient instead.
      theta = std::clamp(theta * (grad > 0.0 ? 2.0 : 0.5), kThetaMin,
                         kThetaMax);
      continue;
    }
    const double step = grad / hess;
    double next = theta - step;
    if (next <= 0.0) next = theta / 2.0;
    next = std::clamp(next, kThetaMin, kThetaMax);
    if (std::abs(next - theta) < 1e-8 * (theta + 1e-8)) return next;
    theta = next;
  }
  return theta;
}

}  // namespace

double PoissonLogLikelihood(std::span<const double> y,
                            std::span<const double> mu) {
  if (y.size() != mu.size()) {
    throw std::invalid_argument("PoissonLogLikelihood: size mismatch");
  }
  double ll = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double m = std::max(mu[i], 1e-300);
    ll += y[i] * std::log(m) - m - LogGamma(y[i] + 1.0);
  }
  return ll;
}

double NegativeBinomialLogLikelihood(std::span<const double> y,
                                     std::span<const double> mu,
                                     double theta) {
  if (y.size() != mu.size()) {
    throw std::invalid_argument("NegBinLogLikelihood: size mismatch");
  }
  double ll = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double m = std::max(mu[i], 1e-300);
    ll += LogGamma(y[i] + theta) - LogGamma(theta) - LogGamma(y[i] + 1.0) +
          theta * std::log(theta) + y[i] * std::log(m) -
          (theta + y[i]) * std::log(theta + m);
  }
  return ll;
}

double GlmFit::Predict(std::span<const double> row, double exposure) const {
  std::size_t j = 0;
  double eta = std::log(exposure);
  if (!coefficients.empty() && coefficients[0].name == "(Intercept)") {
    eta += coefficients[0].estimate;
    j = 1;
  }
  if (row.size() != coefficients.size() - j) {
    throw std::invalid_argument("Predict: covariate count mismatch");
  }
  for (std::size_t c = 0; c < row.size(); ++c) {
    eta += coefficients[j + c].estimate * row[c];
  }
  return std::exp(std::clamp(eta, kEtaMin, kEtaMax));
}

const GlmCoefficient& GlmFit::coefficient(const std::string& name) const {
  for (const GlmCoefficient& c : coefficients) {
    if (c.name == name) return c;
  }
  throw std::out_of_range("no coefficient named " + name);
}

GlmFit FitPoisson(const Matrix& x, std::span<const double> y,
                  const GlmOptions& opts) {
  const Design d = BuildDesign(x, y, opts);
  std::vector<double> beta, mu;
  Matrix fisher_inv;
  int iterations = 0;
  const bool converged =
      Irls(d, y, [](double m) { return m; }, opts.max_iterations,
           opts.tolerance, beta, mu, fisher_inv, iterations);
  GlmFit fit;
  fit.family = GlmFamily::kPoisson;
  fit.coefficients = MakeCoefficients(d, beta, fisher_inv);
  fit.deviance = PoissonDeviance(y, mu);
  fit.null_deviance = NullDeviancePoisson(y, d.log_exposure);
  fit.log_likelihood = PoissonLogLikelihood(y, mu);
  fit.iterations = iterations;
  fit.converged = converged;
  fit.n = y.size();
  return fit;
}

GlmFit FitNegativeBinomial(const Matrix& x, std::span<const double> y,
                           const GlmOptions& opts) {
  const Design d = BuildDesign(x, y, opts);
  // Stage 0: Poisson fit provides initial means.
  std::vector<double> beta, mu;
  Matrix fisher_inv;
  int iterations = 0;
  Irls(d, y, [](double m) { return m; }, opts.max_iterations, opts.tolerance,
       beta, mu, fisher_inv, iterations);

  // Moment start for theta: var(y) = mu + mu^2/theta around fitted means.
  double mean_mu = 0.0, excess = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    mean_mu += mu[i];
    const double r = y[i] - mu[i];
    excess += r * r - mu[i];
  }
  mean_mu /= static_cast<double>(y.size());
  double theta = 10.0;
  if (excess > 0.0) {
    double mu2 = 0.0;
    for (double m : mu) mu2 += m * m;
    theta = std::clamp(mu2 / excess, kThetaMin, kThetaMax);
  }

  bool converged = false;
  int total_iterations = iterations;
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (int outer = 0; outer < 50; ++outer) {
    theta = UpdateTheta(y, mu, theta);
    const double t = theta;
    int inner = 0;
    const bool beta_ok =
        Irls(d, y, [t](double m) { return m / (1.0 + m / t); },
             opts.max_iterations, opts.tolerance, beta, mu, fisher_inv,
             inner);
    total_iterations += inner;
    const double ll = NegativeBinomialLogLikelihood(y, mu, theta);
    if (beta_ok && std::abs(ll - prev_ll) < opts.tolerance *
                                                (std::abs(ll) + 1.0)) {
      converged = true;
      break;
    }
    prev_ll = ll;
  }

  GlmFit fit;
  fit.family = GlmFamily::kNegativeBinomial;
  fit.coefficients = MakeCoefficients(d, beta, fisher_inv);
  fit.deviance = NegBinDeviance(y, mu, theta);
  {
    // Null deviance: intercept-only NB model at the same theta.
    double sum_y = 0.0, sum_e = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      sum_y += y[i];
      sum_e += std::exp(d.log_exposure[i]);
    }
    const double rate = sum_y / sum_e;
    std::vector<double> mu0(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
      mu0[i] = std::max(1e-300, rate * std::exp(d.log_exposure[i]));
    }
    fit.null_deviance = NegBinDeviance(y, mu0, theta);
  }
  fit.log_likelihood = NegativeBinomialLogLikelihood(y, mu, theta);
  fit.theta = theta;
  fit.iterations = total_iterations;
  fit.converged = converged;
  fit.n = y.size();
  return fit;
}

}  // namespace hpcfail::stats
