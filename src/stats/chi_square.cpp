#include "stats/chi_square.h"

#include <stdexcept>
#include <vector>

#include "stats/special.h"

namespace hpcfail::stats {

ChiSquareResult ChiSquareGoodnessOfFit(std::span<const double> observed,
                                       std::span<const double> expected) {
  if (observed.size() != expected.size()) {
    throw std::invalid_argument("observed/expected size mismatch");
  }
  ChiSquareResult out;
  int used = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) {
      if (observed[i] > 0.0) {
        throw std::invalid_argument(
            "observed events in a cell with zero expectation");
      }
      continue;
    }
    const double d = observed[i] - expected[i];
    out.statistic += d * d / expected[i];
    ++used;
  }
  if (used < 2) throw std::invalid_argument("need at least two usable cells");
  out.df = static_cast<double>(used - 1);
  out.p_value = ChiSquareSf(out.statistic, out.df);
  out.significant_99 = out.p_value < 0.01;
  return out;
}

ChiSquareResult ChiSquareEqualRates(std::span<const double> counts,
                                    std::span<const double> exposures) {
  if (counts.size() != exposures.size()) {
    throw std::invalid_argument("counts/exposures size mismatch");
  }
  double total_count = 0.0, total_exposure = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] < 0.0 || exposures[i] < 0.0) {
      throw std::invalid_argument("negative count or exposure");
    }
    if (exposures[i] == 0.0) continue;
    total_count += counts[i];
    total_exposure += exposures[i];
  }
  if (total_exposure == 0.0) {
    throw std::invalid_argument("all exposures are zero");
  }
  const double rate = total_count / total_exposure;
  std::vector<double> obs, exp;
  obs.reserve(counts.size());
  exp.reserve(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (exposures[i] == 0.0) continue;
    obs.push_back(counts[i]);
    exp.push_back(rate * exposures[i]);
  }
  return ChiSquareGoodnessOfFit(obs, exp);
}

ChiSquareResult ChiSquareEqualRates(std::span<const double> counts) {
  std::vector<double> exposures(counts.size(), 1.0);
  return ChiSquareEqualRates(counts, exposures);
}

}  // namespace hpcfail::stats
