#include "stats/anova.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/special.h"

namespace hpcfail::stats {

LikelihoodRatioResult LikelihoodRatioTest(const GlmFit& full,
                                          const GlmFit& reduced) {
  if (full.family != reduced.family) {
    throw std::invalid_argument("LRT: families differ");
  }
  if (full.n != reduced.n) {
    throw std::invalid_argument("LRT: sample sizes differ");
  }
  if (full.coefficients.size() < reduced.coefficients.size()) {
    throw std::invalid_argument("LRT: full model has fewer parameters");
  }
  LikelihoodRatioResult out;
  out.statistic =
      std::max(0.0, 2.0 * (full.log_likelihood - reduced.log_likelihood));
  out.df = static_cast<double>(full.coefficients.size() -
                               reduced.coefficients.size());
  if (out.df == 0.0) {
    out.p_value = 1.0;
    return out;
  }
  out.p_value = ChiSquareSf(out.statistic, out.df);
  out.significant_99 = out.p_value < 0.01;
  return out;
}

LikelihoodRatioResult PoissonSaturatedVsCommonRate(
    std::span<const double> counts, std::span<const double> exposures) {
  if (counts.size() != exposures.size()) {
    throw std::invalid_argument("SaturatedVsCommonRate: size mismatch");
  }
  std::vector<double> y, e;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] < 0.0 || exposures[i] < 0.0) {
      throw std::invalid_argument("negative count or exposure");
    }
    if (exposures[i] == 0.0) {
      if (counts[i] > 0.0) {
        throw std::invalid_argument("events with zero exposure");
      }
      continue;
    }
    y.push_back(counts[i]);
    e.push_back(exposures[i]);
  }
  if (y.size() < 2) {
    throw std::invalid_argument("need at least two groups with exposure");
  }
  double sum_y = 0.0, sum_e = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    sum_y += y[i];
    sum_e += e[i];
  }
  const double common_rate = sum_y / sum_e;
  // Saturated model: mu_i = y_i (rate y_i / e_i). Common: mu_i = rate * e_i.
  double ll_sat = 0.0, ll_common = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double mu_sat = std::max(y[i], 1e-300);
    const double mu_common = std::max(common_rate * e[i], 1e-300);
    if (y[i] > 0.0) ll_sat += y[i] * std::log(mu_sat);
    ll_sat += -y[i] - LogGamma(y[i] + 1.0);  // mu_sat == y_i
    ll_common += y[i] * std::log(mu_common) - mu_common - LogGamma(y[i] + 1.0);
  }
  LikelihoodRatioResult out;
  out.statistic = std::max(0.0, 2.0 * (ll_sat - ll_common));
  out.df = static_cast<double>(y.size() - 1);
  out.p_value = ChiSquareSf(out.statistic, out.df);
  out.significant_99 = out.p_value < 0.01;
  return out;
}

}  // namespace hpcfail::stats
