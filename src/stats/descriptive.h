// Descriptive statistics over spans of doubles.
#pragma once

#include <span>
#include <vector>

namespace hpcfail::stats {

double Mean(std::span<const double> xs);
// Sample variance (n-1 denominator); returns 0 for n < 2.
double Variance(std::span<const double> xs);
// Population variance (n denominator); returns 0 for n < 1.
double PopulationVariance(std::span<const double> xs);
double StdDev(std::span<const double> xs);
double Min(std::span<const double> xs);
double Max(std::span<const double> xs);
double Sum(std::span<const double> xs);

// Linear-interpolated quantile, q in [0,1]; median == Quantile(xs, 0.5).
// Copies and sorts internally.
double Quantile(std::span<const double> xs, double q);
double Median(std::span<const double> xs);

// Equal-width histogram over [lo, hi] with `bins` buckets; values outside the
// range are clamped into the edge buckets.
std::vector<int> Histogram(std::span<const double> xs, double lo, double hi,
                           int bins);

}  // namespace hpcfail::stats
