#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hpcfail::stats {

double Sum(std::span<const double> xs) {
  // Neumaier summation: robust even when the running sum shrinks back below
  // earlier terms (traces mix huge counts with tiny probabilities).
  double sum = 0.0, comp = 0.0;
  for (double x : xs) {
    const double t = sum + x;
    if (std::abs(sum) >= std::abs(x)) {
      comp += (sum - t) + x;
    } else {
      comp += (x - t) + sum;
    }
    sum = t;
  }
  return sum + comp;
}

double Mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("Mean of empty span");
  return Sum(xs) / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double PopulationVariance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Min(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("Min of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("Max of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double Quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("Quantile of empty span");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Quantile q not in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Median(std::span<const double> xs) { return Quantile(xs, 0.5); }

std::vector<int> Histogram(std::span<const double> xs, double lo, double hi,
                           int bins) {
  if (bins < 1 || !(hi > lo)) {
    throw std::invalid_argument("Histogram needs bins >= 1 and hi > lo");
  }
  std::vector<int> out(static_cast<std::size_t>(bins), 0);
  const double width = (hi - lo) / bins;
  for (double x : xs) {
    int b = static_cast<int>(std::floor((x - lo) / width));
    b = std::clamp(b, 0, bins - 1);
    ++out[static_cast<std::size_t>(b)];
  }
  return out;
}

}  // namespace hpcfail::stats
