// Generalized linear models with a log link, fitted by iteratively
// reweighted least squares (IRLS): Poisson regression and negative binomial
// (NB2) regression with maximum-likelihood dispersion. These are the models
// the paper uses for Sections VI, VIII and X (Tables II and III).
//
// The coefficient table mirrors R's summary(glm(...)): estimate, standard
// error (from the Fisher information at convergence), Wald z value, and the
// two-sided p-value of H0: coefficient == 0.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/linalg.h"

namespace hpcfail::stats {

struct GlmCoefficient {
  std::string name;
  double estimate = 0.0;
  double std_error = 0.0;
  double z = 0.0;
  double p_value = 1.0;
};

enum class GlmFamily { kPoisson, kNegativeBinomial };

struct GlmFit {
  GlmFamily family = GlmFamily::kPoisson;
  std::vector<GlmCoefficient> coefficients;  // intercept first when present
  double deviance = 0.0;
  double null_deviance = 0.0;  // intercept-only model's deviance
  double log_likelihood = 0.0;
  double theta = 0.0;  // NB dispersion; unused (0) for Poisson
  int iterations = 0;
  bool converged = false;
  std::size_t n = 0;

  // Fitted mean for a covariate row (same order/columns as the fit, without
  // the intercept column; exposure multiplies the mean).
  double Predict(std::span<const double> row, double exposure = 1.0) const;

  const GlmCoefficient& coefficient(const std::string& name) const;
};

struct GlmOptions {
  bool add_intercept = true;
  // Per-observation exposure; fitted mean = exposure * exp(x beta). Empty
  // means exposure 1 everywhere.
  std::vector<double> exposure;
  // Covariate names (excluding intercept). Filled with x0, x1, ... if empty.
  std::vector<std::string> names;
  int max_iterations = 100;
  double tolerance = 1e-9;
};

// Fits a Poisson GLM with log link. `x` holds one row per observation and
// one column per covariate (no intercept column; set opts.add_intercept).
// `y` holds the non-negative response counts.
GlmFit FitPoisson(const Matrix& x, std::span<const double> y,
                  const GlmOptions& opts = {});

// Fits a negative binomial (NB2) GLM with log link. Theta (the dispersion
// parameter; variance = mu + mu^2/theta) is estimated by ML, alternating
// IRLS for beta with Newton steps on theta, like R's MASS::glm.nb.
GlmFit FitNegativeBinomial(const Matrix& x, std::span<const double> y,
                           const GlmOptions& opts = {});

// Poisson log-likelihood of counts y under means mu (used by ANOVA too).
double PoissonLogLikelihood(std::span<const double> y,
                            std::span<const double> mu);

// NB2 log-likelihood under means mu and dispersion theta.
double NegativeBinomialLogLikelihood(std::span<const double> y,
                                     std::span<const double> mu, double theta);

}  // namespace hpcfail::stats
