// Percentile bootstrap confidence intervals for arbitrary statistics.
//
// Split into two stages so the expensive one is cacheable: BootstrapReplicates
// computes the (estimate, sorted replicate statistics) table — all the
// resampling work — and ResultFromTable reads a confidence interval off it.
// The table depends only on (sample, statistic, rng state, resamples), not on
// the confidence level, which is exactly the shape the engine's bootstrap
// artifact cache persists: a warm run decodes the table and re-reads the
// percentiles. BootstrapCi composes the two and is byte-for-byte the original
// single-call API.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace hpcfail::stats {

struct BootstrapResult {
  double estimate = 0.0;  // statistic on the original sample
  double ci_low = 0.0;
  double ci_high = 0.0;
  int resamples = 0;
};

// The resampling stage's output: the statistic on the original sample plus
// every replicate's statistic, sorted ascending. Confidence-free, so one
// table serves any confidence level.
struct BootstrapTable {
  double estimate = 0.0;
  std::vector<double> replicates;  // sorted ascending, size == resamples
};

// Runs the resampling: derives one child seed per replicate from `rng`
// (serially, so the seeds depend only on the caller's Rng state), fans the
// replicates out in parallel (core::SetDefaultThreadCount) on independent
// RNG streams, and sorts the replicate statistics. Results depend only on
// the seed — never on the thread count — and `statistic` must be safe to
// call concurrently. Throws std::invalid_argument on an empty sample or
// resamples < 2.
BootstrapTable BootstrapReplicates(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    int resamples);

// Reads the percentile interval for `confidence` off a replicate table.
// Throws std::invalid_argument when confidence is outside (0,1) or the
// table holds fewer than 2 replicates.
BootstrapResult ResultFromTable(const BootstrapTable& table,
                                double confidence);

// Percentile bootstrap for a statistic of a single sample.
// `statistic` receives a resampled vector (same size as `sample`).
// Equivalent to ResultFromTable(BootstrapReplicates(...), confidence).
BootstrapResult BootstrapCi(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    int resamples = 1000, double confidence = 0.95);

}  // namespace hpcfail::stats
