// Percentile bootstrap confidence intervals for arbitrary statistics.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace hpcfail::stats {

struct BootstrapResult {
  double estimate = 0.0;  // statistic on the original sample
  double ci_low = 0.0;
  double ci_high = 0.0;
  int resamples = 0;
};

// Percentile bootstrap for a statistic of a single sample.
// `statistic` receives a resampled vector (same size as `sample`).
// Replicates run in parallel (core::SetDefaultThreadCount) on independent
// RNG streams derived from `rng`, so results depend only on the seed — never
// on the thread count — and `statistic` must be safe to call concurrently.
BootstrapResult BootstrapCi(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    int resamples = 1000, double confidence = 0.95);

}  // namespace hpcfail::stats
