#include "stats/special.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace hpcfail::stats {
namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();
constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;
constexpr int kMaxIter = 500;

// Lower incomplete gamma by series expansion; accurate for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIter; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Upper incomplete gamma by Lentz continued fraction; accurate for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

// Continued fraction for the incomplete beta (Lentz's method).
double BetaContinuedFraction(double x, double a, double b) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) {
  if (!(x > 0.0)) throw std::domain_error("LogGamma requires x > 0");
#if defined(__GLIBC__) || defined(__APPLE__)
  // std::lgamma writes the process-global `signgam` on every call, so two
  // threads rendering reports concurrently race on it (TSan flags libm's
  // write). The reentrant variant returns the sign through a pointer and
  // never touches the global; for x > 0 the value is identical.
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double Digamma(double x) {
  if (!(x > 0.0)) throw std::domain_error("Digamma requires x > 0");
  // Shift into the asymptotic region, then use the Stirling-type expansion.
  double result = 0.0;
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

double Trigamma(double x) {
  if (!(x > 0.0)) throw std::domain_error("Trigamma requires x > 0");
  double result = 0.0;
  while (x < 10.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += inv * (1.0 + 0.5 * inv +
                   inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 / 42.0)));
  return result;
}

double RegularizedGammaP(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::domain_error("RegularizedGammaP requires a > 0, x >= 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::domain_error("RegularizedGammaQ requires a > 0, x >= 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double RegularizedBeta(double x, double a, double b) {
  if (!(a > 0.0) || !(b > 0.0) || x < 0.0 || x > 1.0) {
    throw std::domain_error("RegularizedBeta requires a,b > 0 and x in [0,1]");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to stay in the fast-converging region.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(x, a, b) / a;
  }
  return 1.0 - front * BetaContinuedFraction(1.0 - x, b, a) / b;
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double NormalSf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::domain_error("NormalQuantile requires p in (0,1)");
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double ChiSquareCdf(double x, double k) {
  if (x < 0.0) return 0.0;
  return RegularizedGammaP(k / 2.0, x / 2.0);
}

double ChiSquareSf(double x, double k) {
  if (x < 0.0) return 1.0;
  return RegularizedGammaQ(k / 2.0, x / 2.0);
}

double StudentTTwoSidedP(double t, double v) {
  if (!(v > 0.0)) throw std::domain_error("StudentT requires v > 0");
  const double x = v / (v + t * t);
  return RegularizedBeta(x, v / 2.0, 0.5);
}

double FDistSf(double x, double d1, double d2) {
  if (x <= 0.0) return 1.0;
  return RegularizedBeta(d2 / (d2 + d1 * x), d2 / 2.0, d1 / 2.0);
}

double PoissonCdf(int k, double lambda) {
  if (k < 0) return 0.0;
  if (lambda == 0.0) return 1.0;
  return RegularizedGammaQ(static_cast<double>(k) + 1.0, lambda);
}

}  // namespace hpcfail::stats
