// Survival analysis: Kaplan-Meier estimation with right-censoring and the
// log-rank test. Time-to-next-failure is the survival-analysis view of the
// paper's window probabilities: P(failure within W | trigger) is one point
// of 1 - S(W); the KM curve gives every window length at once, and the
// log-rank test compares trigger types over the whole curve rather than at
// one horizon.
#pragma once

#include <span>
#include <vector>

namespace hpcfail::stats {

// One observation: time to the event, or time to censoring.
struct SurvivalObservation {
  double time = 0.0;
  bool event = true;  // false = right-censored at `time`
};

// One step of the Kaplan-Meier curve.
struct SurvivalPoint {
  double time = 0.0;
  double survival = 1.0;   // S(t) just after `time`
  double std_error = 0.0;  // Greenwood standard error of S(t)
  int at_risk = 0;         // subjects at risk just before `time`
  int events = 0;          // events at `time`
};

class KaplanMeier {
 public:
  // Observations may be unsorted; times must be >= 0 and finite.
  explicit KaplanMeier(std::vector<SurvivalObservation> observations);

  const std::vector<SurvivalPoint>& curve() const { return curve_; }

  // S(t): survival probability at time t (step function, right-continuous).
  double Survival(double t) const;
  // Median survival time; +inf when the curve never drops below 0.5.
  double MedianSurvival() const;
  std::size_t num_observations() const { return n_; }
  std::size_t num_events() const { return events_; }

 private:
  std::vector<SurvivalPoint> curve_;
  std::size_t n_ = 0;
  std::size_t events_ = 0;
};

// Log-rank test of H0: both groups share one survival function.
struct LogRankResult {
  double statistic = 0.0;  // chi-square with 1 df
  double p_value = 1.0;
  bool significant_99 = false;
};

LogRankResult LogRankTest(std::span<const SurvivalObservation> group1,
                          std::span<const SurvivalObservation> group2);

}  // namespace hpcfail::stats
