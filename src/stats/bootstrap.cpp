#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "core/parallel.h"
#include "obs/span.h"

namespace hpcfail::stats {

BootstrapTable BootstrapReplicates(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    int resamples) {
  if (sample.empty()) throw std::invalid_argument("BootstrapCi: empty sample");
  if (resamples < 2) throw std::invalid_argument("BootstrapCi: resamples < 2");
  obs::ScopedTimer timer("bootstrap");
  BootstrapTable table;
  table.estimate = statistic(sample);
  // Derive one child seed per replicate from the caller's stream (serially,
  // so the seeds depend only on the caller's Rng state), then fan the
  // replicates out. Each replicate draws from its own stream, which makes
  // the resampled statistics identical for every thread count.
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(resamples));
  for (std::uint64_t& s : seeds) s = rng.engine()() ^ 0x9e3779b97f4a7c15ULL;
  table.replicates.resize(static_cast<std::size_t>(resamples));
  core::ParallelFor(
      static_cast<std::size_t>(resamples), [&](std::size_t b) {
        Rng replicate_rng(seeds[b]);
        std::vector<double> resample(sample.size());
        for (double& v : resample) v = sample[replicate_rng.Index(sample.size())];
        table.replicates[b] = statistic(resample);
      });
  std::sort(table.replicates.begin(), table.replicates.end());
  return table;
}

BootstrapResult ResultFromTable(const BootstrapTable& table,
                                double confidence) {
  if (table.replicates.size() < 2) {
    throw std::invalid_argument("BootstrapCi: resamples < 2");
  }
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    throw std::invalid_argument("BootstrapCi: confidence not in (0,1)");
  }
  const std::vector<double>& stats = table.replicates;
  BootstrapResult out;
  out.estimate = table.estimate;
  out.resamples = static_cast<int>(stats.size());
  const double alpha = (1.0 - confidence) / 2.0;
  auto at = [&stats](double q) {
    const double pos = q * static_cast<double>(stats.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return stats[lo] * (1.0 - frac) + stats[hi] * frac;
  };
  out.ci_low = at(alpha);
  out.ci_high = at(1.0 - alpha);
  return out;
}

BootstrapResult BootstrapCi(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic, Rng& rng,
    int resamples, double confidence) {
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    // Checked before the resampling runs, matching the original single-call
    // API (a bad confidence must not cost a full replicate pass).
    throw std::invalid_argument("BootstrapCi: confidence not in (0,1)");
  }
  return ResultFromTable(BootstrapReplicates(sample, statistic, rng, resamples),
                         confidence);
}

}  // namespace hpcfail::stats
