#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/special.h"

namespace hpcfail::stats {
namespace {

std::vector<double> MidRanks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&xs](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

CorrelationResult PearsonCorrelation(std::span<const double> xs,
                                     std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("Pearson: size mismatch");
  }
  if (xs.size() < 3) {
    throw std::invalid_argument("Pearson: need at least 3 points");
  }
  const auto n = static_cast<double>(xs.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  CorrelationResult out;
  out.n = static_cast<int>(xs.size());
  if (sxx == 0.0 || syy == 0.0) return out;  // constant input
  out.r = sxy / std::sqrt(sxx * syy);
  out.r = std::clamp(out.r, -1.0, 1.0);
  const double df = n - 2.0;
  if (std::abs(out.r) >= 1.0) {
    out.t = std::numeric_limits<double>::infinity();
    out.p_value = 0.0;
  } else {
    out.t = out.r * std::sqrt(df / (1.0 - out.r * out.r));
    out.p_value = StudentTTwoSidedP(out.t, df);
  }
  out.significant_95 = out.p_value < 0.05;
  return out;
}

CorrelationResult SpearmanCorrelation(std::span<const double> xs,
                                      std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("Spearman: size mismatch");
  }
  const std::vector<double> rx = MidRanks(xs);
  const std::vector<double> ry = MidRanks(ys);
  return PearsonCorrelation(rx, ry);
}

std::vector<double> Autocorrelation(std::span<const double> xs, int max_lag) {
  if (xs.empty()) throw std::invalid_argument("Autocorrelation: empty input");
  if (max_lag < 0 || static_cast<std::size_t>(max_lag) >= xs.size()) {
    throw std::invalid_argument("Autocorrelation: bad max_lag");
  }
  const auto n = static_cast<double>(xs.size());
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= n;
  double denom = 0.0;
  for (double x : xs) denom += (x - mean) * (x - mean);
  std::vector<double> out(static_cast<std::size_t>(max_lag) + 1, 0.0);
  if (denom == 0.0) {
    out[0] = 1.0;
    return out;
  }
  for (int lag = 0; lag <= max_lag; ++lag) {
    double num = 0.0;
    for (std::size_t i = 0; i + static_cast<std::size_t>(lag) < xs.size(); ++i) {
      num += (xs[i] - mean) * (xs[i + static_cast<std::size_t>(lag)] - mean);
    }
    out[static_cast<std::size_t>(lag)] = num / denom;
  }
  return out;
}

}  // namespace hpcfail::stats
