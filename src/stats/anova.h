// Likelihood-ratio (deviance) tests between nested models. Section VI of the
// paper fits a saturated Poisson model (every user has its own failure rate)
// against a common-rate model and applies an ANOVA test; Section X compares
// full and reduced regression models.
#pragma once

#include <span>

#include "stats/glm.h"

namespace hpcfail::stats {

struct LikelihoodRatioResult {
  double statistic = 0.0;  // 2 * (ll_full - ll_reduced) == deviance drop
  double df = 0.0;
  double p_value = 1.0;
  bool significant_99 = false;
};

// Generic LRT between two nested GLM fits of the same family on the same
// data. `full` must have at least as many parameters as `reduced`.
LikelihoodRatioResult LikelihoodRatioTest(const GlmFit& full,
                                          const GlmFit& reduced);

// The Section-VI test: k groups with event counts and exposures. The
// saturated Poisson model gives each group its own rate; the reduced model a
// common rate. Returns the LRT with df = k - 1. Groups with zero exposure
// are excluded.
LikelihoodRatioResult PoissonSaturatedVsCommonRate(
    std::span<const double> counts, std::span<const double> exposures);

}  // namespace hpcfail::stats
