// Maximum-likelihood fitting of the lifetime distributions the failure-
// modeling literature applies to inter-arrival times (the "statistical
// models" the paper positions itself against, Section I): exponential,
// Weibull, lognormal and gamma, with Kolmogorov-Smirnov goodness-of-fit and
// AIC-based model selection.
//
// A Weibull shape < 1 (decreasing hazard) is the classical signature of the
// clustering the paper studies directly: after surviving a while, a node is
// *less* likely to fail — equivalently, failures bunch together.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace hpcfail::stats {

enum class Distribution : std::uint8_t {
  kExponential,  // rate lambda
  kWeibull,      // shape k, scale lambda
  kLogNormal,    // mu, sigma of log
  kGamma,        // shape k, rate beta
};
std::string_view ToString(Distribution d);

struct DistributionFit {
  Distribution distribution = Distribution::kExponential;
  // Parameter meaning depends on the distribution, see the enum comments.
  double param1 = 0.0;
  double param2 = 0.0;
  double log_likelihood = 0.0;
  double aic = 0.0;          // 2k - 2 ln L
  double ks_statistic = 0.0; // sup |F_empirical - F_fitted|
  double ks_p_value = 0.0;   // asymptotic Kolmogorov p-value
  std::size_t n = 0;

  // CDF of the fitted distribution at x.
  double Cdf(double x) const;
  double Mean() const;
};

// All samples must be > 0; throws std::invalid_argument otherwise or when
// fewer than 3 samples are given.
DistributionFit FitExponential(std::span<const double> xs);
DistributionFit FitWeibull(std::span<const double> xs);
DistributionFit FitLogNormal(std::span<const double> xs);
DistributionFit FitGamma(std::span<const double> xs);

// Fits all four and returns them sorted by ascending AIC (best first).
std::vector<DistributionFit> FitAll(std::span<const double> xs);

// Kolmogorov-Smirnov machinery, exposed for reuse.
double KsStatistic(std::span<const double> xs, const DistributionFit& fit);
// Asymptotic Kolmogorov distribution survival function of sqrt(n) * D.
double KolmogorovPValue(double d, std::size_t n);

}  // namespace hpcfail::stats
