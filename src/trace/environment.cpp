#include "trace/environment.h"

#include <algorithm>

namespace hpcfail {

TemperatureSummary SummarizeTemperature(
    const std::vector<TemperatureSample>& samples, NodeId node) {
  TemperatureSummary out;
  double sum = 0.0;
  for (const TemperatureSample& s : samples) {
    if (s.node != node) continue;
    ++out.num_samples;
    sum += s.celsius;
    out.max = out.num_samples == 1 ? s.celsius : std::max(out.max, s.celsius);
    if (s.celsius > kHighTempThresholdC) ++out.num_high_temp;
  }
  if (out.num_samples == 0) return out;
  out.avg = sum / out.num_samples;
  double ss = 0.0;
  for (const TemperatureSample& s : samples) {
    if (s.node != node) continue;
    const double d = s.celsius - out.avg;
    ss += d * d;
  }
  // Population variance; with thousands of periodic samples the distinction
  // from the sample variance is immaterial, and it is defined for n == 1.
  out.variance = ss / out.num_samples;
  return out;
}

}  // namespace hpcfail
