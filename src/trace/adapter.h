// Pluggable log-format adapters: the single entry point through which any
// on-disk log becomes FailureRecords (DESIGN.md §11).
//
// Until PR 9 the pipeline was hard-wired to two schemas (our own
// failures.csv and the LANL release's CSV). The adapter registry turns
// ingestion into a multi-workload surface:
//
//   hpcfail_csv  our native failures.csv (header-checked, strict fields)
//   lanl_csv     the LANL operational-data release (trace/lanl_import);
//                byte-identical to the legacy direct path by construction —
//                both call lanl::ParseLanlRow
//   bgq_ras      Blue Gene/Q-style structured RAS events (severity /
//                component / message-id columns mapped onto the taxonomy)
//   syslog       RFC 3164 free text, clustered into stable template ids by
//                a masking pass and mapped to categories via a built-in +
//                user-overridable rules table
//
// The contract every consumer relies on:
//   * adapters are line-oriented and stateful only through their LineReader,
//     so batch parsing (ParseLog) and streaming tails (hpcfail_stream) share
//     one grammar per format;
//   * no line is dropped silently — every line is a record, ignored (header,
//     comment, below-severity), or rejected with a reason, and all four
//     outcomes are counted through the PR 5 validation counters;
//   * format identity feeds the trace fingerprint (engine/trace_source), so
//     the artifact cache can never alias two formats' parses of one file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/failure.h"
#include "trace/lanl_import.h"

namespace hpcfail::trace {

// Per-parse knobs. One struct for all adapters (each reads only its own
// fields) so call sites and fingerprints handle every format uniformly.
struct AdapterOptions {
  // lanl_csv: column mapping + header/delimiter conventions.
  lanl::ImportConfig lanl;
  // syslog: RFC 3164 timestamps omit the year; this supplies it. 2004 is
  // mid-span of the LANL release the analyses were built around.
  int syslog_base_year = 2004;
  // bgq_ras + syslog: neither format carries our system id; all records
  // land on this one.
  int default_system = 0;
  // syslog: extra template->category rules, one per line, checked BEFORE
  // the built-ins so users can override them. Syntax (# comments allowed):
  //     keyword => category
  //     keyword => category/subcategory
  // e.g. "lustre => software/pfs". Keyword is a case-insensitive substring
  // match against the masked template text.
  std::string syslog_rules;
};

// What one input line turned into.
enum class LineOutcome : std::uint8_t {
  kRecord,    // *out was filled
  kIgnored,   // structural non-event: header, comment, below-severity
  kRejected,  // malformed or unmappable; *reason says why
  kFatal,     // the file cannot be this format at all (e.g. wrong header);
              // *reason says why and the parse must stop
};

// A stateful per-file cursor. Created per parse via LogAdapter::MakeReader;
// holds whatever the format needs between lines (pending header flags,
// the syslog template miner). Not thread-safe; one reader per file.
class LineReader {
 public:
  virtual ~LineReader() = default;

  // `line` arrives pre-cleaned (BOM and trailing CR already stripped, never
  // empty). Fills *out on kRecord, *reason on kRejected/kFatal.
  virtual LineOutcome Consume(const std::string& line, std::size_t lineno,
                              FailureRecord* out, std::string* reason) = 0;
};

class LogAdapter {
 public:
  virtual ~LogAdapter() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  // Auto-detection: score the first bytes of a file (a few lines). <= 0
  // means "not mine"; the registry picks the highest positive score,
  // registration order breaking ties.
  virtual int SniffScore(std::string_view head) const = 0;

  virtual std::unique_ptr<LineReader> MakeReader(
      const AdapterOptions& options) const = 0;
};

// ---- Registry (compile-time: the adapter set is fixed at build time).

// All adapters, in registration order (hpcfail_csv, lanl_csv, bgq_ras,
// syslog).
const std::vector<const LogAdapter*>& Registry();

// Lookup by exact name; nullptr if unknown.
const LogAdapter* FindAdapter(std::string_view name);

// Auto-detection over the first bytes of a file; nullptr when no adapter
// claims it.
const LogAdapter* DetectAdapter(std::string_view head);

// Resolves "auto" (or "") via DetectAdapter on `head`, anything else via
// FindAdapter. Throws std::runtime_error with an actionable message on an
// unknown name or an undetectable file.
const LogAdapter& ResolveAdapter(std::string_view format,
                                 std::string_view head);

// Reads up to `max_bytes` from the stream for sniffing, then rewinds it.
std::string SniffHead(std::istream& is, std::size_t max_bytes = 4096);

// ---- Batch parsing.

struct ParseCounters {
  std::uint64_t lines = 0;     // non-empty lines offered to the reader
  std::uint64_t records = 0;
  std::uint64_t ignored = 0;
  std::uint64_t rejected = 0;
};

struct ParseResult {
  std::vector<FailureRecord> failures;
  // Rejected lines with reasons, capped at kMaxIssues (the counters are
  // exact; the reason list is a diagnostic sample).
  std::vector<lanl::ImportIssue> issues;
  ParseCounters counters;

  static constexpr std::size_t kMaxIssues = 64;
};

// Streams a whole log through one reader: strips a leading BOM and trailing
// CRs, skips blank lines, counts every outcome through the obs registry
// (hpcfail_adapter_* counters). Throws std::runtime_error on kFatal.
ParseResult ParseLog(const LogAdapter& adapter, std::istream& is,
                     const AdapterOptions& options);

// Updates the hpcfail_adapter_* obs counters for one consumed line.
// ParseLog calls this internally; streaming consumers that drive a
// LineReader directly (hpcfail_stream) call it so batch and tail ingest
// are indistinguishable in /metrics.
void CountLineOutcome(LineOutcome outcome);

// ---- Syslog template mining (exposed for tests and the FORMATS verb).

// Masks the volatile parts of a syslog message body: digit runs -> '#',
// 0x-prefixed hex -> "0x#", path-like tokens (containing '/') -> "PATH",
// bare hex words of >= 4 chars -> '#'. The result is the template text.
std::string MaskSyslogMessage(std::string_view message);

// Stable template id: FNV-1a-64 over the masked text, so the same input
// yields the same id across runs, processes, and thread counts.
std::uint64_t SyslogTemplateId(std::string_view masked);

}  // namespace hpcfail::trace
