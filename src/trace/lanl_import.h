// Importer for the raw LANL operational-data release (the CSVs behind the
// paper, published at institute.lanl.gov/data/fdata). The release's exact
// column order has varied across mirrors, so the importer takes a column
// mapping plus tolerant parsers for the release's conventions:
//   - timestamps like "MM/DD/YYYY HH:MM" (converted to seconds since the
//     Unix epoch);
//   - free-text root-cause labels ("Facilities", "Human Error", ...) mapped
//     by keyword onto the hpcfail taxonomy;
//   - free-text hardware/software component labels ("Memory Dimm", "CPU",
//     "Distributed Storage", ...) mapped likewise.
// Rows that cannot be parsed are collected (with reasons) rather than
// aborting the import: real operational logs are never perfectly clean.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "trace/failure.h"
#include "trace/system.h"

namespace hpcfail::lanl {

struct ImportConfig {
  // 0-based column indices into each CSV row.
  int col_system = 0;
  int col_node = 1;
  int col_start = 2;       // problem-started timestamp
  int col_end = 3;         // problem-fixed timestamp
  int col_category = 4;    // high-level root cause
  int col_subcategory = 5; // detailed cause; -1 when absent
  bool has_header = true;
  char delimiter = ',';
};

struct ImportIssue {
  std::size_t line = 0;
  std::string reason;
};

struct ImportResult {
  std::vector<FailureRecord> failures;
  std::vector<ImportIssue> skipped;
};

// Parses "MM/DD/YYYY HH:MM" (also accepts "MM/DD/YY HH:MM" with a 2000
// pivot and an optional ":SS"); returns seconds since the Unix epoch, or
// nullopt on malformed input. Calendar arithmetic is self-contained (no
// timezone: the release is wall-clock local time and only differences
// matter to the analyses).
std::optional<TimeSec> ParseLanlTimestamp(std::string_view text);

// Keyword mapping from the release's free-text root-cause labels:
//   facilities/environment/power -> kEnvironment, hardware -> kHardware,
//   human -> kHuman, network -> kNetwork, software -> kSoftware,
//   undetermined/unknown -> kUndetermined.
std::optional<FailureCategory> MapLanlCategory(std::string_view text);

// Keyword mapping for detailed causes, conditioned on the category
// ("memory dimm" -> kMemory, "node board" -> kNodeBoard, "dst" ->
// kDst, "power outage" -> kPowerOutage, ...). Unrecognized text maps to the
// category's catch-all subcategory.
std::optional<HardwareComponent> MapLanlHardware(std::string_view text);
std::optional<SoftwareComponent> MapLanlSoftware(std::string_view text);
std::optional<EnvironmentEvent> MapLanlEnvironment(std::string_view text);

// Parses one data row (already split out of the header). On success fills
// `out` and returns nullopt; on failure returns the skip reason. This is
// the single row grammar shared by ImportFailures and the `lanl_csv`
// adapter in trace/adapter.cpp — byte parity between the two paths holds
// by construction because both call exactly this.
std::optional<std::string> ParseLanlRow(const std::string& line,
                                        const ImportConfig& config,
                                        FailureRecord* out);

// Reads a whole failure log. Node outages with end < start or unparsable
// mandatory fields are reported in `skipped`.
ImportResult ImportFailures(std::istream& is, const ImportConfig& config);

struct AssembleResult {
  Trace trace;
  // Failures discarded because node >= nodes_per_system. Never discarded
  // silently: callers should surface this count to the operator.
  long long dropped_out_of_range = 0;
};

// Builds a finalized Trace from imported failures. One SystemConfig is
// synthesized per system id seen in the log, observed from the earliest
// failure start to one day past the latest failure end. When
// `nodes_per_system > 0` every system gets exactly that many nodes and
// failures at out-of-range node ids are counted in `dropped_out_of_range`;
// when `nodes_per_system <= 0` each system is auto-sized to the largest node
// id it logs (max + 1) and nothing is dropped.
AssembleResult AssembleTrace(const ImportResult& imported,
                             int nodes_per_system);

}  // namespace hpcfail::lanl
