// Locale-independent numeric parsing. std::stod/strtod honor LC_NUMERIC, so
// a host running under a comma-decimal locale (de_DE, fr_FR, ...) silently
// parses "3.5" as 3 — every text surface that reads numbers (CSV traces,
// scenario configs, CLI flags) goes through this helper instead, which
// always uses the C-locale decimal point.
#pragma once

#include <optional>
#include <string_view>

namespace hpcfail {

// Parses the ENTIRE string as a double, mirroring the accepted forms of the
// previous std::stod call sites minus locale dependence: optional leading
// whitespace, optional sign, decimal or scientific notation, "inf"/"nan".
// Returns nullopt when the text is empty, malformed, or has trailing junk.
std::optional<double> ParseDoubleText(std::string_view s);

}  // namespace hpcfail
