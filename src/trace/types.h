// Core vocabulary types shared by every hpcfail subsystem: strong identifiers
// and the time axis used by all traces.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace hpcfail {

// All trace timestamps are seconds since an arbitrary trace epoch. Traces are
// self-contained; absolute calendar time never matters to the analyses, only
// durations and ordering.
using TimeSec = std::int64_t;

inline constexpr TimeSec kMinute = 60;
inline constexpr TimeSec kHour = 60 * kMinute;
inline constexpr TimeSec kDay = 24 * kHour;
inline constexpr TimeSec kWeek = 7 * kDay;
// The paper's "month" windows are calendar-agnostic; we follow the common
// 30-day convention.
inline constexpr TimeSec kMonth = 30 * kDay;
inline constexpr TimeSec kYear = 365 * kDay;

// A half-open time interval [begin, end).
struct TimeInterval {
  TimeSec begin = 0;
  TimeSec end = 0;

  constexpr TimeSec duration() const { return end - begin; }
  constexpr bool contains(TimeSec t) const { return t >= begin && t < end; }
  constexpr bool valid() const { return end >= begin; }

  friend constexpr bool operator==(const TimeInterval&,
                                   const TimeInterval&) = default;
};

// Strongly-typed integer identifier. Distinct Tag types make it a compile
// error to pass a NodeId where a UserId is expected.
template <typename Tag>
struct Id {
  std::int32_t value = -1;

  constexpr Id() = default;
  constexpr explicit Id(std::int32_t v) : value(v) {}

  constexpr bool valid() const { return value >= 0; }

  friend constexpr auto operator<=>(Id, Id) = default;
};

using SystemId = Id<struct SystemIdTag>;
using NodeId = Id<struct NodeIdTag>;
using RackId = Id<struct RackIdTag>;
using UserId = Id<struct UserIdTag>;
using JobId = Id<struct JobIdTag>;

inline constexpr NodeId kInvalidNode{};

}  // namespace hpcfail

namespace std {
template <typename Tag>
struct hash<hpcfail::Id<Tag>> {
  size_t operator()(hpcfail::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};
}  // namespace std
