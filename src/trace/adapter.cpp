#include "trace/adapter.h"

#include <algorithm>
#include <istream>
#include <stdexcept>

#include "obs/metrics.h"
#include "trace/csv.h"
#include "trace/parse_util.h"

namespace hpcfail::trace {
namespace {

using parse::Contains;
using parse::Lower;
using parse::Trim;

// Ingest health counters, the adapter-layer face of the PR 5 validation
// path: every line any adapter consumes lands in exactly one of
// records/ignored/rejected, so "how much of that log did we actually use"
// is answerable from /metrics without re-reading the file.
struct AdapterMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& lines = reg.GetCounter(
      "hpcfail_adapter_lines_total",
      "Non-empty lines consumed by log-format adapters");
  obs::Counter& records = reg.GetCounter(
      "hpcfail_adapter_records_total",
      "Lines an adapter turned into failure records");
  obs::Counter& ignored = reg.GetCounter(
      "hpcfail_adapter_ignored_lines_total",
      "Structural non-event lines (headers, below-severity events)");
  obs::Counter& rejected = reg.GetCounter(
      "hpcfail_adapter_rejected_lines_total",
      "Lines rejected as malformed or unmappable (never dropped silently)");

  static AdapterMetrics& Get() {
    static AdapterMetrics m;
    return m;
  }
};

bool IsDigitChar(char c) { return c >= '0' && c <= '9'; }

bool IsHexChar(char c) {
  return IsDigitChar(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

bool IsAlnumChar(char c) {
  return IsDigitChar(c) || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

// ---------------------------------------------------------------------------
// hpcfail_csv: our own failures.csv schema, reusing the strict row parser
// from trace/csv so both entry points stay one grammar.

class NativeCsvReader final : public LineReader {
 public:
  LineOutcome Consume(const std::string& line, std::size_t lineno,
                      FailureRecord* out, std::string* reason) override {
    if (header_pending_) {
      header_pending_ = false;
      if (line != csv::FailuresHeader()) {
        *reason = "bad header: expected '" + csv::FailuresHeader() + "'";
        return LineOutcome::kFatal;
      }
      return LineOutcome::kIgnored;
    }
    const std::vector<std::string> fields = csv::SplitLine(line);
    try {
      *out = csv::ParseFailureRow(fields, lineno);
    } catch (const csv::ParseError& e) {
      *reason = e.what();
      return LineOutcome::kRejected;
    }
    return LineOutcome::kRecord;
  }

 private:
  bool header_pending_ = true;
};

class NativeCsvAdapter final : public LogAdapter {
 public:
  std::string_view name() const override { return "hpcfail_csv"; }
  std::string_view description() const override {
    return "native failures.csv (system,node,start,end,category,"
           "subcategory; epoch-second timestamps)";
  }
  int SniffScore(std::string_view head) const override {
    if (head.substr(0, 3) == "\xEF\xBB\xBF") head.remove_prefix(3);
    const std::size_t eol = head.find('\n');
    std::string_view first =
        eol == std::string_view::npos ? head : head.substr(0, eol);
    if (!first.empty() && first.back() == '\r') first.remove_suffix(1);
    return first == csv::FailuresHeader() ? 100 : 0;
  }
  std::unique_ptr<LineReader> MakeReader(
      const AdapterOptions&) const override {
    return std::make_unique<NativeCsvReader>();
  }
};

// ---------------------------------------------------------------------------
// lanl_csv: the LANL operational-data release. The reader is a thin shell
// around lanl::ParseLanlRow — the byte-parity guarantee against the legacy
// lanl::ImportFailures path holds because both run exactly that function
// with the same header/blank-line discipline.

class LanlCsvReader final : public LineReader {
 public:
  explicit LanlCsvReader(const lanl::ImportConfig& config)
      : config_(config), header_pending_(config.has_header) {}

  LineOutcome Consume(const std::string& line, std::size_t /*lineno*/,
                      FailureRecord* out, std::string* reason) override {
    if (header_pending_) {
      header_pending_ = false;
      return LineOutcome::kIgnored;
    }
    if (auto why = lanl::ParseLanlRow(line, config_, out)) {
      *reason = std::move(*why);
      return LineOutcome::kRejected;
    }
    return LineOutcome::kRecord;
  }

 private:
  lanl::ImportConfig config_;
  bool header_pending_;
};

class LanlCsvAdapter final : public LogAdapter {
 public:
  std::string_view name() const override { return "lanl_csv"; }
  std::string_view description() const override {
    return "LANL operational-data release CSV (MM/DD/YYYY timestamps, "
           "free-text root-cause labels)";
  }
  int SniffScore(std::string_view head) const override {
    // Look for a comma-separated line whose fields include a US-style
    // timestamp; the header line (free text, no timestamp) is skipped
    // naturally because it fails the timestamp check.
    int lines_checked = 0;
    std::size_t pos = 0;
    while (pos < head.size() && lines_checked < 8) {
      std::size_t eol = head.find('\n', pos);
      if (eol == std::string_view::npos) eol = head.size();
      const std::string line(Trim(head.substr(pos, eol - pos)));
      pos = eol + 1;
      if (line.empty()) continue;
      ++lines_checked;
      const std::vector<std::string> f = parse::SplitTrimmed(line, ',');
      if (f.size() < 5) continue;
      for (const std::string& field : f) {
        if (parse::ParseUsTimestamp(field)) return 70;
      }
    }
    return 0;
  }
  std::unique_ptr<LineReader> MakeReader(
      const AdapterOptions& options) const override {
    return std::make_unique<LanlCsvReader>(options.lanl);
  }
};

// ---------------------------------------------------------------------------
// bgq_ras: Blue Gene/Q-style structured RAS events.
//
//   RECID,EVENT_TIME,SEVERITY,COMPONENT,SUBCOMPONENT,LOCATION,MSG_ID,MESSAGE
//
// FATAL/ERROR events become failure records; INFO/WARN/DEBUG are ignored
// (counted, not errors). LOCATION strings like "R12-M1-N03-J07" address
// rack / midplane / node board; we flatten them to a node id with
// 2 midplanes x 16 node boards per rack, the BG/Q arrangement.

struct RasCategory {
  FailureCategory category = FailureCategory::kUndetermined;
  std::optional<HardwareComponent> hardware;
  std::optional<SoftwareComponent> software;
  std::optional<EnvironmentEvent> environment;
};

RasCategory MapRasComponent(std::string_view component,
                            std::string_view subcomponent,
                            std::string_view msg_id) {
  const std::string t =
      Lower(std::string(component) + " " + std::string(subcomponent) + " " +
            std::string(msg_id));
  auto hw = [](HardwareComponent c) {
    RasCategory r;
    r.category = FailureCategory::kHardware;
    r.hardware = c;
    return r;
  };
  auto sw = [](SoftwareComponent c) {
    RasCategory r;
    r.category = FailureCategory::kSoftware;
    r.software = c;
    return r;
  };
  auto env = [](EnvironmentEvent c) {
    RasCategory r;
    r.category = FailureCategory::kEnvironment;
    r.environment = c;
    return r;
  };
  if (Contains(t, "ddr") || Contains(t, "memory") || Contains(t, "sram") ||
      Contains(t, "ecc")) {
    return hw(HardwareComponent::kMemory);
  }
  if (Contains(t, "cpu") || Contains(t, "core") || Contains(t, "fpu") ||
      Contains(t, "ppc") || Contains(t, "processor")) {
    return hw(HardwareComponent::kCpu);
  }
  if (Contains(t, "nodecard") || Contains(t, "node_card") ||
      Contains(t, "nodeboard") || Contains(t, "node board")) {
    return hw(HardwareComponent::kNodeBoard);
  }
  if (Contains(t, "fan")) return hw(HardwareComponent::kFan);
  if (Contains(t, "midplane")) return hw(HardwareComponent::kMidplane);
  if (Contains(t, "facility") || Contains(t, "utility") ||
      Contains(t, "outage")) {
    return env(EnvironmentEvent::kPowerOutage);
  }
  if (Contains(t, "coolant") || Contains(t, "chiller") ||
      Contains(t, "cooling")) {
    return env(EnvironmentEvent::kChiller);
  }
  if (Contains(t, "psu") || Contains(t, "bulk_power") ||
      Contains(t, "bulk power") || Contains(t, "power")) {
    return hw(HardwareComponent::kPowerSupply);
  }
  if (Contains(t, "torus") || Contains(t, "link") || Contains(t, "optic") ||
      Contains(t, "ethernet") || Contains(t, "network") ||
      Contains(t, "ib ")) {
    RasCategory r;
    r.category = FailureCategory::kNetwork;
    return r;
  }
  if (Contains(t, "gpfs") || Contains(t, "lustre") || Contains(t, "fs ") ||
      Contains(t, "filesystem")) {
    return sw(SoftwareComponent::kPfs);
  }
  if (Contains(t, "sched")) return sw(SoftwareComponent::kScheduler);
  if (Contains(t, "kernel") || Contains(t, "cnk") || Contains(t, "linux") ||
      Contains(t, "firmware") || Contains(t, "os ")) {
    return sw(SoftwareComponent::kOs);
  }
  if (Contains(t, "mmcs") || Contains(t, "ciod") || Contains(t, "control") ||
      Contains(t, "software") || Contains(t, "app")) {
    return sw(SoftwareComponent::kOtherSoftware);
  }
  return RasCategory{};  // kUndetermined: a fatal event we cannot classify
}

// "R12-M1-N03[-J07...]" -> node id. Unknown trailing segments (J/U/C
// card-level detail) are ignored; R is mandatory, M/N default to 0 so
// midplane- and rack-scope events land on the first board in scope.
std::optional<int> ParseRasLocation(std::string_view loc) {
  int rack = -1, midplane = 0, board = 0;
  std::size_t i = 0;
  while (i < loc.size()) {
    std::size_t dash = loc.find('-', i);
    if (dash == std::string_view::npos) dash = loc.size();
    const std::string_view seg = loc.substr(i, dash - i);
    i = dash + 1;
    if (seg.size() < 2) return std::nullopt;
    const char kind = seg[0];
    const auto value = parse::ParseInt(seg.substr(1));
    if (!value || *value < 0) {
      // Card-level segments sometimes carry letters; only R/M/N matter.
      if (kind == 'R' || kind == 'M' || kind == 'N') return std::nullopt;
      continue;
    }
    switch (kind) {
      case 'R': rack = static_cast<int>(*value); break;
      case 'M': midplane = static_cast<int>(*value); break;
      case 'N': board = static_cast<int>(*value); break;
      default: break;  // J/U/C etc: finer than node granularity
    }
  }
  if (rack < 0 || midplane < 0 || board < 0) return std::nullopt;
  return (rack * 2 + midplane) * 16 + board;
}

class BgqRasReader final : public LineReader {
 public:
  explicit BgqRasReader(const AdapterOptions& options)
      : system_(options.default_system) {}

  LineOutcome Consume(const std::string& line, std::size_t /*lineno*/,
                      FailureRecord* out, std::string* reason) override {
    if (Lower(line.substr(0, 6)) == "recid,") return LineOutcome::kIgnored;
    std::vector<std::string> f = parse::Split(line, ',');
    // MESSAGE is free text and may contain commas: fold everything past
    // the 8th field back into it.
    while (f.size() > 8) {
      f[7] += "," + f[8];
      f.erase(f.begin() + 8);
    }
    if (f.size() < 7) {
      *reason = "too few columns";
      return LineOutcome::kRejected;
    }
    const std::string severity = Lower(Trim(f[2]));
    if (severity == "info" || severity == "warn" || severity == "warning" ||
        severity == "debug" || severity == "trace") {
      return LineOutcome::kIgnored;
    }
    if (severity != "fatal" && severity != "error") {
      *reason = "unknown severity '" + severity + "'";
      return LineOutcome::kRejected;
    }
    const auto when = parse::ParseIsoTimestamp(f[1]);
    if (!when) {
      *reason = "bad event time '" + f[1] + "'";
      return LineOutcome::kRejected;
    }
    const auto node = ParseRasLocation(Trim(f[5]));
    if (!node) {
      *reason = "bad location '" + f[5] + "'";
      return LineOutcome::kRejected;
    }
    const RasCategory mapped = MapRasComponent(f[3], f[4], f[6]);
    FailureRecord r;
    r.system = SystemId{system_};
    r.node = NodeId{*node};
    r.start = *when;
    r.end = *when;  // RAS events are instants; downtime comes from analyses
    r.category = mapped.category;
    r.hardware = mapped.hardware;
    r.software = mapped.software;
    r.environment = mapped.environment;
    *out = r;
    return LineOutcome::kRecord;
  }

 private:
  int system_;
};

class BgqRasAdapter final : public LogAdapter {
 public:
  std::string_view name() const override { return "bgq_ras"; }
  std::string_view description() const override {
    return "Blue Gene/Q-style structured RAS events (RECID,EVENT_TIME,"
           "SEVERITY,COMPONENT,SUBCOMPONENT,LOCATION,MSG_ID,MESSAGE)";
  }
  int SniffScore(std::string_view head) const override {
    if (head.substr(0, 3) == "\xEF\xBB\xBF") head.remove_prefix(3);
    if (Lower(head.substr(0, 6)) == "recid,") return 100;
    // Headerless data: numeric RECID, then an ISO timestamp field.
    std::size_t eol = head.find('\n');
    if (eol == std::string_view::npos) eol = head.size();
    const std::string first(Trim(head.substr(0, eol)));
    const std::vector<std::string> f = parse::Split(first, ',');
    if (f.size() >= 7 && parse::ParseInt(f[0]) &&
        parse::ParseIsoTimestamp(f[1])) {
      return 60;
    }
    return 0;
  }
  std::unique_ptr<LineReader> MakeReader(
      const AdapterOptions& options) const override {
    return std::make_unique<BgqRasReader>(options);
  }
};

// ---------------------------------------------------------------------------
// syslog: RFC 3164 free text with a template-mining pass.

struct SyslogRule {
  std::string keyword;  // lowercase substring match on the masked template
  RasCategory target;
};

// The built-in template->category rules, in priority order. Deliberately
// small: it covers the event families the paper's taxonomy can absorb, and
// everything else is rejected-with-count so operators see exactly what a
// custom rules file (AdapterOptions::syslog_rules) should add.
const std::vector<SyslogRule>& BuiltinSyslogRules() {
  auto hw = [](HardwareComponent c) {
    RasCategory r;
    r.category = FailureCategory::kHardware;
    r.hardware = c;
    return r;
  };
  auto sw = [](SoftwareComponent c) {
    RasCategory r;
    r.category = FailureCategory::kSoftware;
    r.software = c;
    return r;
  };
  auto env = [](EnvironmentEvent c) {
    RasCategory r;
    r.category = FailureCategory::kEnvironment;
    r.environment = c;
    return r;
  };
  auto net = [] {
    RasCategory r;
    r.category = FailureCategory::kNetwork;
    return r;
  };
  static const std::vector<SyslogRule> kRules = {
      {"machine check", hw(HardwareComponent::kCpu)},
      {"mce:", hw(HardwareComponent::kCpu)},
      {"edac", hw(HardwareComponent::kMemory)},
      {"ecc error", hw(HardwareComponent::kMemory)},
      {"memory error", hw(HardwareComponent::kMemory)},
      {"power supply", hw(HardwareComponent::kPowerSupply)},
      {"fan fail", hw(HardwareComponent::kFan)},
      {"i/o error", hw(HardwareComponent::kOtherHardware)},
      {"scsi error", hw(HardwareComponent::kOtherHardware)},
      // OS families outrank the network keywords: "panic" would otherwise
      // match the interior of the "nic" keyword.
      {"kernel panic", sw(SoftwareComponent::kOs)},
      {"oops", sw(SoftwareComponent::kOs)},
      {"out of memory", sw(SoftwareComponent::kOs)},
      {"oom-killer", sw(SoftwareComponent::kOs)},
      {"link down", net()},
      {"link is down", net()},
      {"network unreachable", net()},
      {" nic ", net()},
      {"power fail", env(EnvironmentEvent::kPowerOutage)},
      {"power lost", env(EnvironmentEvent::kPowerOutage)},
      {"on ups", env(EnvironmentEvent::kUps)},
      {"temperature", env(EnvironmentEvent::kChiller)},
      {"thermal", env(EnvironmentEvent::kChiller)},
      {"lustre", sw(SoftwareComponent::kPfs)},
      {"gpfs", sw(SoftwareComponent::kPfs)},
      {"filesystem error", sw(SoftwareComponent::kPfs)},
      {"slurm", sw(SoftwareComponent::kScheduler)},
      {"pbs_mom", sw(SoftwareComponent::kScheduler)},
      {"segfault", sw(SoftwareComponent::kOtherSoftware)},
  };
  return kRules;
}

// Parses a user rules table ("keyword => category[/subcategory]"). Throws
// std::runtime_error naming the offending line — a silently-misparsed rule
// would silently misclassify every matching event.
std::vector<SyslogRule> ParseSyslogRules(std::string_view text) {
  std::vector<SyslogRule> rules;
  std::size_t pos = 0;
  std::size_t lineno = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = Trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++lineno;
    if (line.empty() || line.front() == '#') continue;
    const std::size_t arrow = line.find("=>");
    auto fail = [&](const std::string& why) {
      throw std::runtime_error("syslog rules line " + std::to_string(lineno) +
                               ": " + why);
    };
    if (arrow == std::string_view::npos) fail("expected 'keyword => category'");
    const std::string keyword = Lower(Trim(line.substr(0, arrow)));
    std::string_view target = Trim(line.substr(arrow + 2));
    if (keyword.empty()) fail("empty keyword");
    std::string_view cat_text = target;
    std::string_view sub_text;
    const std::size_t slash = target.find('/');
    if (slash != std::string_view::npos) {
      cat_text = Trim(target.substr(0, slash));
      sub_text = Trim(target.substr(slash + 1));
    }
    const auto category = ParseFailureCategory(Lower(cat_text));
    if (!category) fail("unknown category '" + std::string(cat_text) + "'");
    RasCategory mapped;
    mapped.category = *category;
    if (!sub_text.empty()) {
      const std::string sub = Lower(sub_text);
      switch (*category) {
        case FailureCategory::kHardware:
          mapped.hardware = ParseHardwareComponent(sub);
          if (!mapped.hardware) fail("unknown hardware subcategory '" + sub + "'");
          break;
        case FailureCategory::kSoftware:
          mapped.software = ParseSoftwareComponent(sub);
          if (!mapped.software) fail("unknown software subcategory '" + sub + "'");
          break;
        case FailureCategory::kEnvironment:
          mapped.environment = ParseEnvironmentEvent(sub);
          if (!mapped.environment) {
            fail("unknown environment subcategory '" + sub + "'");
          }
          break;
        default:
          fail("category '" + std::string(cat_text) + "' takes no subcategory");
      }
    }
    rules.push_back({keyword, mapped});
  }
  return rules;
}

void AppendMaskedToken(std::string_view tok, std::string* out) {
  if (tok.find('/') != std::string_view::npos) {
    out->append("PATH");
    return;
  }
  // Bare hex identifiers (uuids, addresses without 0x): mask the alnum core
  // when it is >= 8 chars of pure hex. Shorter cores stay, so real words
  // that happen to be hex ("dead", "feed") survive.
  std::size_t b = 0, e = tok.size();
  while (b < e && !IsAlnumChar(tok[b])) ++b;
  while (e > b && !IsAlnumChar(tok[e - 1])) --e;
  const std::string_view core = tok.substr(b, e - b);
  if (core.size() >= 8 &&
      std::all_of(core.begin(), core.end(), IsHexChar)) {
    out->append(tok.substr(0, b));
    out->push_back('#');
    out->append(tok.substr(e));
    return;
  }
  for (std::size_t i = 0; i < tok.size();) {
    if (tok[i] == '0' && i + 2 < tok.size() &&
        (tok[i + 1] == 'x' || tok[i + 1] == 'X') && IsHexChar(tok[i + 2])) {
      out->append("0x#");
      i += 2;
      while (i < tok.size() && IsHexChar(tok[i])) ++i;
    } else if (IsDigitChar(tok[i])) {
      out->push_back('#');
      while (i < tok.size() && IsDigitChar(tok[i])) ++i;
    } else {
      out->push_back(tok[i]);
      ++i;
    }
  }
}

class SyslogReader final : public LineReader {
 public:
  explicit SyslogReader(const AdapterOptions& options)
      : system_(options.default_system), year_(options.syslog_base_year) {
    if (!options.syslog_rules.empty()) {
      rules_ = ParseSyslogRules(options.syslog_rules);
    }
  }

  LineOutcome Consume(const std::string& line, std::size_t /*lineno*/,
                      FailureRecord* out, std::string* reason) override {
    std::string_view s = Trim(line);
    // Optional RFC 3164 priority prefix "<134>".
    if (!s.empty() && s.front() == '<') {
      const std::size_t close = s.find('>');
      if (close != std::string_view::npos && close <= 4) {
        s.remove_prefix(close + 1);
      }
    }
    if (s.size() < 16) {
      *reason = "bad timestamp";
      return LineOutcome::kRejected;
    }
    const auto when = parse::ParseSyslogTimestamp(s.substr(0, 15), year_);
    if (!when || s[15] != ' ') {
      *reason = "bad timestamp";
      return LineOutcome::kRejected;
    }
    s.remove_prefix(16);
    while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
    const std::size_t host_end = s.find(' ');
    if (host_end == std::string_view::npos) {
      *reason = "missing message";
      return LineOutcome::kRejected;
    }
    const std::string_view host = s.substr(0, host_end);
    // Node identity: the trailing digit run of the hostname ("node042",
    // "cn-7"). A host with no digits cannot be placed in the layout.
    std::size_t dig_end = host.size();
    while (dig_end > 0 && IsDigitChar(host[dig_end - 1])) --dig_end;
    if (dig_end == host.size()) {
      *reason = "no node id in hostname '" + std::string(host) + "'";
      return LineOutcome::kRejected;
    }
    const auto node = parse::ParseInt(host.substr(dig_end));
    if (!node) {
      *reason = "no node id in hostname '" + std::string(host) + "'";
      return LineOutcome::kRejected;
    }
    const std::string_view message = Trim(s.substr(host_end + 1));
    if (message.empty()) {
      *reason = "missing message";
      return LineOutcome::kRejected;
    }
    const std::string masked = MaskSyslogMessage(message);
    const std::uint64_t template_id = SyslogTemplateId(masked);
    const std::string masked_lower = Lower(masked);
    const RasCategory* mapped = nullptr;
    for (const SyslogRule& rule : rules_) {  // user rules override built-ins
      if (Contains(masked_lower, rule.keyword)) {
        mapped = &rule.target;
        break;
      }
    }
    if (!mapped) {
      for (const SyslogRule& rule : BuiltinSyslogRules()) {
        if (Contains(masked_lower, rule.keyword)) {
          mapped = &rule.target;
          break;
        }
      }
    }
    if (!mapped) {
      *reason = "unmapped template t=" + TemplateHex(template_id) + " '" +
                masked + "'";
      return LineOutcome::kRejected;
    }
    FailureRecord r;
    r.system = SystemId{system_};
    r.node = NodeId{static_cast<int>(*node)};
    r.start = *when;
    r.end = *when;
    r.category = mapped->category;
    r.hardware = mapped->hardware;
    r.software = mapped->software;
    r.environment = mapped->environment;
    *out = r;
    return LineOutcome::kRecord;
  }

 private:
  static std::string TemplateHex(std::uint64_t id) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
      out[static_cast<std::size_t>(i)] = kHex[id & 0xF];
      id >>= 4;
    }
    return out;
  }

  int system_;
  int year_;
  std::vector<SyslogRule> rules_;
};

class SyslogAdapter final : public LogAdapter {
 public:
  std::string_view name() const override { return "syslog"; }
  std::string_view description() const override {
    return "RFC 3164 syslog free text, template-mined (masked token "
           "signatures) and mapped to categories via a rules table";
  }
  int SniffScore(std::string_view head) const override {
    if (head.substr(0, 3) == "\xEF\xBB\xBF") head.remove_prefix(3);
    int lines_checked = 0;
    std::size_t pos = 0;
    while (pos < head.size() && lines_checked < 8) {
      std::size_t eol = head.find('\n', pos);
      if (eol == std::string_view::npos) eol = head.size();
      std::string_view line = Trim(head.substr(pos, eol - pos));
      pos = eol + 1;
      if (line.empty()) continue;
      ++lines_checked;
      if (!line.empty() && line.front() == '<') {
        const std::size_t close = line.find('>');
        if (close != std::string_view::npos && close <= 4) {
          line.remove_prefix(close + 1);
        }
      }
      if (line.size() >= 15 &&
          parse::ParseSyslogTimestamp(line.substr(0, 15), 2004)) {
        return 80;
      }
    }
    return 0;
  }
  std::unique_ptr<LineReader> MakeReader(
      const AdapterOptions& options) const override {
    return std::make_unique<SyslogReader>(options);
  }
};

std::string KnownFormatNames() {
  std::string out;
  for (const LogAdapter* a : Registry()) {
    if (!out.empty()) out += ", ";
    out += a->name();
  }
  return out;
}

}  // namespace

std::string MaskSyslogMessage(std::string_view message) {
  std::string out;
  out.reserve(message.size());
  std::size_t i = 0;
  bool first = true;
  while (i < message.size()) {
    while (i < message.size() &&
           (message[i] == ' ' || message[i] == '\t')) {
      ++i;
    }
    if (i >= message.size()) break;
    std::size_t j = i;
    while (j < message.size() && message[j] != ' ' && message[j] != '\t') {
      ++j;
    }
    if (!first) out.push_back(' ');
    first = false;
    AppendMaskedToken(message.substr(i, j - i), &out);
    i = j;
  }
  return out;
}

std::uint64_t SyslogTemplateId(std::string_view masked) {
  // FNV-1a-64, same constants as engine/fingerprint but reimplemented here:
  // trace/ must not depend on engine/. A pure content hash makes template
  // ids stable across runs, processes, and thread counts by construction.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : masked) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

const std::vector<const LogAdapter*>& Registry() {
  static const NativeCsvAdapter native;
  static const LanlCsvAdapter lanl_csv;
  static const BgqRasAdapter bgq_ras;
  static const SyslogAdapter syslog;
  static const std::vector<const LogAdapter*> all = {&native, &lanl_csv,
                                                     &bgq_ras, &syslog};
  return all;
}

const LogAdapter* FindAdapter(std::string_view name) {
  for (const LogAdapter* a : Registry()) {
    if (a->name() == name) return a;
  }
  return nullptr;
}

const LogAdapter* DetectAdapter(std::string_view head) {
  const LogAdapter* best = nullptr;
  int best_score = 0;
  for (const LogAdapter* a : Registry()) {  // ties: registration order wins
    const int score = a->SniffScore(head);
    if (score > best_score) {
      best = a;
      best_score = score;
    }
  }
  return best;
}

const LogAdapter& ResolveAdapter(std::string_view format,
                                 std::string_view head) {
  if (format.empty() || format == "auto") {
    const LogAdapter* detected = DetectAdapter(head);
    if (!detected) {
      throw std::runtime_error(
          "cannot auto-detect log format; pass --format explicitly (known: " +
          KnownFormatNames() + ")");
    }
    return *detected;
  }
  const LogAdapter* named = FindAdapter(format);
  if (!named) {
    throw std::runtime_error("unknown log format '" + std::string(format) +
                             "' (known: " + KnownFormatNames() + ")");
  }
  return *named;
}

std::string SniffHead(std::istream& is, std::size_t max_bytes) {
  std::string head(max_bytes, '\0');
  is.read(head.data(), static_cast<std::streamsize>(max_bytes));
  head.resize(static_cast<std::size_t>(is.gcount()));
  is.clear();
  is.seekg(0);
  return head;
}

void CountLineOutcome(LineOutcome outcome) {
  AdapterMetrics& m = AdapterMetrics::Get();
  m.lines.Increment();
  switch (outcome) {
    case LineOutcome::kRecord: m.records.Increment(); break;
    case LineOutcome::kIgnored: m.ignored.Increment(); break;
    case LineOutcome::kRejected: m.rejected.Increment(); break;
    case LineOutcome::kFatal: m.rejected.Increment(); break;
  }
}

ParseResult ParseLog(const LogAdapter& adapter, std::istream& is,
                     const AdapterOptions& options) {
  ParseResult out;
  const std::unique_ptr<LineReader> reader = adapter.MakeReader(options);
  std::string line;
  std::size_t lineno = 0;
  bool first_line = true;
  while (std::getline(is, line)) {
    ++lineno;
    if (first_line) {
      csv::StripLeadingBom(line);
      first_line = false;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    ++out.counters.lines;
    FailureRecord record;
    std::string reason;
    const LineOutcome outcome = reader->Consume(line, lineno, &record, &reason);
    CountLineOutcome(outcome);
    switch (outcome) {
      case LineOutcome::kRecord:
        ++out.counters.records;
        out.failures.push_back(record);
        break;
      case LineOutcome::kIgnored:
        ++out.counters.ignored;
        break;
      case LineOutcome::kRejected:
        ++out.counters.rejected;
        if (out.issues.size() < ParseResult::kMaxIssues) {
          out.issues.push_back({lineno, std::move(reason)});
        }
        break;
      case LineOutcome::kFatal:
        throw std::runtime_error(std::string(adapter.name()) + ": line " +
                                 std::to_string(lineno) + ": " + reason);
    }
  }
  return out;
}

}  // namespace hpcfail::trace
