#include "trace/parse_util.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>

namespace hpcfail::parse {

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::optional<long long> ParseInt(std::string_view s) {
  long long v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::vector<std::string> Split(const std::string& line, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitTrimmed(const std::string& line, char delim) {
  std::vector<std::string> out = Split(line, delim);
  for (std::string& f : out) {
    while (!f.empty() && (std::isspace(static_cast<unsigned char>(f.front())) ||
                          f.front() == '"')) {
      f.erase(f.begin());
    }
    while (!f.empty() && (std::isspace(static_cast<unsigned char>(f.back())) ||
                          f.back() == '"')) {
      f.pop_back();
    }
  }
  return out;
}

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

std::optional<long long> DaysSinceEpoch(int year, int month, int day) {
  if (year < 1970 || month < 1 || month > 12 || day < 1 ||
      day > DaysInMonth(year, month)) {
    return std::nullopt;
  }
  long long days = 0;
  for (int y = 1970; y < year; ++y) days += IsLeapYear(y) ? 366 : 365;
  for (int m = 1; m < month; ++m) days += DaysInMonth(year, m);
  return days + (day - 1);
}

std::optional<TimeSec> EpochSeconds(int year, int month, int day, int hour,
                                    int minute, int second) {
  const auto days = DaysSinceEpoch(year, month, day);
  if (!days) return std::nullopt;
  if (hour > 23 || hour < 0 || minute > 59 || minute < 0 || second > 60 ||
      second < 0) {
    return std::nullopt;
  }
  return *days * kDay + hour * kHour + minute * kMinute + second;
}

std::optional<TimeSec> ParseUsTimestamp(std::string_view text) {
  // Forms: "MM/DD/YYYY HH:MM", "M/D/YY H:MM", optionally ":SS".
  const std::string s(text);
  int fields[6] = {0, 0, 0, 0, 0, 0};  // M, D, Y, h, m, s
  int field = 0;
  int value = 0;
  bool have_digit = false;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    const char c = i < s.size() ? s[i] : '\0';
    if (c >= '0' && c <= '9') {
      value = value * 10 + (c - '0');
      have_digit = true;
      if (value > 99999) return std::nullopt;
    } else if (c == '/' || c == ' ' || c == ':' || c == '\0' || c == '\t') {
      if (have_digit) {
        if (field >= 6) return std::nullopt;
        fields[field++] = value;
        value = 0;
        have_digit = false;
      } else if (c != ' ' && c != '\0' && c != '\t') {
        return std::nullopt;  // "//" or ":" with no digits
      }
    } else {
      return std::nullopt;
    }
  }
  if (field < 5) return std::nullopt;  // need at least M/D/Y H:M
  int year = fields[2];
  // Two-digit years: the LANL release spans 1996-2005, so pivot at 70.
  if (year < 100) year = year >= 70 ? 1900 + year : 2000 + year;
  return EpochSeconds(year, fields[0], fields[1], fields[3], fields[4],
                      fields[5]);
}

std::optional<TimeSec> ParseIsoTimestamp(std::string_view text) {
  // "YYYY-MM-DD HH:MM:SS[.ffffff]" with ' ' or 'T' between date and time.
  const std::string_view s = Trim(text);
  // Fixed positions: YYYY-MM-DD is 10 chars, separator, HH:MM:SS is 8.
  if (s.size() < 19) return std::nullopt;
  if (s[4] != '-' || s[7] != '-' || (s[10] != ' ' && s[10] != 'T') ||
      s[13] != ':' || s[16] != ':') {
    return std::nullopt;
  }
  auto digits = [&](std::size_t pos, std::size_t len) -> std::optional<int> {
    int v = 0;
    for (std::size_t i = pos; i < pos + len; ++i) {
      if (s[i] < '0' || s[i] > '9') return std::nullopt;
      v = v * 10 + (s[i] - '0');
    }
    return v;
  };
  const auto year = digits(0, 4), month = digits(5, 2), day = digits(8, 2);
  const auto hour = digits(11, 2), minute = digits(14, 2), sec = digits(17, 2);
  if (!year || !month || !day || !hour || !minute || !sec) return std::nullopt;
  // Anything after second 19 must be a fractional-second suffix, which is
  // truncated (second-granularity analyses; truncation keeps ordering).
  if (s.size() > 19) {
    if (s[19] != '.') return std::nullopt;
    for (std::size_t i = 20; i < s.size(); ++i) {
      if (s[i] < '0' || s[i] > '9') return std::nullopt;
    }
    if (s.size() == 20) return std::nullopt;  // bare trailing '.'
  }
  return EpochSeconds(*year, *month, *day, *hour, *minute, *sec);
}

std::optional<int> ParseMonthName(std::string_view name) {
  if (name.size() != 3) return std::nullopt;
  static constexpr std::array<std::string_view, 12> kNames = {
      "jan", "feb", "mar", "apr", "may", "jun",
      "jul", "aug", "sep", "oct", "nov", "dec"};
  const std::string lower = Lower(name);
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (lower == kNames[i]) return static_cast<int>(i) + 1;
  }
  return std::nullopt;
}

std::optional<TimeSec> ParseSyslogTimestamp(std::string_view text, int year) {
  // "Mmm dd HH:MM:SS" — RFC 3164 pads single-digit days with a space
  // ("Jan  3"), so split on runs of spaces rather than fixed columns.
  const std::string_view s = Trim(text);
  if (s.size() < 4) return std::nullopt;
  const auto month = ParseMonthName(s.substr(0, 3));
  if (!month) return std::nullopt;
  std::size_t i = 3;
  while (i < s.size() && s[i] == ' ') ++i;
  std::size_t day_end = i;
  while (day_end < s.size() && s[day_end] >= '0' && s[day_end] <= '9') {
    ++day_end;
  }
  const auto day = ParseInt(s.substr(i, day_end - i));
  if (!day || day_end >= s.size() || s[day_end] != ' ') return std::nullopt;
  i = day_end + 1;
  const std::string_view clock = s.substr(i);
  if (clock.size() != 8 || clock[2] != ':' || clock[5] != ':') {
    return std::nullopt;
  }
  const auto hour = ParseInt(clock.substr(0, 2));
  const auto minute = ParseInt(clock.substr(3, 2));
  const auto sec = ParseInt(clock.substr(6, 2));
  if (!hour || !minute || !sec) return std::nullopt;
  return EpochSeconds(year, *month, static_cast<int>(*day),
                      static_cast<int>(*hour), static_cast<int>(*minute),
                      static_cast<int>(*sec));
}

}  // namespace hpcfail::parse
