#include "trace/layout.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace hpcfail {

MachineLayout::MachineLayout(std::vector<NodePlacement> placements)
    : placements_(std::move(placements)) {
  std::sort(placements_.begin(), placements_.end(),
            [](const NodePlacement& a, const NodePlacement& b) {
              return a.node < b.node;
            });
  for (std::size_t i = 1; i < placements_.size(); ++i) {
    if (placements_[i].node == placements_[i - 1].node) {
      throw std::invalid_argument("duplicate node placement in MachineLayout");
    }
  }
  for (const NodePlacement& p : placements_) {
    if (!p.node.valid() || !p.rack.valid() || p.position_in_rack < 1 ||
        p.position_in_rack > kMaxPositionInRack) {
      throw std::invalid_argument("invalid node placement");
    }
  }
}

std::optional<NodePlacement> MachineLayout::placement(NodeId node) const {
  auto it = std::lower_bound(placements_.begin(), placements_.end(), node,
                             [](const NodePlacement& p, NodeId n) {
                               return p.node < n;
                             });
  if (it == placements_.end() || it->node != node) return std::nullopt;
  return *it;
}

std::optional<RackId> MachineLayout::rack_of(NodeId node) const {
  auto p = placement(node);
  if (!p) return std::nullopt;
  return p->rack;
}

std::vector<NodeId> MachineLayout::nodes_in_rack(RackId rack) const {
  std::vector<NodeId> out;
  for (const NodePlacement& p : placements_) {
    if (p.rack == rack) out.push_back(p.node);
  }
  return out;
}

int MachineLayout::num_racks() const {
  std::unordered_set<RackId> racks;
  for (const NodePlacement& p : placements_) racks.insert(p.rack);
  return static_cast<int>(racks.size());
}

MachineLayout MachineLayout::Grid(int num_nodes, int nodes_per_rack,
                                  int racks_per_row) {
  if (num_nodes < 0 || nodes_per_rack < 1 || racks_per_row < 1) {
    throw std::invalid_argument("invalid grid layout parameters");
  }
  std::vector<NodePlacement> placements;
  placements.reserve(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    const int rack = n / nodes_per_rack;
    NodePlacement p;
    p.node = NodeId{n};
    p.rack = RackId{rack};
    // Fill racks bottom-up, wrapping if a rack holds more nodes than
    // kMaxPositionInRack distinct shelf positions.
    p.position_in_rack = (n % nodes_per_rack) % kMaxPositionInRack + 1;
    p.room_row = rack / racks_per_row;
    p.room_col = rack % racks_per_row;
    placements.push_back(p);
  }
  return MachineLayout(std::move(placements));
}

}  // namespace hpcfail
