#include "trace/failure.h"

namespace hpcfail {
namespace {

template <typename Enum, std::size_t N>
std::optional<Enum> ParseByName(
    std::string_view s, const std::array<Enum, N>& all) {
  for (Enum e : all) {
    if (ToString(e) == s) return e;
  }
  return std::nullopt;
}

}  // namespace

std::string_view ToString(FailureCategory c) {
  switch (c) {
    case FailureCategory::kEnvironment: return "environment";
    case FailureCategory::kHardware: return "hardware";
    case FailureCategory::kHuman: return "human";
    case FailureCategory::kNetwork: return "network";
    case FailureCategory::kSoftware: return "software";
    case FailureCategory::kUndetermined: return "undetermined";
  }
  return "invalid";
}

std::string_view ToString(HardwareComponent c) {
  switch (c) {
    case HardwareComponent::kCpu: return "cpu";
    case HardwareComponent::kMemory: return "memory";
    case HardwareComponent::kNodeBoard: return "node_board";
    case HardwareComponent::kPowerSupply: return "power_supply";
    case HardwareComponent::kFan: return "fan";
    case HardwareComponent::kMscBoard: return "msc_board";
    case HardwareComponent::kMidplane: return "midplane";
    case HardwareComponent::kNic: return "nic";
    case HardwareComponent::kOtherHardware: return "other_hardware";
  }
  return "invalid";
}

std::string_view ToString(SoftwareComponent c) {
  switch (c) {
    case SoftwareComponent::kDst: return "dst";
    case SoftwareComponent::kOs: return "os";
    case SoftwareComponent::kPfs: return "pfs";
    case SoftwareComponent::kCfs: return "cfs";
    case SoftwareComponent::kPatchInstall: return "patch_install";
    case SoftwareComponent::kScheduler: return "scheduler";
    case SoftwareComponent::kOtherSoftware: return "other_software";
  }
  return "invalid";
}

std::string_view ToString(EnvironmentEvent c) {
  switch (c) {
    case EnvironmentEvent::kPowerOutage: return "power_outage";
    case EnvironmentEvent::kPowerSpike: return "power_spike";
    case EnvironmentEvent::kUps: return "ups";
    case EnvironmentEvent::kChiller: return "chiller";
    case EnvironmentEvent::kOtherEnvironment: return "other_environment";
  }
  return "invalid";
}

std::optional<FailureCategory> ParseFailureCategory(std::string_view s) {
  return ParseByName(s, AllFailureCategories());
}
std::optional<HardwareComponent> ParseHardwareComponent(std::string_view s) {
  return ParseByName(s, AllHardwareComponents());
}
std::optional<SoftwareComponent> ParseSoftwareComponent(std::string_view s) {
  return ParseByName(s, AllSoftwareComponents());
}
std::optional<EnvironmentEvent> ParseEnvironmentEvent(std::string_view s) {
  return ParseByName(s, AllEnvironmentEvents());
}

FailureRecord MakeHardwareFailure(SystemId sys, NodeId node, TimeSec start,
                                  TimeSec end, HardwareComponent component) {
  FailureRecord r;
  r.system = sys;
  r.node = node;
  r.start = start;
  r.end = end;
  r.category = FailureCategory::kHardware;
  r.hardware = component;
  return r;
}

FailureRecord MakeSoftwareFailure(SystemId sys, NodeId node, TimeSec start,
                                  TimeSec end, SoftwareComponent component) {
  FailureRecord r;
  r.system = sys;
  r.node = node;
  r.start = start;
  r.end = end;
  r.category = FailureCategory::kSoftware;
  r.software = component;
  return r;
}

FailureRecord MakeEnvironmentFailure(SystemId sys, NodeId node, TimeSec start,
                                     TimeSec end, EnvironmentEvent event) {
  FailureRecord r;
  r.system = sys;
  r.node = node;
  r.start = start;
  r.end = end;
  r.category = FailureCategory::kEnvironment;
  r.environment = event;
  return r;
}

FailureRecord MakeFailure(SystemId sys, NodeId node, TimeSec start, TimeSec end,
                          FailureCategory category) {
  FailureRecord r;
  r.system = sys;
  r.node = node;
  r.start = start;
  r.end = end;
  r.category = category;
  return r;
}

}  // namespace hpcfail
