#include "trace/lanl_import.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <istream>
#include <map>

namespace hpcfail::lanl {
namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool Contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

std::optional<long long> ParseInt(std::string_view s) {
  long long v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::vector<std::string> Split(const std::string& line, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  for (std::string& f : out) {
    // Trim whitespace and stray quotes.
    while (!f.empty() && (std::isspace(static_cast<unsigned char>(f.front())) ||
                          f.front() == '"')) {
      f.erase(f.begin());
    }
    while (!f.empty() && (std::isspace(static_cast<unsigned char>(f.back())) ||
                          f.back() == '"')) {
      f.pop_back();
    }
  }
  return out;
}

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInMonth(int y, int m) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

// Days from 1970-01-01 to y-m-d.
std::optional<long long> DaysSinceEpoch(int y, int m, int d) {
  if (y < 1970 || m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m)) {
    return std::nullopt;
  }
  long long days = 0;
  for (int year = 1970; year < y; ++year) days += IsLeap(year) ? 366 : 365;
  for (int month = 1; month < m; ++month) days += DaysInMonth(y, month);
  return days + (d - 1);
}

}  // namespace

std::optional<TimeSec> ParseLanlTimestamp(std::string_view text) {
  // Forms: "MM/DD/YYYY HH:MM", "M/D/YY H:MM", optionally ":SS".
  const std::string s(text);
  int fields[6] = {0, 0, 0, 0, 0, 0};  // M, D, Y, h, m, s
  int field = 0;
  int value = 0;
  bool have_digit = false;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    const char c = i < s.size() ? s[i] : '\0';
    if (c >= '0' && c <= '9') {
      value = value * 10 + (c - '0');
      have_digit = true;
      if (value > 99999) return std::nullopt;
    } else if (c == '/' || c == ' ' || c == ':' || c == '\0' || c == '\t') {
      if (have_digit) {
        if (field >= 6) return std::nullopt;
        fields[field++] = value;
        value = 0;
        have_digit = false;
      } else if (c != ' ' && c != '\0' && c != '\t') {
        return std::nullopt;  // "//" or ":" with no digits
      }
    } else {
      return std::nullopt;
    }
  }
  if (field < 5) return std::nullopt;  // need at least M/D/Y H:M
  int year = fields[2];
  // Two-digit years: the release spans 1996-2005, so pivot at 70.
  if (year < 100) year = year >= 70 ? 1900 + year : 2000 + year;
  const auto days = DaysSinceEpoch(year, fields[0], fields[1]);
  if (!days) return std::nullopt;
  if (fields[3] > 23 || fields[4] > 59 || fields[5] > 60) return std::nullopt;
  return *days * kDay + fields[3] * kHour + fields[4] * kMinute + fields[5];
}

std::optional<FailureCategory> MapLanlCategory(std::string_view text) {
  const std::string t = Lower(text);
  if (t.empty()) return std::nullopt;
  if (Contains(t, "facilit") || Contains(t, "environ") ||
      Contains(t, "power") || Contains(t, "chiller")) {
    return FailureCategory::kEnvironment;
  }
  if (Contains(t, "human") || Contains(t, "operator")) {
    return FailureCategory::kHuman;
  }
  if (Contains(t, "network")) return FailureCategory::kNetwork;
  if (Contains(t, "software")) return FailureCategory::kSoftware;
  if (Contains(t, "hardware")) return FailureCategory::kHardware;
  if (Contains(t, "undeterm") || Contains(t, "unknown") ||
      Contains(t, "unresolv")) {
    return FailureCategory::kUndetermined;
  }
  return std::nullopt;
}

std::optional<HardwareComponent> MapLanlHardware(std::string_view text) {
  const std::string t = Lower(text);
  if (t.empty()) return std::nullopt;
  if (Contains(t, "cpu") || Contains(t, "processor")) {
    return HardwareComponent::kCpu;
  }
  if (Contains(t, "dimm") || Contains(t, "memory") || Contains(t, "dram")) {
    return HardwareComponent::kMemory;
  }
  if (Contains(t, "node board") || Contains(t, "nodeboard") ||
      Contains(t, "motherboard") || Contains(t, "system board")) {
    return HardwareComponent::kNodeBoard;
  }
  if (Contains(t, "power supply") || Contains(t, "psu")) {
    return HardwareComponent::kPowerSupply;
  }
  if (Contains(t, "fan")) return HardwareComponent::kFan;
  if (Contains(t, "msc")) return HardwareComponent::kMscBoard;
  if (Contains(t, "midplane") || Contains(t, "mid-plane")) {
    return HardwareComponent::kMidplane;
  }
  if (Contains(t, "nic") || Contains(t, "interface") ||
      Contains(t, "adapter")) {
    return HardwareComponent::kNic;
  }
  return HardwareComponent::kOtherHardware;
}

std::optional<SoftwareComponent> MapLanlSoftware(std::string_view text) {
  const std::string t = Lower(text);
  if (t.empty()) return std::nullopt;
  if (Contains(t, "dst") || Contains(t, "distributed storage")) {
    return SoftwareComponent::kDst;
  }
  if (Contains(t, "parallel file") || Contains(t, "pfs")) {
    return SoftwareComponent::kPfs;
  }
  if (Contains(t, "cluster file") || Contains(t, "cfs")) {
    return SoftwareComponent::kCfs;
  }
  if (Contains(t, "patch") || Contains(t, "upgrade")) {
    return SoftwareComponent::kPatchInstall;
  }
  if (Contains(t, "sched") || Contains(t, "resource manager")) {
    return SoftwareComponent::kScheduler;
  }
  if (Contains(t, "os") || Contains(t, "operating system") ||
      Contains(t, "kernel")) {
    return SoftwareComponent::kOs;
  }
  return SoftwareComponent::kOtherSoftware;
}

std::optional<EnvironmentEvent> MapLanlEnvironment(std::string_view text) {
  const std::string t = Lower(text);
  if (t.empty()) return std::nullopt;
  if (Contains(t, "outage") || Contains(t, "power loss") ||
      Contains(t, "blackout")) {
    return EnvironmentEvent::kPowerOutage;
  }
  if (Contains(t, "spike") || Contains(t, "surge")) {
    return EnvironmentEvent::kPowerSpike;
  }
  if (Contains(t, "ups")) return EnvironmentEvent::kUps;
  if (Contains(t, "chiller") || Contains(t, "cooling") ||
      Contains(t, "a/c") || Contains(t, "air cond")) {
    return EnvironmentEvent::kChiller;
  }
  return EnvironmentEvent::kOtherEnvironment;
}

ImportResult ImportFailures(std::istream& is, const ImportConfig& config) {
  ImportResult out;
  const int max_col =
      std::max({config.col_system, config.col_node, config.col_start,
                config.col_end, config.col_category, config.col_subcategory});
  std::string line;
  std::size_t lineno = 0;
  bool header_pending = config.has_header;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (header_pending) {
      header_pending = false;
      continue;
    }
    const std::vector<std::string> f = Split(line, config.delimiter);
    auto skip = [&](const std::string& reason) {
      out.skipped.push_back({lineno, reason});
    };
    if (static_cast<int>(f.size()) <= max_col) {
      skip("too few columns");
      continue;
    }
    const auto system =
        ParseInt(f[static_cast<std::size_t>(config.col_system)]);
    const auto node = ParseInt(f[static_cast<std::size_t>(config.col_node)]);
    if (!system || !node || *system < 0 || *node < 0) {
      skip("bad system/node id");
      continue;
    }
    const auto start =
        ParseLanlTimestamp(f[static_cast<std::size_t>(config.col_start)]);
    if (!start) {
      skip("bad start timestamp");
      continue;
    }
    // A missing end timestamp means the outage record was never closed;
    // treat as a zero-length outage rather than dropping the failure.
    const auto end =
        ParseLanlTimestamp(f[static_cast<std::size_t>(config.col_end)]);
    const TimeSec end_time = end.value_or(*start);
    if (end_time < *start) {
      skip("end before start");
      continue;
    }
    const auto category =
        MapLanlCategory(f[static_cast<std::size_t>(config.col_category)]);
    if (!category) {
      skip("unrecognized root-cause category");
      continue;
    }
    FailureRecord r;
    r.system = SystemId{static_cast<int>(*system)};
    r.node = NodeId{static_cast<int>(*node)};
    r.start = *start;
    r.end = end_time;
    r.category = *category;
    if (config.col_subcategory >= 0) {
      const std::string& sub =
          f[static_cast<std::size_t>(config.col_subcategory)];
      switch (*category) {
        case FailureCategory::kHardware:
          r.hardware = MapLanlHardware(sub);
          break;
        case FailureCategory::kSoftware:
          r.software = MapLanlSoftware(sub);
          break;
        case FailureCategory::kEnvironment:
          r.environment = MapLanlEnvironment(sub);
          break;
        default:
          break;
      }
    }
    out.failures.push_back(std::move(r));
  }
  return out;
}

AssembleResult AssembleTrace(const ImportResult& imported,
                             int nodes_per_system) {
  // Per-system observation span and largest node id seen.
  struct SystemSpan {
    TimeSec begin = 0;
    TimeSec end = 0;
    int max_node = 0;
  };
  std::map<int, SystemSpan> spans;
  for (const FailureRecord& f : imported.failures) {
    auto [it, inserted] =
        spans.try_emplace(f.system.value, SystemSpan{f.start, f.end, 0});
    if (!inserted) {
      it->second.begin = std::min(it->second.begin, f.start);
      it->second.end = std::max(it->second.end, f.end);
    }
    it->second.max_node = std::max(it->second.max_node, f.node.value);
  }
  AssembleResult out;
  for (const auto& [sys, span] : spans) {
    SystemConfig c;
    c.id = SystemId{sys};
    c.name = "system" + std::to_string(sys);
    c.group = SystemGroup::kSmp;
    c.num_nodes =
        nodes_per_system > 0 ? nodes_per_system : span.max_node + 1;
    c.procs_per_node = 4;
    c.observed = {span.begin, span.end + kDay};
    out.trace.AddSystem(std::move(c));
  }
  for (const FailureRecord& f : imported.failures) {
    if (nodes_per_system > 0 && f.node.value >= nodes_per_system) {
      ++out.dropped_out_of_range;
      continue;
    }
    out.trace.AddFailure(f);
  }
  out.trace.Finalize();
  return out;
}

}  // namespace hpcfail::lanl
