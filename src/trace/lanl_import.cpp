#include "trace/lanl_import.h"

#include <algorithm>
#include <istream>
#include <map>

#include "trace/parse_util.h"

namespace hpcfail::lanl {

using parse::Contains;
using parse::Lower;

std::optional<TimeSec> ParseLanlTimestamp(std::string_view text) {
  return parse::ParseUsTimestamp(text);
}

std::optional<FailureCategory> MapLanlCategory(std::string_view text) {
  const std::string t = Lower(text);
  if (t.empty()) return std::nullopt;
  if (Contains(t, "facilit") || Contains(t, "environ") ||
      Contains(t, "power") || Contains(t, "chiller")) {
    return FailureCategory::kEnvironment;
  }
  if (Contains(t, "human") || Contains(t, "operator")) {
    return FailureCategory::kHuman;
  }
  if (Contains(t, "network")) return FailureCategory::kNetwork;
  if (Contains(t, "software")) return FailureCategory::kSoftware;
  if (Contains(t, "hardware")) return FailureCategory::kHardware;
  if (Contains(t, "undeterm") || Contains(t, "unknown") ||
      Contains(t, "unresolv")) {
    return FailureCategory::kUndetermined;
  }
  return std::nullopt;
}

std::optional<HardwareComponent> MapLanlHardware(std::string_view text) {
  const std::string t = Lower(text);
  if (t.empty()) return std::nullopt;
  if (Contains(t, "cpu") || Contains(t, "processor")) {
    return HardwareComponent::kCpu;
  }
  if (Contains(t, "dimm") || Contains(t, "memory") || Contains(t, "dram")) {
    return HardwareComponent::kMemory;
  }
  if (Contains(t, "node board") || Contains(t, "nodeboard") ||
      Contains(t, "motherboard") || Contains(t, "system board")) {
    return HardwareComponent::kNodeBoard;
  }
  if (Contains(t, "power supply") || Contains(t, "psu")) {
    return HardwareComponent::kPowerSupply;
  }
  if (Contains(t, "fan")) return HardwareComponent::kFan;
  if (Contains(t, "msc")) return HardwareComponent::kMscBoard;
  if (Contains(t, "midplane") || Contains(t, "mid-plane")) {
    return HardwareComponent::kMidplane;
  }
  if (Contains(t, "nic") || Contains(t, "interface") ||
      Contains(t, "adapter")) {
    return HardwareComponent::kNic;
  }
  return HardwareComponent::kOtherHardware;
}

std::optional<SoftwareComponent> MapLanlSoftware(std::string_view text) {
  const std::string t = Lower(text);
  if (t.empty()) return std::nullopt;
  if (Contains(t, "dst") || Contains(t, "distributed storage")) {
    return SoftwareComponent::kDst;
  }
  if (Contains(t, "parallel file") || Contains(t, "pfs")) {
    return SoftwareComponent::kPfs;
  }
  if (Contains(t, "cluster file") || Contains(t, "cfs")) {
    return SoftwareComponent::kCfs;
  }
  if (Contains(t, "patch") || Contains(t, "upgrade")) {
    return SoftwareComponent::kPatchInstall;
  }
  if (Contains(t, "sched") || Contains(t, "resource manager")) {
    return SoftwareComponent::kScheduler;
  }
  if (Contains(t, "os") || Contains(t, "operating system") ||
      Contains(t, "kernel")) {
    return SoftwareComponent::kOs;
  }
  return SoftwareComponent::kOtherSoftware;
}

std::optional<EnvironmentEvent> MapLanlEnvironment(std::string_view text) {
  const std::string t = Lower(text);
  if (t.empty()) return std::nullopt;
  if (Contains(t, "outage") || Contains(t, "power loss") ||
      Contains(t, "blackout")) {
    return EnvironmentEvent::kPowerOutage;
  }
  if (Contains(t, "spike") || Contains(t, "surge")) {
    return EnvironmentEvent::kPowerSpike;
  }
  if (Contains(t, "ups")) return EnvironmentEvent::kUps;
  if (Contains(t, "chiller") || Contains(t, "cooling") ||
      Contains(t, "a/c") || Contains(t, "air cond")) {
    return EnvironmentEvent::kChiller;
  }
  return EnvironmentEvent::kOtherEnvironment;
}

std::optional<std::string> ParseLanlRow(const std::string& line,
                                        const ImportConfig& config,
                                        FailureRecord* out) {
  const int max_col =
      std::max({config.col_system, config.col_node, config.col_start,
                config.col_end, config.col_category, config.col_subcategory});
  const std::vector<std::string> f =
      parse::SplitTrimmed(line, config.delimiter);
  if (static_cast<int>(f.size()) <= max_col) return "too few columns";
  const auto system =
      parse::ParseInt(f[static_cast<std::size_t>(config.col_system)]);
  const auto node =
      parse::ParseInt(f[static_cast<std::size_t>(config.col_node)]);
  if (!system || !node || *system < 0 || *node < 0) {
    return "bad system/node id";
  }
  const auto start =
      ParseLanlTimestamp(f[static_cast<std::size_t>(config.col_start)]);
  if (!start) return "bad start timestamp";
  // A missing end timestamp means the outage record was never closed;
  // treat as a zero-length outage rather than dropping the failure.
  const auto end =
      ParseLanlTimestamp(f[static_cast<std::size_t>(config.col_end)]);
  const TimeSec end_time = end.value_or(*start);
  if (end_time < *start) return "end before start";
  const auto category =
      MapLanlCategory(f[static_cast<std::size_t>(config.col_category)]);
  if (!category) return "unrecognized root-cause category";
  FailureRecord r;
  r.system = SystemId{static_cast<int>(*system)};
  r.node = NodeId{static_cast<int>(*node)};
  r.start = *start;
  r.end = end_time;
  r.category = *category;
  if (config.col_subcategory >= 0) {
    const std::string& sub =
        f[static_cast<std::size_t>(config.col_subcategory)];
    switch (*category) {
      case FailureCategory::kHardware:
        r.hardware = MapLanlHardware(sub);
        break;
      case FailureCategory::kSoftware:
        r.software = MapLanlSoftware(sub);
        break;
      case FailureCategory::kEnvironment:
        r.environment = MapLanlEnvironment(sub);
        break;
      default:
        break;
    }
  }
  *out = std::move(r);
  return std::nullopt;
}

ImportResult ImportFailures(std::istream& is, const ImportConfig& config) {
  ImportResult out;
  std::string line;
  std::size_t lineno = 0;
  bool header_pending = config.has_header;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (header_pending) {
      header_pending = false;
      continue;
    }
    FailureRecord r;
    if (auto reason = ParseLanlRow(line, config, &r)) {
      out.skipped.push_back({lineno, std::move(*reason)});
      continue;
    }
    out.failures.push_back(std::move(r));
  }
  return out;
}

AssembleResult AssembleTrace(const ImportResult& imported,
                             int nodes_per_system) {
  // Per-system observation span and largest node id seen.
  struct SystemSpan {
    TimeSec begin = 0;
    TimeSec end = 0;
    int max_node = 0;
  };
  std::map<int, SystemSpan> spans;
  for (const FailureRecord& f : imported.failures) {
    auto [it, inserted] =
        spans.try_emplace(f.system.value, SystemSpan{f.start, f.end, 0});
    if (!inserted) {
      it->second.begin = std::min(it->second.begin, f.start);
      it->second.end = std::max(it->second.end, f.end);
    }
    it->second.max_node = std::max(it->second.max_node, f.node.value);
  }
  AssembleResult out;
  for (const auto& [sys, span] : spans) {
    SystemConfig c;
    c.id = SystemId{sys};
    c.name = "system" + std::to_string(sys);
    c.group = SystemGroup::kSmp;
    c.num_nodes =
        nodes_per_system > 0 ? nodes_per_system : span.max_node + 1;
    c.procs_per_node = 4;
    c.observed = {span.begin, span.end + kDay};
    out.trace.AddSystem(std::move(c));
  }
  for (const FailureRecord& f : imported.failures) {
    if (nodes_per_system > 0 && f.node.value >= nodes_per_system) {
      ++out.dropped_out_of_range;
      continue;
    }
    out.trace.AddFailure(f);
  }
  out.trace.Finalize();
  return out;
}

}  // namespace hpcfail::lanl
