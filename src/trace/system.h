// SystemConfig describes one HPC cluster; Trace bundles every log stream the
// paper analyzes for a set of systems.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "trace/environment.h"
#include "trace/failure.h"
#include "trace/job.h"
#include "trace/layout.h"
#include "trace/types.h"

namespace hpcfail {

// Hardware architecture groups from Section II.
enum class SystemGroup : std::uint8_t {
  kSmp = 0,   // group-1: 4-way SMP nodes
  kNuma = 1,  // group-2: NUMA nodes with ~128 processors each
};

std::string_view ToString(SystemGroup g);
std::optional<SystemGroup> ParseSystemGroup(std::string_view s);

// Static description of one cluster.
struct SystemConfig {
  SystemId id;
  std::string name;
  SystemGroup group = SystemGroup::kSmp;
  int num_nodes = 0;
  int procs_per_node = 0;
  // Observation period covered by the logs.
  TimeInterval observed;
  MachineLayout layout;  // empty when no layout file exists

  int num_procs() const { return num_nodes * procs_per_node; }
};

// A complete multi-system trace. Event streams are stored sorted by start
// time (ties by node id); Trace validates and maintains this invariant so the
// analyses can binary search.
class Trace {
 public:
  Trace() = default;

  // Systems must have unique ids. Throws std::invalid_argument on violation.
  void AddSystem(SystemConfig config);

  // Record insertion. Records may be added in any order; call Finalize()
  // (or let an analysis do it implicitly via the sorted accessors) before
  // querying. Records referencing unknown systems/nodes throw.
  void AddFailure(FailureRecord r);
  void AddMaintenance(MaintenanceRecord r);
  void AddJob(JobRecord r);
  void AddTemperature(TemperatureSample s);
  void SetNeutronSeries(std::vector<NeutronSample> series);

  // Sorts all streams and checks record consistency. Idempotent.
  void Finalize();
  bool finalized() const { return finalized_; }

  // Restore path for deserializers (the engine-layer artifact cache): adopts
  // streams that are *already* in Finalize() order, skipping the re-sort.
  // Every record is still range- and consistency-checked (one linear pass),
  // and out-of-order streams throw std::invalid_argument — a corrupted or
  // hand-edited snapshot must fail loudly, never produce a mis-sorted trace.
  static Trace FromSorted(std::vector<SystemConfig> systems,
                          std::vector<FailureRecord> failures,
                          std::vector<MaintenanceRecord> maintenance,
                          std::vector<JobRecord> jobs,
                          std::vector<TemperatureSample> temperatures,
                          std::vector<NeutronSample> neutrons);

  const std::vector<SystemConfig>& systems() const { return systems_; }
  const SystemConfig* FindSystem(SystemId id) const;
  const SystemConfig& system(SystemId id) const;  // throws if absent

  const std::vector<FailureRecord>& failures() const;
  const std::vector<MaintenanceRecord>& maintenance() const;
  const std::vector<JobRecord>& jobs() const;
  const std::vector<TemperatureSample>& temperatures() const;
  const std::vector<NeutronSample>& neutron_series() const;

  // Failures belonging to one system, in time order.
  std::vector<FailureRecord> FailuresOfSystem(SystemId id) const;
  std::vector<JobRecord> JobsOfSystem(SystemId id) const;

  std::size_t num_failures() const { return failures_.size(); }

 private:
  void CheckFinalized() const;

  std::vector<SystemConfig> systems_;
  std::vector<FailureRecord> failures_;
  std::vector<MaintenanceRecord> maintenance_;
  std::vector<JobRecord> jobs_;
  std::vector<TemperatureSample> temperatures_;
  std::vector<NeutronSample> neutrons_;
  bool finalized_ = false;
};

}  // namespace hpcfail
