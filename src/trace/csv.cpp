#include "trace/csv.h"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/metrics.h"
#include "obs/span.h"
#include "trace/numeric.h"
#include "trace/parse_util.h"

namespace hpcfail::csv {
namespace {

namespace fs = std::filesystem;

// Reader health counters: every malformed row, silently tolerated fixup
// (CRLF, BOM) and skipped blank line is visible here, so "how dirty was
// that log file" never requires re-reading it.
struct CsvMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& lines = reg.GetCounter(
      "hpcfail_csv_lines_total", "Lines read by the CSV readers (incl. headers)");
  obs::Counter& rows = reg.GetCounter(
      "hpcfail_csv_rows_total", "Data rows handed to a row parser");
  obs::Counter& blank_lines = reg.GetCounter(
      "hpcfail_csv_blank_lines_total", "Blank data lines skipped");
  obs::Counter& parse_errors = reg.GetCounter(
      "hpcfail_csv_parse_errors_total", "Rows/fields rejected with ParseError");
  obs::Counter& crlf_fixups = reg.GetCounter(
      "hpcfail_csv_crlf_fixups_total", "Lines with a trailing CR stripped");
  obs::Counter& bom_fixups = reg.GetCounter(
      "hpcfail_csv_bom_fixups_total", "Leading UTF-8 BOMs stripped");
  obs::Counter& failure_records = reg.GetCounter(
      "hpcfail_csv_failure_records_total",
      "failures.csv rows parsed successfully (batch and stream paths)");

  static CsvMetrics& Get() {
    static CsvMetrics m;
    return m;
  }
};

[[noreturn]] void Fail(std::size_t line, const std::string& msg) {
  CsvMetrics::Get().parse_errors.Increment();
  throw ParseError(line, msg);
}

std::int64_t ParseInt(const std::string& field, std::size_t line) {
  // Shared strict-integer grammar (trace/parse_util.h): whole-field match
  // required, so "12x" and "" fail here just as they always have.
  const std::optional<long long> v = parse::ParseInt(field);
  if (!v) Fail(line, "expected integer, got '" + field + "'");
  return static_cast<std::int64_t>(*v);
}

double ParseDouble(const std::string& field, std::size_t line) {
  // Locale-independent (trace/numeric.h): std::stod would parse "3.5" as 3
  // under a comma-decimal LC_NUMERIC, silently corrupting every value.
  const std::optional<double> v = ParseDoubleText(field);
  if (!v) Fail(line, "expected number, got '" + field + "'");
  return *v;
}

// std::getline splits on '\n' only, so a CRLF-terminated file (Windows
// editors, Excel exports) leaves a trailing '\r' on every line — which used
// to surface as a baffling "bad header" error and a stray '\r' glued to the
// last field of each row. Strip it before header comparison and splitting.
void StripTrailingCr(std::string& line) {
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();
    CsvMetrics::Get().crlf_fixups.Increment();
  }
}

// Reads lines, validates the header, and hands each data row (already split)
// to `row_fn(fields, line_number)`.
template <typename RowFn>
void ForEachRow(std::istream& is, const std::string& expected_header,
                std::size_t expected_fields, RowFn row_fn) {
  CsvMetrics& metrics = CsvMetrics::Get();
  std::string line;
  std::size_t lineno = 0;
  if (!std::getline(is, line)) Fail(1, "empty input, missing header");
  ++lineno;
  metrics.lines.Increment();
  StripLeadingBom(line);
  StripTrailingCr(line);
  if (line != expected_header) {
    Fail(lineno, "bad header: expected '" + expected_header + "'");
  }
  while (std::getline(is, line)) {
    ++lineno;
    metrics.lines.Increment();
    StripTrailingCr(line);
    if (line.empty()) {
      metrics.blank_lines.Increment();
      continue;
    }
    metrics.rows.Increment();
    std::vector<std::string> fields = SplitLine(line);
    if (fields.size() != expected_fields) {
      Fail(lineno, "expected " + std::to_string(expected_fields) +
                       " fields, got " + std::to_string(fields.size()));
    }
    row_fn(fields, lineno);
  }
}

constexpr const char* kFailureHeader =
    "system,node,start,end,category,subcategory";
constexpr const char* kMaintenanceHeader = "system,node,start,end";
constexpr const char* kJobHeader =
    "job,system,user,submit,dispatch,end,procs,nodes,killed_by_node_failure";
constexpr const char* kTemperatureHeader = "system,node,time,celsius";
constexpr const char* kNeutronHeader = "time,counts_per_minute";
constexpr const char* kSystemHeader =
    "system,name,group,num_nodes,procs_per_node,observed_begin,observed_end";
constexpr const char* kLayoutHeader =
    "system,node,rack,position_in_rack,room_row,room_col";

}  // namespace

ParseError::ParseError(std::size_t line, const std::string& message)
    : std::runtime_error("csv line " + std::to_string(line) + ": " + message),
      line_(line) {}

void StripLeadingBom(std::string& line) {
  if (line.size() >= 3 && line[0] == '\xEF' && line[1] == '\xBB' &&
      line[2] == '\xBF') {
    line.erase(0, 3);
    CsvMetrics::Get().bom_fixups.Increment();
  }
}

std::vector<std::string> SplitLine(const std::string& line) {
  return parse::Split(line, ',');
}

void WriteFailures(std::ostream& os, const std::vector<FailureRecord>& v) {
  os << kFailureHeader << '\n';
  for (const FailureRecord& r : v) {
    os << r.system.value << ',' << r.node.value << ',' << r.start << ','
       << r.end << ',' << ToString(r.category) << ',';
    if (r.hardware) {
      os << ToString(*r.hardware);
    } else if (r.software) {
      os << ToString(*r.software);
    } else if (r.environment) {
      os << ToString(*r.environment);
    }
    os << '\n';
  }
}

const std::string& FailuresHeader() {
  static const std::string header = kFailureHeader;
  return header;
}

FailureRecord ParseFailureRow(const std::vector<std::string>& f,
                              std::size_t line) {
  if (f.size() != 6) {
    Fail(line, "expected 6 fields, got " + std::to_string(f.size()));
  }
  FailureRecord r;
  r.system = SystemId{static_cast<int>(ParseInt(f[0], line))};
  r.node = NodeId{static_cast<int>(ParseInt(f[1], line))};
  r.start = ParseInt(f[2], line);
  r.end = ParseInt(f[3], line);
  auto cat = ParseFailureCategory(f[4]);
  if (!cat) Fail(line, "unknown failure category '" + f[4] + "'");
  r.category = *cat;
  if (!f[5].empty()) {
    switch (r.category) {
      case FailureCategory::kHardware:
        r.hardware = ParseHardwareComponent(f[5]);
        if (!r.hardware) Fail(line, "unknown hw component");
        break;
      case FailureCategory::kSoftware:
        r.software = ParseSoftwareComponent(f[5]);
        if (!r.software) Fail(line, "unknown sw component");
        break;
      case FailureCategory::kEnvironment:
        r.environment = ParseEnvironmentEvent(f[5]);
        if (!r.environment) Fail(line, "unknown env event");
        break;
      default:
        Fail(line, "subcategory given for category without one");
    }
  }
  if (!r.consistent()) Fail(line, "inconsistent failure record");
  CsvMetrics::Get().failure_records.Increment();
  return r;
}

std::vector<FailureRecord> ReadFailures(std::istream& is) {
  std::vector<FailureRecord> out;
  ForEachRow(is, kFailureHeader, 6,
             [&out](const std::vector<std::string>& f, std::size_t line) {
               out.push_back(ParseFailureRow(f, line));
             });
  return out;
}

void WriteMaintenance(std::ostream& os,
                      const std::vector<MaintenanceRecord>& v) {
  os << kMaintenanceHeader << '\n';
  for (const MaintenanceRecord& r : v) {
    os << r.system.value << ',' << r.node.value << ',' << r.start << ','
       << r.end << '\n';
  }
}

std::vector<MaintenanceRecord> ReadMaintenance(std::istream& is) {
  std::vector<MaintenanceRecord> out;
  ForEachRow(is, kMaintenanceHeader, 4,
             [&out](const std::vector<std::string>& f, std::size_t line) {
               MaintenanceRecord r;
               r.system = SystemId{static_cast<int>(ParseInt(f[0], line))};
               r.node = NodeId{static_cast<int>(ParseInt(f[1], line))};
               r.start = ParseInt(f[2], line);
               r.end = ParseInt(f[3], line);
               if (r.end < r.start) Fail(line, "negative maintenance window");
               out.push_back(r);
             });
  return out;
}

void WriteJobs(std::ostream& os, const std::vector<JobRecord>& v) {
  os << kJobHeader << '\n';
  for (const JobRecord& j : v) {
    os << j.id.value << ',' << j.system.value << ',' << j.user.value << ','
       << j.submit << ',' << j.dispatch << ',' << j.end << ',' << j.procs
       << ',';
    for (std::size_t i = 0; i < j.nodes.size(); ++i) {
      if (i > 0) os << ';';
      os << j.nodes[i].value;
    }
    os << ',' << (j.killed_by_node_failure ? 1 : 0) << '\n';
  }
}

std::vector<JobRecord> ReadJobs(std::istream& is) {
  std::vector<JobRecord> out;
  ForEachRow(is, kJobHeader, 9,
             [&out](const std::vector<std::string>& f, std::size_t line) {
               JobRecord j;
               j.id = JobId{static_cast<int>(ParseInt(f[0], line))};
               j.system = SystemId{static_cast<int>(ParseInt(f[1], line))};
               j.user = UserId{static_cast<int>(ParseInt(f[2], line))};
               j.submit = ParseInt(f[3], line);
               j.dispatch = ParseInt(f[4], line);
               j.end = ParseInt(f[5], line);
               j.procs = static_cast<int>(ParseInt(f[6], line));
               std::stringstream nodes(f[7]);
               std::string part;
               while (std::getline(nodes, part, ';')) {
                 if (!part.empty()) {
                   j.nodes.push_back(
                       NodeId{static_cast<int>(ParseInt(part, line))});
                 }
               }
               j.killed_by_node_failure = ParseInt(f[8], line) != 0;
               if (!j.consistent()) Fail(line, "inconsistent job record");
               out.push_back(std::move(j));
             });
  return out;
}

void WriteTemperatures(std::ostream& os,
                       const std::vector<TemperatureSample>& v) {
  os.precision(17);  // round-trip doubles exactly
  os << kTemperatureHeader << '\n';
  for (const TemperatureSample& s : v) {
    os << s.system.value << ',' << s.node.value << ',' << s.time << ','
       << s.celsius << '\n';
  }
}

std::vector<TemperatureSample> ReadTemperatures(std::istream& is) {
  std::vector<TemperatureSample> out;
  ForEachRow(is, kTemperatureHeader, 4,
             [&out](const std::vector<std::string>& f, std::size_t line) {
               TemperatureSample s;
               s.system = SystemId{static_cast<int>(ParseInt(f[0], line))};
               s.node = NodeId{static_cast<int>(ParseInt(f[1], line))};
               s.time = ParseInt(f[2], line);
               s.celsius = ParseDouble(f[3], line);
               out.push_back(s);
             });
  return out;
}

void WriteNeutrons(std::ostream& os, const std::vector<NeutronSample>& v) {
  os.precision(17);  // round-trip doubles exactly
  os << kNeutronHeader << '\n';
  for (const NeutronSample& s : v) {
    os << s.time << ',' << s.counts_per_minute << '\n';
  }
}

std::vector<NeutronSample> ReadNeutrons(std::istream& is) {
  std::vector<NeutronSample> out;
  ForEachRow(is, kNeutronHeader, 2,
             [&out](const std::vector<std::string>& f, std::size_t line) {
               NeutronSample s;
               s.time = ParseInt(f[0], line);
               s.counts_per_minute = ParseDouble(f[1], line);
               out.push_back(s);
             });
  return out;
}

void WriteSystems(std::ostream& os, const std::vector<SystemConfig>& v) {
  os << kSystemHeader << '\n';
  for (const SystemConfig& s : v) {
    os << s.id.value << ',' << s.name << ',' << ToString(s.group) << ','
       << s.num_nodes << ',' << s.procs_per_node << ',' << s.observed.begin
       << ',' << s.observed.end << '\n';
  }
}

std::vector<SystemConfig> ReadSystems(std::istream& is) {
  std::vector<SystemConfig> out;
  ForEachRow(is, kSystemHeader, 7,
             [&out](const std::vector<std::string>& f, std::size_t line) {
               SystemConfig s;
               s.id = SystemId{static_cast<int>(ParseInt(f[0], line))};
               s.name = f[1];
               auto g = ParseSystemGroup(f[2]);
               if (!g) Fail(line, "unknown system group '" + f[2] + "'");
               s.group = *g;
               s.num_nodes = static_cast<int>(ParseInt(f[3], line));
               s.procs_per_node = static_cast<int>(ParseInt(f[4], line));
               s.observed.begin = ParseInt(f[5], line);
               s.observed.end = ParseInt(f[6], line);
               out.push_back(std::move(s));
             });
  return out;
}

void WriteLayout(std::ostream& os, SystemId system, const MachineLayout& l) {
  os << kLayoutHeader << '\n';
  for (const NodePlacement& p : l.placements()) {
    os << system.value << ',' << p.node.value << ',' << p.rack.value << ','
       << p.position_in_rack << ',' << p.room_row << ',' << p.room_col << '\n';
  }
}

std::vector<std::pair<SystemId, NodePlacement>> ReadLayout(std::istream& is) {
  std::vector<std::pair<SystemId, NodePlacement>> out;
  ForEachRow(is, kLayoutHeader, 6,
             [&out](const std::vector<std::string>& f, std::size_t line) {
               SystemId sys{static_cast<int>(ParseInt(f[0], line))};
               NodePlacement p;
               p.node = NodeId{static_cast<int>(ParseInt(f[1], line))};
               p.rack = RackId{static_cast<int>(ParseInt(f[2], line))};
               p.position_in_rack = static_cast<int>(ParseInt(f[3], line));
               p.room_row = static_cast<int>(ParseInt(f[4], line));
               p.room_col = static_cast<int>(ParseInt(f[5], line));
               out.emplace_back(sys, p);
             });
  return out;
}

namespace {

std::ofstream OpenOut(const fs::path& p) {
  std::ofstream os(p);
  if (!os) throw std::runtime_error("cannot open for writing: " + p.string());
  return os;
}

std::ifstream OpenIn(const fs::path& p) {
  std::ifstream is(p);
  if (!is) throw std::runtime_error("cannot open for reading: " + p.string());
  return is;
}

}  // namespace

void SaveTrace(const Trace& trace, const std::string& dir) {
  fs::create_directories(dir);
  const fs::path base(dir);
  {
    auto os = OpenOut(base / "systems.csv");
    WriteSystems(os, trace.systems());
  }
  {
    auto os = OpenOut(base / "layout.csv");
    os << kLayoutHeader << '\n';
    for (const SystemConfig& s : trace.systems()) {
      for (const NodePlacement& p : s.layout.placements()) {
        os << s.id.value << ',' << p.node.value << ',' << p.rack.value << ','
           << p.position_in_rack << ',' << p.room_row << ',' << p.room_col
           << '\n';
      }
    }
  }
  {
    auto os = OpenOut(base / "failures.csv");
    WriteFailures(os, trace.failures());
  }
  {
    auto os = OpenOut(base / "maintenance.csv");
    WriteMaintenance(os, trace.maintenance());
  }
  {
    auto os = OpenOut(base / "jobs.csv");
    WriteJobs(os, trace.jobs());
  }
  {
    auto os = OpenOut(base / "temperatures.csv");
    WriteTemperatures(os, trace.temperatures());
  }
  {
    auto os = OpenOut(base / "neutrons.csv");
    WriteNeutrons(os, trace.neutron_series());
  }
}

Trace LoadTrace(const std::string& dir) {
  obs::ScopedTimer timer("ingest");
  const fs::path base(dir);
  Trace trace;

  std::vector<SystemConfig> systems;
  {
    auto is = OpenIn(base / "systems.csv");
    systems = ReadSystems(is);
  }
  {
    auto is = OpenIn(base / "layout.csv");
    auto rows = ReadLayout(is);
    for (SystemConfig& s : systems) {
      std::vector<NodePlacement> placements;
      for (const auto& [sys, p] : rows) {
        if (sys == s.id) placements.push_back(p);
      }
      s.layout = MachineLayout(std::move(placements));
    }
  }
  for (SystemConfig& s : systems) trace.AddSystem(std::move(s));

  {
    auto is = OpenIn(base / "failures.csv");
    for (FailureRecord& r : ReadFailures(is)) trace.AddFailure(std::move(r));
  }
  {
    auto is = OpenIn(base / "maintenance.csv");
    for (MaintenanceRecord& r : ReadMaintenance(is)) trace.AddMaintenance(r);
  }
  {
    auto is = OpenIn(base / "jobs.csv");
    for (JobRecord& r : ReadJobs(is)) trace.AddJob(std::move(r));
  }
  {
    auto is = OpenIn(base / "temperatures.csv");
    for (TemperatureSample& s : ReadTemperatures(is)) trace.AddTemperature(s);
  }
  {
    auto is = OpenIn(base / "neutrons.csv");
    trace.SetNeutronSeries(ReadNeutrons(is));
  }
  trace.Finalize();
  return trace;
}

}  // namespace hpcfail::csv
