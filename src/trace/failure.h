// Failure-event taxonomy and records, mirroring the LANL operational-data
// schema used by the paper: six high-level root-cause categories plus the
// lower-level hardware / software / environment subcategories the evaluation
// drills into.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "trace/types.h"

namespace hpcfail {

// High-level root-cause categories (Section II of the paper).
enum class FailureCategory : std::uint8_t {
  kEnvironment = 0,
  kHardware,
  kHuman,
  kNetwork,
  kSoftware,
  kUndetermined,
};
inline constexpr int kNumFailureCategories = 6;

// Hardware subcategories with dedicated records in the data (Figs. 10, 13).
enum class HardwareComponent : std::uint8_t {
  kCpu = 0,
  kMemory,       // memory DIMMs
  kNodeBoard,
  kPowerSupply,  // per-node power supply unit
  kFan,
  kMscBoard,
  kMidplane,
  kNic,
  kOtherHardware,
};
inline constexpr int kNumHardwareComponents = 9;

// Software subcategories (Fig. 11 right).
enum class SoftwareComponent : std::uint8_t {
  kDst = 0,       // distributed storage system
  kOs,
  kPfs,           // parallel file system
  kCfs,           // cluster file system
  kPatchInstall,
  kScheduler,
  kOtherSoftware,
};
inline constexpr int kNumSoftwareComponents = 7;

// Environment subcategories (Fig. 9).
enum class EnvironmentEvent : std::uint8_t {
  kPowerOutage = 0,
  kPowerSpike,
  kUps,
  kChiller,
  kOtherEnvironment,
};
inline constexpr int kNumEnvironmentEvents = 5;

std::string_view ToString(FailureCategory c);
std::string_view ToString(HardwareComponent c);
std::string_view ToString(SoftwareComponent c);
std::string_view ToString(EnvironmentEvent c);

// Parse helpers used by the CSV reader; return nullopt on unknown text.
std::optional<FailureCategory> ParseFailureCategory(std::string_view s);
std::optional<HardwareComponent> ParseHardwareComponent(std::string_view s);
std::optional<SoftwareComponent> ParseSoftwareComponent(std::string_view s);
std::optional<EnvironmentEvent> ParseEnvironmentEvent(std::string_view s);

constexpr std::array<FailureCategory, kNumFailureCategories>
AllFailureCategories() {
  return {FailureCategory::kEnvironment, FailureCategory::kHardware,
          FailureCategory::kHuman,       FailureCategory::kNetwork,
          FailureCategory::kSoftware,    FailureCategory::kUndetermined};
}

constexpr std::array<HardwareComponent, kNumHardwareComponents>
AllHardwareComponents() {
  return {HardwareComponent::kCpu,        HardwareComponent::kMemory,
          HardwareComponent::kNodeBoard,  HardwareComponent::kPowerSupply,
          HardwareComponent::kFan,        HardwareComponent::kMscBoard,
          HardwareComponent::kMidplane,   HardwareComponent::kNic,
          HardwareComponent::kOtherHardware};
}

constexpr std::array<SoftwareComponent, kNumSoftwareComponents>
AllSoftwareComponents() {
  return {SoftwareComponent::kDst,           SoftwareComponent::kOs,
          SoftwareComponent::kPfs,           SoftwareComponent::kCfs,
          SoftwareComponent::kPatchInstall,  SoftwareComponent::kScheduler,
          SoftwareComponent::kOtherSoftware};
}

constexpr std::array<EnvironmentEvent, kNumEnvironmentEvents>
AllEnvironmentEvents() {
  return {EnvironmentEvent::kPowerOutage, EnvironmentEvent::kPowerSpike,
          EnvironmentEvent::kUps,         EnvironmentEvent::kChiller,
          EnvironmentEvent::kOtherEnvironment};
}

// One node outage, the unit record of the LANL failure logs. At most one of
// the subcategory fields is set, and only when it matches `category`.
struct FailureRecord {
  SystemId system;
  NodeId node;
  TimeSec start = 0;    // when the outage began
  TimeSec end = 0;      // when the node was returned to service
  FailureCategory category = FailureCategory::kUndetermined;
  std::optional<HardwareComponent> hardware;
  std::optional<SoftwareComponent> software;
  std::optional<EnvironmentEvent> environment;

  TimeSec downtime() const { return end - start; }

  // Schema invariant: subcategory presence must agree with category, every
  // enum value must be in range, and end must not precede start. Both
  // ingest paths (Trace::AddFailure and the stream index) enforce this, so
  // stored records always pack losslessly into (category, subcategory)
  // byte encodings. Defined inline: streaming ingest calls it once per
  // admitted record, and an outline call was measurable there. Enum values
  // are checked because records built programmatically (LANL import glue,
  // checkpoint replay, fuzzed input) can carry any byte in an enum slot,
  // and an out-of-range value would round-trip wrongly through every
  // packed (category, subcategory) encoding.
  bool consistent() const {
    if (end < start) return false;
    if (static_cast<std::uint8_t>(category) >= kNumFailureCategories) {
      return false;
    }
    if (hardware.has_value() &&
        static_cast<std::uint8_t>(*hardware) >= kNumHardwareComponents) {
      return false;
    }
    if (software.has_value() &&
        static_cast<std::uint8_t>(*software) >= kNumSoftwareComponents) {
      return false;
    }
    if (environment.has_value() &&
        static_cast<std::uint8_t>(*environment) >= kNumEnvironmentEvents) {
      return false;
    }
    const bool is_hw = category == FailureCategory::kHardware;
    const bool is_sw = category == FailureCategory::kSoftware;
    const bool is_env = category == FailureCategory::kEnvironment;
    if (hardware.has_value() && !is_hw) return false;
    if (software.has_value() && !is_sw) return false;
    if (environment.has_value() && !is_env) return false;
    return true;
  }

  friend bool operator==(const FailureRecord&, const FailureRecord&) = default;
};

// Convenience constructors that keep the category/subcategory pairing correct.
FailureRecord MakeHardwareFailure(SystemId sys, NodeId node, TimeSec start,
                                  TimeSec end, HardwareComponent component);
FailureRecord MakeSoftwareFailure(SystemId sys, NodeId node, TimeSec start,
                                  TimeSec end, SoftwareComponent component);
FailureRecord MakeEnvironmentFailure(SystemId sys, NodeId node, TimeSec start,
                                     TimeSec end, EnvironmentEvent event);
FailureRecord MakeFailure(SystemId sys, NodeId node, TimeSec start, TimeSec end,
                          FailureCategory category);

// Unscheduled-maintenance event (Section VII.A.2): hardware-related downtime
// that is not itself a node failure.
struct MaintenanceRecord {
  SystemId system;
  NodeId node;
  TimeSec start = 0;
  TimeSec end = 0;

  friend bool operator==(const MaintenanceRecord&,
                         const MaintenanceRecord&) = default;
};

}  // namespace hpcfail
