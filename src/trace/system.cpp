#include "trace/system.h"

#include <algorithm>
#include <stdexcept>

#include "obs/span.h"

namespace hpcfail {

std::string_view ToString(SystemGroup g) {
  switch (g) {
    case SystemGroup::kSmp: return "smp";
    case SystemGroup::kNuma: return "numa";
  }
  return "invalid";
}

std::optional<SystemGroup> ParseSystemGroup(std::string_view s) {
  if (s == "smp") return SystemGroup::kSmp;
  if (s == "numa") return SystemGroup::kNuma;
  return std::nullopt;
}

void Trace::AddSystem(SystemConfig config) {
  if (!config.id.valid()) {
    throw std::invalid_argument("system id must be valid");
  }
  if (config.num_nodes <= 0 || config.procs_per_node <= 0) {
    throw std::invalid_argument("system must have nodes and processors");
  }
  if (!config.observed.valid()) {
    throw std::invalid_argument("system observation interval is invalid");
  }
  if (FindSystem(config.id) != nullptr) {
    throw std::invalid_argument("duplicate system id");
  }
  systems_.push_back(std::move(config));
  finalized_ = false;
}

namespace {

void CheckNode(const SystemConfig* sys, NodeId node, const char* what) {
  if (sys == nullptr) {
    throw std::invalid_argument(std::string(what) + ": unknown system");
  }
  if (!node.valid() || node.value >= sys->num_nodes) {
    throw std::invalid_argument(std::string(what) + ": node out of range");
  }
}

}  // namespace

void Trace::AddFailure(FailureRecord r) {
  CheckNode(FindSystem(r.system), r.node, "AddFailure");
  if (!r.consistent()) {
    throw std::invalid_argument("AddFailure: inconsistent record");
  }
  failures_.push_back(std::move(r));
  finalized_ = false;
}

void Trace::AddMaintenance(MaintenanceRecord r) {
  CheckNode(FindSystem(r.system), r.node, "AddMaintenance");
  if (r.end < r.start) {
    throw std::invalid_argument("AddMaintenance: negative duration");
  }
  maintenance_.push_back(r);
  finalized_ = false;
}

void Trace::AddJob(JobRecord r) {
  const SystemConfig* sys = FindSystem(r.system);
  if (!r.consistent()) {
    throw std::invalid_argument("AddJob: inconsistent record");
  }
  for (NodeId n : r.nodes) CheckNode(sys, n, "AddJob");
  jobs_.push_back(std::move(r));
  finalized_ = false;
}

void Trace::AddTemperature(TemperatureSample s) {
  CheckNode(FindSystem(s.system), s.node, "AddTemperature");
  temperatures_.push_back(s);
  finalized_ = false;
}

void Trace::SetNeutronSeries(std::vector<NeutronSample> series) {
  std::sort(series.begin(), series.end(),
            [](const NeutronSample& a, const NeutronSample& b) {
              return a.time < b.time;
            });
  neutrons_ = std::move(series);
}

void Trace::Finalize() {
  if (finalized_) return;
  obs::ScopedTimer timer("sort");
  auto by_time_node = [](const auto& a, const auto& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.system != b.system) return a.system < b.system;
    return a.node < b.node;
  };
  std::sort(failures_.begin(), failures_.end(), by_time_node);
  std::sort(maintenance_.begin(), maintenance_.end(), by_time_node);
  std::sort(jobs_.begin(), jobs_.end(),
            [](const JobRecord& a, const JobRecord& b) {
              if (a.dispatch != b.dispatch) return a.dispatch < b.dispatch;
              return a.id < b.id;
            });
  std::sort(temperatures_.begin(), temperatures_.end(),
            [](const TemperatureSample& a, const TemperatureSample& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.node < b.node;
            });
  finalized_ = true;
}

void Trace::CheckFinalized() const {
  if (!finalized_) {
    throw std::logic_error(
        "Trace accessed before Finalize(); call Finalize() after loading");
  }
}

const SystemConfig* Trace::FindSystem(SystemId id) const {
  for (const SystemConfig& s : systems_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

const SystemConfig& Trace::system(SystemId id) const {
  const SystemConfig* s = FindSystem(id);
  if (s == nullptr) throw std::out_of_range("unknown system id");
  return *s;
}

const std::vector<FailureRecord>& Trace::failures() const {
  CheckFinalized();
  return failures_;
}
const std::vector<MaintenanceRecord>& Trace::maintenance() const {
  CheckFinalized();
  return maintenance_;
}
const std::vector<JobRecord>& Trace::jobs() const {
  CheckFinalized();
  return jobs_;
}
const std::vector<TemperatureSample>& Trace::temperatures() const {
  CheckFinalized();
  return temperatures_;
}
const std::vector<NeutronSample>& Trace::neutron_series() const {
  return neutrons_;
}

std::vector<FailureRecord> Trace::FailuresOfSystem(SystemId id) const {
  CheckFinalized();
  std::vector<FailureRecord> out;
  for (const FailureRecord& f : failures_) {
    if (f.system == id) out.push_back(f);
  }
  return out;
}

std::vector<JobRecord> Trace::JobsOfSystem(SystemId id) const {
  CheckFinalized();
  std::vector<JobRecord> out;
  for (const JobRecord& j : jobs_) {
    if (j.system == id) out.push_back(j);
  }
  return out;
}

}  // namespace hpcfail
