#include "trace/system.h"

#include <algorithm>
#include <stdexcept>

#include "obs/span.h"

namespace hpcfail {

std::string_view ToString(SystemGroup g) {
  switch (g) {
    case SystemGroup::kSmp: return "smp";
    case SystemGroup::kNuma: return "numa";
  }
  return "invalid";
}

std::optional<SystemGroup> ParseSystemGroup(std::string_view s) {
  if (s == "smp") return SystemGroup::kSmp;
  if (s == "numa") return SystemGroup::kNuma;
  return std::nullopt;
}

void Trace::AddSystem(SystemConfig config) {
  if (!config.id.valid()) {
    throw std::invalid_argument("system id must be valid");
  }
  if (config.num_nodes <= 0 || config.procs_per_node <= 0) {
    throw std::invalid_argument("system must have nodes and processors");
  }
  if (!config.observed.valid()) {
    throw std::invalid_argument("system observation interval is invalid");
  }
  if (FindSystem(config.id) != nullptr) {
    throw std::invalid_argument("duplicate system id");
  }
  systems_.push_back(std::move(config));
  finalized_ = false;
}

namespace {

void CheckNode(const SystemConfig* sys, NodeId node, const char* what) {
  if (sys == nullptr) {
    throw std::invalid_argument(std::string(what) + ": unknown system");
  }
  if (!node.valid() || node.value >= sys->num_nodes) {
    throw std::invalid_argument(std::string(what) + ": node out of range");
  }
}

}  // namespace

void Trace::AddFailure(FailureRecord r) {
  CheckNode(FindSystem(r.system), r.node, "AddFailure");
  if (!r.consistent()) {
    throw std::invalid_argument("AddFailure: inconsistent record");
  }
  failures_.push_back(std::move(r));
  finalized_ = false;
}

void Trace::AddMaintenance(MaintenanceRecord r) {
  CheckNode(FindSystem(r.system), r.node, "AddMaintenance");
  if (r.end < r.start) {
    throw std::invalid_argument("AddMaintenance: negative duration");
  }
  maintenance_.push_back(r);
  finalized_ = false;
}

void Trace::AddJob(JobRecord r) {
  const SystemConfig* sys = FindSystem(r.system);
  if (!r.consistent()) {
    throw std::invalid_argument("AddJob: inconsistent record");
  }
  for (NodeId n : r.nodes) CheckNode(sys, n, "AddJob");
  jobs_.push_back(std::move(r));
  finalized_ = false;
}

void Trace::AddTemperature(TemperatureSample s) {
  CheckNode(FindSystem(s.system), s.node, "AddTemperature");
  temperatures_.push_back(s);
  finalized_ = false;
}

void Trace::SetNeutronSeries(std::vector<NeutronSample> series) {
  std::sort(series.begin(), series.end(),
            [](const NeutronSample& a, const NeutronSample& b) {
              return a.time < b.time;
            });
  neutrons_ = std::move(series);
}

void Trace::Finalize() {
  if (finalized_) return;
  obs::ScopedTimer timer("sort");
  auto by_time_node = [](const auto& a, const auto& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.system != b.system) return a.system < b.system;
    return a.node < b.node;
  };
  std::sort(failures_.begin(), failures_.end(), by_time_node);
  std::sort(maintenance_.begin(), maintenance_.end(), by_time_node);
  std::sort(jobs_.begin(), jobs_.end(),
            [](const JobRecord& a, const JobRecord& b) {
              if (a.dispatch != b.dispatch) return a.dispatch < b.dispatch;
              return a.id < b.id;
            });
  std::sort(temperatures_.begin(), temperatures_.end(),
            [](const TemperatureSample& a, const TemperatureSample& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.node < b.node;
            });
  finalized_ = true;
}

Trace Trace::FromSorted(std::vector<SystemConfig> systems,
                        std::vector<FailureRecord> failures,
                        std::vector<MaintenanceRecord> maintenance,
                        std::vector<JobRecord> jobs,
                        std::vector<TemperatureSample> temperatures,
                        std::vector<NeutronSample> neutrons) {
  obs::ScopedTimer timer("trace_restore");
  Trace trace;
  for (SystemConfig& s : systems) trace.AddSystem(std::move(s));

  const auto by_time_node = [](const auto& a, const auto& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.system != b.system) return a.system < b.system;
    return a.node < b.node;
  };
  const auto require = [](bool ok, const char* what) {
    if (!ok) {
      throw std::invalid_argument(std::string("Trace::FromSorted: ") + what);
    }
  };

  for (std::size_t i = 0; i < failures.size(); ++i) {
    const FailureRecord& f = failures[i];
    CheckNode(trace.FindSystem(f.system), f.node, "FromSorted failure");
    require(f.consistent(), "inconsistent failure record");
    require(i == 0 || !by_time_node(f, failures[i - 1]),
            "failure stream out of order");
  }
  for (std::size_t i = 0; i < maintenance.size(); ++i) {
    const MaintenanceRecord& m = maintenance[i];
    CheckNode(trace.FindSystem(m.system), m.node, "FromSorted maintenance");
    require(m.end >= m.start, "maintenance record with negative duration");
    require(i == 0 || !by_time_node(m, maintenance[i - 1]),
            "maintenance stream out of order");
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobRecord& j = jobs[i];
    const SystemConfig* sys = trace.FindSystem(j.system);
    require(j.consistent(), "inconsistent job record");
    for (NodeId n : j.nodes) CheckNode(sys, n, "FromSorted job");
    require(i == 0 || jobs[i - 1].dispatch < j.dispatch ||
                (jobs[i - 1].dispatch == j.dispatch &&
                 !(j.id < jobs[i - 1].id)),
            "job stream out of order");
  }
  for (std::size_t i = 0; i < temperatures.size(); ++i) {
    const TemperatureSample& t = temperatures[i];
    CheckNode(trace.FindSystem(t.system), t.node, "FromSorted temperature");
    require(i == 0 || temperatures[i - 1].time < t.time ||
                (temperatures[i - 1].time == t.time &&
                 !(t.node < temperatures[i - 1].node)),
            "temperature stream out of order");
  }
  for (std::size_t i = 1; i < neutrons.size(); ++i) {
    require(neutrons[i - 1].time <= neutrons[i].time,
            "neutron series out of order");
  }

  trace.failures_ = std::move(failures);
  trace.maintenance_ = std::move(maintenance);
  trace.jobs_ = std::move(jobs);
  trace.temperatures_ = std::move(temperatures);
  trace.neutrons_ = std::move(neutrons);
  trace.finalized_ = true;
  return trace;
}

void Trace::CheckFinalized() const {
  if (!finalized_) {
    throw std::logic_error(
        "Trace accessed before Finalize(); call Finalize() after loading");
  }
}

const SystemConfig* Trace::FindSystem(SystemId id) const {
  for (const SystemConfig& s : systems_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

const SystemConfig& Trace::system(SystemId id) const {
  const SystemConfig* s = FindSystem(id);
  if (s == nullptr) throw std::out_of_range("unknown system id");
  return *s;
}

const std::vector<FailureRecord>& Trace::failures() const {
  CheckFinalized();
  return failures_;
}
const std::vector<MaintenanceRecord>& Trace::maintenance() const {
  CheckFinalized();
  return maintenance_;
}
const std::vector<JobRecord>& Trace::jobs() const {
  CheckFinalized();
  return jobs_;
}
const std::vector<TemperatureSample>& Trace::temperatures() const {
  CheckFinalized();
  return temperatures_;
}
const std::vector<NeutronSample>& Trace::neutron_series() const {
  return neutrons_;
}

std::vector<FailureRecord> Trace::FailuresOfSystem(SystemId id) const {
  CheckFinalized();
  std::vector<FailureRecord> out;
  for (const FailureRecord& f : failures_) {
    if (f.system == id) out.push_back(f);
  }
  return out;
}

std::vector<JobRecord> Trace::JobsOfSystem(SystemId id) const {
  CheckFinalized();
  std::vector<JobRecord> out;
  for (const JobRecord& j : jobs_) {
    if (j.system == id) out.push_back(j);
  }
  return out;
}

}  // namespace hpcfail
