// Machine-room layout: which rack a node sits in, its position inside the
// rack, and where the rack stands in the room ("machine layout" files,
// Section II / Section IV.C of the paper).
#pragma once

#include <optional>
#include <vector>

#include "trace/types.h"

namespace hpcfail {

// Placement of one node. Position-in-rack follows the paper's Table I
// convention: 1 = bottom of the rack, kMaxPositionInRack = top.
struct NodePlacement {
  NodeId node;
  RackId rack;
  int position_in_rack = 1;  // 1..kMaxPositionInRack
  // Rack coordinates on the machine-room floor grid.
  int room_row = 0;
  int room_col = 0;

  friend bool operator==(const NodePlacement&, const NodePlacement&) = default;
};

inline constexpr int kMaxPositionInRack = 5;

// Layout of one system. Lookup is by node id; placements need not cover every
// node (the LANL layout files only exist for group-1 systems).
class MachineLayout {
 public:
  MachineLayout() = default;
  explicit MachineLayout(std::vector<NodePlacement> placements);

  // nullopt when the node has no recorded placement.
  std::optional<NodePlacement> placement(NodeId node) const;
  std::optional<RackId> rack_of(NodeId node) const;

  // All nodes recorded in rack `rack`, in node-id order.
  std::vector<NodeId> nodes_in_rack(RackId rack) const;

  const std::vector<NodePlacement>& placements() const { return placements_; }
  int num_racks() const;
  bool empty() const { return placements_.empty(); }

  // Builds a standard layout: nodes 0..num_nodes-1 filled into racks of
  // `nodes_per_rack` bottom-up, racks laid out row-major on a floor grid
  // `racks_per_row` wide. This mirrors how LANL group-1 machines were racked.
  static MachineLayout Grid(int num_nodes, int nodes_per_rack,
                            int racks_per_row);

 private:
  // Sorted by node id for binary search.
  std::vector<NodePlacement> placements_;
};

}  // namespace hpcfail
