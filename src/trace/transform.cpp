#include "trace/transform.h"

#include <algorithm>
#include <stdexcept>

namespace hpcfail {
namespace {

// Copies the record streams of `source` into `dest` subject to a keep
// predicate on (system, anchor time).
template <typename Keep>
void CopyRecords(const Trace& source, Trace& dest, const Keep& keep) {
  for (const FailureRecord& f : source.failures()) {
    if (keep(f.system, f.start)) dest.AddFailure(f);
  }
  for (const MaintenanceRecord& m : source.maintenance()) {
    if (keep(m.system, m.start)) dest.AddMaintenance(m);
  }
  for (const JobRecord& j : source.jobs()) {
    if (keep(j.system, j.dispatch)) dest.AddJob(j);
  }
  for (const TemperatureSample& t : source.temperatures()) {
    if (keep(t.system, t.time)) dest.AddTemperature(t);
  }
}

}  // namespace

Trace SliceTrace(const Trace& trace, TimeInterval window) {
  if (!window.valid() || window.duration() <= 0) {
    throw std::invalid_argument("SliceTrace: invalid window");
  }
  Trace out;
  for (const SystemConfig& s : trace.systems()) {
    SystemConfig c = s;
    c.observed.begin = std::max(s.observed.begin, window.begin);
    c.observed.end = std::min(s.observed.end, window.end);
    if (c.observed.duration() <= 0) continue;  // no overlap: drop the system
    out.AddSystem(std::move(c));
  }
  CopyRecords(trace, out, [&](SystemId sys, TimeSec t) {
    return out.FindSystem(sys) != nullptr && window.contains(t);
  });
  std::vector<NeutronSample> neutrons;
  for (const NeutronSample& n : trace.neutron_series()) {
    if (window.contains(n.time)) neutrons.push_back(n);
  }
  out.SetNeutronSeries(std::move(neutrons));
  out.Finalize();
  return out;
}

Trace FilterSystems(const Trace& trace, std::span<const SystemId> systems) {
  Trace out;
  for (SystemId id : systems) {
    out.AddSystem(trace.system(id));  // throws on unknown id
  }
  CopyRecords(trace, out, [&out](SystemId sys, TimeSec) {
    return out.FindSystem(sys) != nullptr;
  });
  out.SetNeutronSeries(trace.neutron_series());
  out.Finalize();
  return out;
}

Trace MergeTraces(const Trace& a, const Trace& b) {
  Trace out;
  for (const SystemConfig& s : a.systems()) out.AddSystem(s);
  for (const SystemConfig& s : b.systems()) {
    if (a.FindSystem(s.id) != nullptr) {
      throw std::invalid_argument("MergeTraces: duplicate system id " +
                                  std::to_string(s.id.value));
    }
    out.AddSystem(s);
  }
  const auto keep_all = [](SystemId, TimeSec) { return true; };
  CopyRecords(a, out, keep_all);
  CopyRecords(b, out, keep_all);
  out.SetNeutronSeries(a.neutron_series().empty() ? b.neutron_series()
                                                  : a.neutron_series());
  out.Finalize();
  return out;
}

}  // namespace hpcfail
