// Trace transformations: time slicing (the proper way to build train/test
// splits for prediction work), system filtering, and merging of traces
// collected separately. All transforms return new finalized traces and
// leave the input untouched.
#pragma once

#include <span>

#include "trace/system.h"

namespace hpcfail {

// Restricts a trace to [begin, end): every record whose anchor time (start
// for failures/maintenance, dispatch for jobs, sample time for temperatures
// and neutrons) falls inside the window is kept, with times left absolute;
// each system's observed interval is intersected with the window. Systems
// whose observation becomes empty are dropped. Throws on an invalid window.
Trace SliceTrace(const Trace& trace, TimeInterval window);

// Keeps only the given systems (and their records). Unknown ids throw.
Trace FilterSystems(const Trace& trace, std::span<const SystemId> systems);

// Merges two traces collected over the same epoch. System ids must be
// disjoint; the neutron series is taken from `a` when both have one.
Trace MergeTraces(const Trace& a, const Trace& b);

}  // namespace hpcfail
