// Usage-log records: per-job entries as found in the LANL job logs for
// systems 8 and 20 (Section II of the paper).
#pragma once

#include <vector>

#include "trace/types.h"

namespace hpcfail {

// One scheduled job. `nodes` lists every node the job ran on; `procs` is the
// number of processors the user requested.
struct JobRecord {
  JobId id;
  SystemId system;
  UserId user;
  TimeSec submit = 0;    // entered the queue
  TimeSec dispatch = 0;  // left the queue, started running
  TimeSec end = 0;       // finished (successfully or not)
  int procs = 0;
  std::vector<NodeId> nodes;
  // True when the job was killed by a failure of one of its nodes (rather
  // than finishing or failing for application-level reasons). Section VI only
  // counts these.
  bool killed_by_node_failure = false;

  TimeSec queue_delay() const { return dispatch - submit; }
  TimeSec runtime() const { return end - dispatch; }
  TimeInterval run_interval() const { return {dispatch, end}; }

  // Processor-seconds consumed; Section VI normalizes per processor-day.
  double proc_seconds() const {
    return static_cast<double>(procs) * static_cast<double>(runtime());
  }

  bool consistent() const {
    return submit <= dispatch && dispatch <= end && procs >= 1 &&
           !nodes.empty();
  }

  friend bool operator==(const JobRecord&, const JobRecord&) = default;
};

}  // namespace hpcfail
