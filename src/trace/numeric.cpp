#include "trace/numeric.h"

#include <cctype>
#include <charconv>
#include <version>

#if !defined(__cpp_lib_to_chars) || __cpp_lib_to_chars < 201611L
#include <locale>
#include <sstream>
#include <string>
#endif

namespace hpcfail {

std::optional<double> ParseDoubleText(std::string_view s) {
  // std::stod skipped leading whitespace and accepted a '+' sign;
  // std::from_chars does neither, so normalize first.
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  if (!s.empty() && s.front() == '+') {
    s.remove_prefix(1);
    if (!s.empty() && (s.front() == '+' || s.front() == '-')) {
      return std::nullopt;  // "+-1" and friends
    }
  }
  if (s.empty()) return std::nullopt;
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
#else
  // Toolchain without floating-point from_chars: an istringstream imbued
  // with the classic locale is slower but equally locale-proof.
  std::istringstream is{std::string(s)};
  is.imbue(std::locale::classic());
  double v = 0.0;
  is >> v;
  if (is.fail() || is.peek() != std::istringstream::traits_type::eof()) {
    return std::nullopt;
  }
  return v;
#endif
}

}  // namespace hpcfail
