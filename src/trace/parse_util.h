// Shared field- and timestamp-parsing helpers for every text log reader
// (trace/csv.cpp, trace/lanl_import.cpp, trace/adapter.cpp, stream feeds).
// Before the adapter refactor each reader carried its own copies of these;
// they live here once so a fix (e.g. the two-digit-year pivot) lands in
// every format at the same time. Everything is locale-independent: numeric
// parsing goes through trace/numeric.h's C-locale helpers, and calendar
// arithmetic is self-contained (no std::mktime, no timezone lookups).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/types.h"

namespace hpcfail::parse {

// ASCII lowercase copy (log labels are ASCII; high bytes pass through).
std::string Lower(std::string_view s);

bool Contains(std::string_view haystack, std::string_view needle);

// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

// Parses the ENTIRE string as a signed integer; nullopt on malformed or
// trailing junk. (The CSV readers' strict integer fields and the LANL
// importer's tolerant ones both sit on this.)
std::optional<long long> ParseInt(std::string_view s);

// Splits on `delim`, keeping empty fields. The raw form every reader
// starts from; csv::SplitLine is this with delim=','.
std::vector<std::string> Split(const std::string& line, char delim);

// Split + per-field trim of whitespace and stray quotes — the tolerant
// form the LANL importer (and other real-log adapters) use, since hand-
// maintained operational CSVs pad fields and quote free text.
std::vector<std::string> SplitTrimmed(const std::string& line, char delim);

// ---- Calendar arithmetic (shared by every timestamp format).

bool IsLeapYear(int year);
int DaysInMonth(int year, int month);  // month in [1, 12]

// Days from 1970-01-01 to year-month-day; nullopt when the date is invalid
// or before the epoch.
std::optional<long long> DaysSinceEpoch(int year, int month, int day);

// Seconds since the epoch for a full civil time; validates every field
// (hour <= 23, minute <= 59, second <= 60 for leap-second logs).
std::optional<TimeSec> EpochSeconds(int year, int month, int day, int hour,
                                    int minute, int second);

// ---- Timestamp formats.

// "MM/DD/YYYY HH:MM[:SS]" (also "M/D/YY H:MM" with a 1970 pivot) — the LANL
// release's convention. Wall-clock local time; only differences matter.
std::optional<TimeSec> ParseUsTimestamp(std::string_view text);

// "YYYY-MM-DD HH:MM:SS[.ffffff]" (also 'T' separator) — the BG/Q RAS
// convention. Fractional seconds are truncated, not rounded: RAS analyses
// bucket at second granularity and truncation keeps ordering stable.
std::optional<TimeSec> ParseIsoTimestamp(std::string_view text);

// "Mmm dd HH:MM:SS" — classic RFC 3164 syslog, which famously omits the
// year; `year` supplies it. Handles the space-padded day ("Jan  3").
std::optional<TimeSec> ParseSyslogTimestamp(std::string_view text, int year);

// Three-letter English month abbreviation (case-insensitive) to [1, 12];
// nullopt otherwise.
std::optional<int> ParseMonthName(std::string_view name);

}  // namespace hpcfail::parse
