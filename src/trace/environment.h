// Environment-log records: periodic node temperature samples (available for
// LANL system 20) and the external neutron-monitor series used in Section IX.
#pragma once

#include <vector>

#include "trace/types.h"

namespace hpcfail {

// One reading from a node's motherboard temperature sensor, in degrees C.
struct TemperatureSample {
  SystemId system;
  NodeId node;
  TimeSec time = 0;
  double celsius = 0.0;

  friend bool operator==(const TemperatureSample&,
                         const TemperatureSample&) = default;
};

// The paper counts "severe temperature warnings" when ambient temperature
// exceeds 40C (Table I, num_hightemp).
inline constexpr double kHighTempThresholdC = 40.0;

// Cosmic-ray-induced neutron counts, as collected by a neutron-monitor
// station. The paper uses 1-minute-resolution counts from Climax, CO and
// aggregates them monthly; we store the series at whatever resolution the
// source provides.
struct NeutronSample {
  TimeSec time = 0;
  double counts_per_minute = 0.0;

  friend bool operator==(const NeutronSample&, const NeutronSample&) = default;
};

// Per-node summary statistics over a set of temperature samples; these are
// exactly the temperature covariates of Table I.
struct TemperatureSummary {
  double avg = 0.0;
  double max = 0.0;
  double variance = 0.0;
  int num_high_temp = 0;  // samples above kHighTempThresholdC
  int num_samples = 0;
};

// Computes the Table-I temperature covariates from samples belonging to one
// node. Samples from other nodes are ignored.
TemperatureSummary SummarizeTemperature(
    const std::vector<TemperatureSample>& samples, NodeId node);

}  // namespace hpcfail
