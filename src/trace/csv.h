// CSV serialization for every trace record type, plus whole-trace
// directory-level save/load. The column layouts follow the spirit of the
// public LANL data release so real data can be massaged in with a thin
// conversion script.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/system.h"

namespace hpcfail::csv {

// Thrown on malformed input; carries the 1-based line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message);
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

// Splits one CSV line on commas. No quoting support: trace fields never
// contain commas, and rejecting quotes keeps parsing unambiguous.
std::vector<std::string> SplitLine(const std::string& line);

// Removes a UTF-8 byte-order mark, if present. Spreadsheet "CSV UTF-8"
// exports prefix the first line with one; left in place it glues onto the
// first header field and fails the header check.
void StripLeadingBom(std::string& line);

// ---- Row-level failure parsing, shared with streaming consumers that read
// one line at a time instead of a whole file.

// The failures.csv header row ("system,node,start,end,category,subcategory").
const std::string& FailuresHeader();

// Parses one already-split failures.csv row (6 fields). Throws ParseError
// (with the given line number) on malformed fields.
FailureRecord ParseFailureRow(const std::vector<std::string>& fields,
                              std::size_t line);

// ---- Per-stream writers. Each writes a header row then one row per record.
void WriteFailures(std::ostream& os, const std::vector<FailureRecord>& v);
void WriteMaintenance(std::ostream& os, const std::vector<MaintenanceRecord>& v);
void WriteJobs(std::ostream& os, const std::vector<JobRecord>& v);
void WriteTemperatures(std::ostream& os, const std::vector<TemperatureSample>& v);
void WriteNeutrons(std::ostream& os, const std::vector<NeutronSample>& v);
void WriteSystems(std::ostream& os, const std::vector<SystemConfig>& v);
void WriteLayout(std::ostream& os, SystemId system, const MachineLayout& l);

// ---- Per-stream readers. Validate the header and every row; throw
// ParseError on malformed input.
std::vector<FailureRecord> ReadFailures(std::istream& is);
std::vector<MaintenanceRecord> ReadMaintenance(std::istream& is);
std::vector<JobRecord> ReadJobs(std::istream& is);
std::vector<TemperatureSample> ReadTemperatures(std::istream& is);
std::vector<NeutronSample> ReadNeutrons(std::istream& is);
// Reads systems without layouts (layouts are stored separately).
std::vector<SystemConfig> ReadSystems(std::istream& is);
// Returns placements grouped by system id, in file order.
std::vector<std::pair<SystemId, NodePlacement>> ReadLayout(std::istream& is);

// ---- Whole-trace persistence. `dir` receives systems.csv, failures.csv,
// maintenance.csv, jobs.csv, temperatures.csv, neutrons.csv, layout.csv.
void SaveTrace(const Trace& trace, const std::string& dir);
Trace LoadTrace(const std::string& dir);

}  // namespace hpcfail::csv
