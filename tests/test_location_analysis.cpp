#include "core/location_analysis.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

TEST(Location, BucketsCoverAllNodes) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 1);
  const EventIndex idx(t);
  const LocationAnalysis a = AnalyzeLocation(idx, t.systems()[0].id);
  int pos_nodes = 0, row_nodes = 0;
  for (const LocationBucket& b : a.by_position_in_rack) pos_nodes += b.nodes;
  for (const LocationBucket& b : a.by_room_row) row_nodes += b.nodes;
  EXPECT_EQ(pos_nodes, t.systems()[0].num_nodes);
  EXPECT_EQ(row_nodes, t.systems()[0].num_nodes);
}

TEST(Location, FailureTotalsMatch) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 2);
  const EventIndex idx(t);
  const LocationAnalysis a = AnalyzeLocation(idx, t.systems()[0].id);
  long long total = 0;
  for (const LocationBucket& b : a.by_position_in_rack) total += b.failures;
  EXPECT_EQ(total, static_cast<long long>(t.num_failures()));
}

TEST(Location, GeneratorInjectsNoSystematicLocationEffect) {
  // Negative control (Section IV.C): placement never enters the generator's
  // hazard model. Note that a *single-trace* chi-square is anti-conservative
  // here — rack-scoped cascades make the column counts overdispersed without
  // any systematic location effect — so the control checks consistency
  // across seeds: the hottest column must wander, and shelf position (which
  // aggregates across racks) must stay insignificant.
  std::vector<int> hottest_cols;
  int shelf_rejections = 0;
  for (std::uint64_t seed : {3u, 4u, 5u, 6u, 7u}) {
    synth::Scenario sc;
    sc.duration = 3 * kYear;
    auto sys = synth::Group1System("g", 256, 3 * kYear);
    for (double& r : sys.base_rate_per_hour) r *= 4.0;
    sc.systems.push_back(sys);
    const Trace t = synth::GenerateTrace(sc, seed);
    const EventIndex idx(t);
    const LocationAnalysis a = AnalyzeLocation(idx, SystemId{0});
    if (a.position_test_excl_top.p_value < 0.001) ++shelf_rejections;
    // Hottest room column, excluding node 0's entire rack: the login node
    // is an outlier AND its failures cascade onto its rack-mates, so its
    // rack is legitimately (slightly) hotter — an inheritance of the node-0
    // effect, not a location effect.
    const std::vector<int> fails = idx.NodeCounts(SystemId{0},
                                                  EventFilter::Any());
    std::map<int, std::pair<long long, int>> cols;  // col -> (fails, nodes)
    const SystemConfig& cfg = t.systems()[0];
    const RackId node0_rack = *cfg.layout.rack_of(NodeId{0});
    for (const NodePlacement& pl : cfg.layout.placements()) {
      if (pl.rack == node0_rack) continue;
      auto& [f, n] = cols[pl.room_col];
      f += fails[static_cast<std::size_t>(pl.node.value)];
      ++n;
    }
    int hot_col = -1;
    double hot_rate = -1.0;
    for (const auto& [col, fn] : cols) {
      const double rate = static_cast<double>(fn.first) / fn.second;
      if (rate > hot_rate) {
        hot_rate = rate;
        hot_col = col;
      }
    }
    hottest_cols.push_back(hot_col);
  }
  // Raw chi-square is anti-conservative under clustered counts: allow one
  // outlier seed, but not systematic rejection.
  EXPECT_LE(shelf_rejections, 1);
  // And no column is the hottest in (nearly) every seed.
  std::sort(hottest_cols.begin(), hottest_cols.end());
  int longest_run = 1, run = 1;
  for (std::size_t i = 1; i < hottest_cols.size(); ++i) {
    run = hottest_cols[i] == hottest_cols[i - 1] ? run + 1 : 1;
    longest_run = std::max(longest_run, run);
  }
  EXPECT_LE(longest_run, 3);
}

TEST(Location, InjectedHotShelfIsDetected) {
  // Positive control: add failures concentrated on shelf position 1 and the
  // chi-square must fire.
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sys";
  c.num_nodes = 40;
  c.procs_per_node = 4;
  c.observed = {0, kYear};
  c.layout = MachineLayout::Grid(40, 5, 4);  // shelf position == node % 5 + 1
  t.AddSystem(c);
  TimeSec when = kDay;
  for (int n = 0; n < 40; ++n) {
    const int shelf_failures = (n % 5 == 0) ? 10 : 1;  // bottom shelf hot
    for (int i = 0; i < shelf_failures; ++i) {
      t.AddFailure(MakeFailure(SystemId{0}, NodeId{n}, when, when + kHour,
                               FailureCategory::kHardware));
      when += kHour * 7;
    }
  }
  t.Finalize();
  const EventIndex idx(t);
  const LocationAnalysis a = AnalyzeLocation(idx, SystemId{0});
  EXPECT_TRUE(a.position_test.significant_99);
  EXPECT_TRUE(a.position_test_excl_top.significant_99);
  // The hot bucket is shelf 1 with ~10x the rate.
  const LocationBucket& bottom = a.by_position_in_rack.front();
  EXPECT_EQ(bottom.key, 1);
  EXPECT_GT(bottom.failures_per_node,
            5.0 * a.by_position_in_rack.back().failures_per_node);
}

TEST(Location, ThrowsWithoutLayout) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "nolayout";
  c.num_nodes = 4;
  c.procs_per_node = 4;
  c.observed = {0, kYear};
  t.AddSystem(c);
  t.Finalize();
  const EventIndex idx(t);
  EXPECT_THROW(AnalyzeLocation(idx, SystemId{0}), std::invalid_argument);
}

}  // namespace
}  // namespace hpcfail::core
