// The SoA refactor contract: the columnar SystemEventStore must answer every
// window query bit-identically to a naive scan over the materialized records
// (the old array-of-structs semantics). These tests pin that equivalence
// across scopes, windows and filters on a generated trace, plus the
// regression guards that rode along: negative system ids in
// EventStoreSet::Build, exact record reconstruction from the packed columns,
// and CompiledFilter's handling of contradictory filters.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/event_index.h"
#include "core/event_store.h"
#include "synth/generate.h"
#include "synth/scenario.h"

namespace hpcfail::core {
namespace {

// ---- Naive oracle: the pre-refactor semantics, written as the obvious
// linear scan over whole FailureRecords. Window is half-open (begin, end].

bool InWindow(TimeSec start, TimeInterval w) {
  return start > w.begin && start <= w.end;
}

struct Oracle {
  const SystemConfig* config = nullptr;
  std::vector<FailureRecord> events;  // time-sorted
  std::vector<RackId> rack_of;        // index == node id
  std::vector<int> rack_size;         // index == rack id

  explicit Oracle(const SystemEventStore& se) {
    config = se.config;
    for (const FailureRecord& f : se.records()) events.push_back(f);
    rack_of.assign(static_cast<std::size_t>(config->num_nodes), RackId{});
    int num_racks = 0;
    for (const NodePlacement& p : config->layout.placements()) {
      rack_of[static_cast<std::size_t>(p.node.value)] = p.rack;
      num_racks = std::max(num_racks, p.rack.value + 1);
    }
    rack_size.assign(static_cast<std::size_t>(num_racks), 0);
    for (const NodePlacement& p : config->layout.placements()) {
      ++rack_size[static_cast<std::size_t>(p.rack.value)];
    }
  }

  int CountAtNode(NodeId node, TimeInterval w, const EventFilter& f) const {
    int n = 0;
    for (const FailureRecord& r : events) {
      n += (r.node == node && InWindow(r.start, w) && f.Matches(r)) ? 1 : 0;
    }
    return n;
  }

  bool AnyAtRackPeers(NodeId node, TimeInterval w,
                      const EventFilter& f) const {
    const RackId rack = rack_of[static_cast<std::size_t>(node.value)];
    if (!rack.valid()) return false;
    for (const FailureRecord& r : events) {
      if (r.node != node &&
          rack_of[static_cast<std::size_t>(r.node.value)] == rack &&
          InWindow(r.start, w) && f.Matches(r)) {
        return true;
      }
    }
    return false;
  }

  bool AnyAtSystemPeers(NodeId node, TimeInterval w,
                        const EventFilter& f) const {
    for (const FailureRecord& r : events) {
      if (r.node != node && InWindow(r.start, w) && f.Matches(r)) return true;
    }
    return false;
  }

  int DistinctRackPeers(NodeId node, TimeInterval w, const EventFilter& f,
                        int* num_peers) const {
    const RackId rack = rack_of[static_cast<std::size_t>(node.value)];
    if (!rack.valid()) {
      *num_peers = 0;
      return 0;
    }
    *num_peers =
        std::max(0, rack_size[static_cast<std::size_t>(rack.value)] - 1);
    std::set<std::int32_t> seen;
    for (const FailureRecord& r : events) {
      if (r.node != node &&
          rack_of[static_cast<std::size_t>(r.node.value)] == rack &&
          InWindow(r.start, w) && f.Matches(r)) {
        seen.insert(r.node.value);
      }
    }
    return static_cast<int>(seen.size());
  }

  int DistinctSystemPeers(NodeId node, TimeInterval w, const EventFilter& f,
                          int* num_peers) const {
    *num_peers = std::max(0, config->num_nodes - 1);
    std::set<std::int32_t> seen;
    for (const FailureRecord& r : events) {
      if (r.node != node && InWindow(r.start, w) && f.Matches(r)) {
        seen.insert(r.node.value);
      }
    }
    return static_cast<int>(seen.size());
  }
};

std::vector<EventFilter> FilterGrid() {
  std::vector<EventFilter> filters = {
      EventFilter::Any(),
      EventFilter::Of(FailureCategory::kHardware),
      EventFilter::Of(FailureCategory::kSoftware),
      EventFilter::Of(FailureCategory::kEnvironment),
      EventFilter::Of(FailureCategory::kNetwork),
      EventFilter::Of(HardwareComponent::kCpu),
      EventFilter::Of(HardwareComponent::kMemory),
      EventFilter::Of(SoftwareComponent::kScheduler),
      EventFilter::Of(EnvironmentEvent::kPowerOutage),
  };
  // Subcategory without an explicit category: the subcategory implies it.
  EventFilter sub_only;
  sub_only.hardware = HardwareComponent::kNic;
  filters.push_back(sub_only);
  // Contradiction: hardware subcategory under the software category.
  EventFilter contradiction;
  contradiction.category = FailureCategory::kSoftware;
  contradiction.hardware = HardwareComponent::kCpu;
  filters.push_back(contradiction);
  // Two subcategories at once: matches nothing.
  EventFilter two_subs;
  two_subs.hardware = HardwareComponent::kCpu;
  two_subs.software = SoftwareComponent::kOs;
  filters.push_back(two_subs);
  return filters;
}

std::vector<TimeInterval> WindowGrid(const SystemEventStore& se) {
  const TimeSec lo = se.size() > 0 ? se.starts.front() : 0;
  const TimeSec hi = se.size() > 0 ? se.starts.back() : 0;
  const TimeSec mid = lo + (hi - lo) / 2;
  return {
      {lo - kDay, hi + kDay},  // everything
      {mid, mid + kWeek},      // interior week
      {mid, mid + kHour},      // narrow
      {mid, mid},              // empty (begin == end)
      {hi, hi + kWeek},        // past the last event (boundary exclusive)
      {lo - 2 * kDay, lo - kDay},  // before the first event
      {se.size() > 0 ? se.starts[se.size() / 3] : 0, mid},  // exact-boundary
  };
}

class SoaParityTest : public ::testing::Test {
 protected:
  static const Trace& SharedTrace() {
    static const Trace trace =
        synth::GenerateTrace(synth::TinyScenario(), 2013);
    return trace;
  }
};

TEST_F(SoaParityTest, WindowQueriesMatchNaiveScanAcrossScopes) {
  const EventStoreSet set = EventStoreSet::Build(SharedTrace());
  ASSERT_FALSE(set.stores.empty());
  for (const SystemEventStore& se : set.stores) {
    ASSERT_GT(se.size(), 100u) << "trace too small to exercise the kernels";
    const Oracle oracle(se);
    const std::vector<NodeId> nodes = {
        NodeId{0}, NodeId{se.config->num_nodes / 2},
        NodeId{se.config->num_nodes - 1}};
    for (const EventFilter& f : FilterGrid()) {
      for (const TimeInterval w : WindowGrid(se)) {
        for (const NodeId node : nodes) {
          EXPECT_EQ(se.CountAtNode(node, w, f),
                    oracle.CountAtNode(node, w, f));
          EXPECT_EQ(se.AnyAtNode(node, w, f),
                    oracle.CountAtNode(node, w, f) > 0);
          EXPECT_EQ(se.AnyAtRackPeers(node, w, f),
                    oracle.AnyAtRackPeers(node, w, f));
          EXPECT_EQ(se.AnyAtSystemPeers(node, w, f),
                    oracle.AnyAtSystemPeers(node, w, f));
          int got_peers = -1, want_peers = -1;
          EXPECT_EQ(se.DistinctRackPeersWithEvent(node, w, f, &got_peers),
                    oracle.DistinctRackPeers(node, w, f, &want_peers));
          EXPECT_EQ(got_peers, want_peers);
          EXPECT_EQ(se.DistinctSystemPeersWithEvent(node, w, f, &got_peers),
                    oracle.DistinctSystemPeers(node, w, f, &want_peers));
          EXPECT_EQ(got_peers, want_peers);
        }
      }
    }
  }
}

TEST_F(SoaParityTest, CountMatchingAndNodeCountsMatchNaiveScan) {
  const EventStoreSet set = EventStoreSet::Build(SharedTrace());
  for (const SystemEventStore& se : set.stores) {
    const Oracle oracle(se);
    for (const EventFilter& f : FilterGrid()) {
      long long want = 0;
      std::vector<int> want_nodes(
          static_cast<std::size_t>(se.config->num_nodes), 0);
      for (const FailureRecord& r : oracle.events) {
        if (f.Matches(r)) {
          ++want;
          ++want_nodes[static_cast<std::size_t>(r.node.value)];
        }
      }
      EXPECT_EQ(se.CountMatching(f), want);
      EXPECT_EQ(se.NodeCounts(f), want_nodes);
    }
  }
}

TEST_F(SoaParityTest, RecordsReconstructExactlyFromColumns) {
  const EventStoreSet set = EventStoreSet::Build(SharedTrace());
  for (const SystemEventStore& se : set.stores) {
    const std::vector<FailureRecord> want =
        SharedTrace().FailuresOfSystem(se.id);
    ASSERT_EQ(se.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(se.Record(i), want[i]) << "record " << i;
    }
    // The span view materializes the same records.
    std::size_t i = 0;
    for (const FailureRecord& f : se.records()) {
      EXPECT_EQ(f, want[i]) << "span record " << i;
      ++i;
    }
  }
}

TEST(SoaNoLayout, RackQueriesDegradeGracefully) {
  // A system without a machine layout has no rack structure: rack-peer
  // queries must answer false/0-of-0, system-peer queries still work.
  Trace trace;
  SystemConfig cfg;
  cfg.id = SystemId{0};
  cfg.name = "flat";
  cfg.num_nodes = 4;
  cfg.procs_per_node = 1;
  cfg.observed = {0, 100 * kDay};
  trace.AddSystem(cfg);
  for (int i = 0; i < 8; ++i) {
    FailureRecord f;
    f.system = SystemId{0};
    f.node = NodeId{i % 4};
    f.start = (i + 1) * kDay;
    f.end = f.start + kHour;
    f.category = FailureCategory::kHardware;
    f.hardware = HardwareComponent::kCpu;
    trace.AddFailure(f);
  }
  trace.Finalize();

  const EventStoreSet set = EventStoreSet::Build(trace);
  ASSERT_EQ(set.stores.size(), 1u);
  const SystemEventStore& se = set.stores[0];
  const TimeInterval w{0, 100 * kDay};
  const EventFilter any = EventFilter::Any();
  EXPECT_FALSE(se.AnyAtRackPeers(NodeId{0}, w, any));
  int peers = -1;
  EXPECT_EQ(se.DistinctRackPeersWithEvent(NodeId{0}, w, any, &peers), 0);
  EXPECT_EQ(peers, 0);
  EXPECT_TRUE(se.AnyAtSystemPeers(NodeId{0}, w, any));
  EXPECT_EQ(se.DistinctSystemPeersWithEvent(NodeId{0}, w, any, &peers), 3);
  EXPECT_EQ(peers, 3);
}

// ---- Regression: negative system ids must not index out of bounds.

TEST(EventStoreSetBuild, SkipsInvalidSystemIdsInSubset) {
  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 7);
  const SystemId valid = trace.systems().front().id;
  const std::vector<SystemId> wanted = {SystemId{-1}, valid, SystemId{-42}};
  const EventStoreSet set = EventStoreSet::Build(trace, wanted);
  ASSERT_EQ(set.stores.size(), 1u);
  EXPECT_EQ(set.stores[0].id, valid);
  EXPECT_EQ(set.stores[0].size(),
            trace.FailuresOfSystem(valid).size());
  EXPECT_EQ(set.Find(SystemId{-1}), nullptr);
}

TEST(EventStoreSetBuild, AllInvalidSubsetYieldsEmptySet) {
  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 7);
  const std::vector<SystemId> wanted = {SystemId{-1}};
  const EventStoreSet set = EventStoreSet::Build(trace, wanted);
  EXPECT_TRUE(set.stores.empty());
}

// ---- Append validation: the packed columns are only lossless for records
// the ingest paths are allowed to store.

SystemConfig FourNodeConfig() {
  SystemConfig cfg;
  cfg.id = SystemId{3};
  cfg.name = "val";
  cfg.num_nodes = 4;
  cfg.procs_per_node = 1;
  cfg.observed = {0, kYear};
  return cfg;
}

FailureRecord GoodRecord(TimeSec start) {
  FailureRecord f;
  f.system = SystemId{3};
  f.node = NodeId{1};
  f.start = start;
  f.end = start + kHour;
  f.category = FailureCategory::kSoftware;
  f.software = SoftwareComponent::kOs;
  return f;
}

TEST(EventStoreAppend, RejectsWhatColumnsCannotRepresent) {
  const SystemConfig cfg = FourNodeConfig();
  SystemEventStore se;
  se.Init(cfg);
  se.Append(GoodRecord(kDay));

  FailureRecord wrong_system = GoodRecord(2 * kDay);
  wrong_system.system = SystemId{4};
  EXPECT_THROW(se.Append(wrong_system), std::invalid_argument);

  FailureRecord bad_node = GoodRecord(2 * kDay);
  bad_node.node = NodeId{4};
  EXPECT_THROW(se.Append(bad_node), std::invalid_argument);

  FailureRecord negative_node = GoodRecord(2 * kDay);
  negative_node.node = NodeId{-1};
  EXPECT_THROW(se.Append(negative_node), std::invalid_argument);

  FailureRecord mismatched = GoodRecord(2 * kDay);
  mismatched.hardware = HardwareComponent::kCpu;  // two subcategories
  EXPECT_THROW(se.Append(mismatched), std::invalid_argument);

  FailureRecord bad_enum = GoodRecord(2 * kDay);
  bad_enum.category = static_cast<FailureCategory>(200);
  bad_enum.software.reset();
  EXPECT_THROW(se.Append(bad_enum), std::invalid_argument);

  FailureRecord out_of_order = GoodRecord(kDay - 1);
  EXPECT_THROW(se.Append(out_of_order), std::invalid_argument);

  EXPECT_EQ(se.size(), 1u) << "failed appends must not partially commit";
}

// ---- AppendBlock: the kernel-validated bulk path must leave the store
// byte-identical to per-record Append, and reject exactly what Append
// rejects (naming the first offending row).

TEST_F(SoaParityTest, AppendBlockMatchesPerRecordAppend) {
  for (const SystemConfig& cfg : SharedTrace().systems()) {
    const std::vector<FailureRecord> events =
        SharedTrace().FailuresOfSystem(cfg.id);
    ASSERT_FALSE(events.empty());

    SystemEventStore per_record;
    per_record.Init(cfg);
    for (const FailureRecord& f : events) per_record.Append(f);

    // Split into uneven chunks so block boundaries land mid-stream.
    SystemEventStore blocked;
    blocked.Init(cfg);
    RecordBlock block;
    std::size_t i = 0;
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64}, events.size()}) {
      block.clear();
      for (std::size_t k = 0; k < chunk && i < events.size(); ++k, ++i) {
        block.PushBack(events[i]);
      }
      blocked.AppendBlock(block);
    }
    ASSERT_EQ(i, events.size());

    EXPECT_EQ(blocked.starts, per_record.starts);
    EXPECT_EQ(blocked.ends, per_record.ends);
    EXPECT_EQ(blocked.nodes, per_record.nodes);
    EXPECT_EQ(blocked.cats, per_record.cats);
    EXPECT_EQ(blocked.subs, per_record.subs);
    ASSERT_EQ(blocked.by_node.size(), per_record.by_node.size());
    for (std::size_t nd = 0; nd < blocked.by_node.size(); ++nd) {
      EXPECT_EQ(blocked.by_node[nd].times, per_record.by_node[nd].times);
      EXPECT_EQ(blocked.by_node[nd].cats, per_record.by_node[nd].cats);
      EXPECT_EQ(blocked.by_node[nd].subs, per_record.by_node[nd].subs);
    }
    ASSERT_EQ(blocked.by_rack.size(), per_record.by_rack.size());
    for (std::size_t rk = 0; rk < blocked.by_rack.size(); ++rk) {
      EXPECT_EQ(blocked.by_rack[rk].times, per_record.by_rack[rk].times);
      EXPECT_EQ(blocked.by_rack[rk].nodes, per_record.by_rack[rk].nodes);
      EXPECT_EQ(blocked.by_rack[rk].cats, per_record.by_rack[rk].cats);
      EXPECT_EQ(blocked.by_rack[rk].subs, per_record.by_rack[rk].subs);
    }
  }
}

TEST(EventStoreAppendBlock, RejectsFirstBadRowWithoutPartialCommit) {
  const SystemConfig cfg = FourNodeConfig();

  // Each mutation breaks one invariant the validate kernel must catch.
  const auto corrupt = [&](std::size_t bad_index, auto&& mutate) {
    SystemEventStore se;
    se.Init(cfg);
    se.Append(GoodRecord(kDay));
    RecordBlock block;
    for (int k = 0; k < 5; ++k) {
      block.PushBack(GoodRecord(2 * kDay + k * kHour));
    }
    mutate(block, bad_index);
    try {
      se.AppendBlock(block);
      ADD_FAILURE() << "AppendBlock accepted a corrupt block";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(std::to_string(bad_index)),
                std::string::npos)
          << "error should name row " << bad_index << ", got: " << e.what();
    }
    EXPECT_EQ(se.size(), 1u) << "failed block must not partially commit";
  };

  corrupt(2, [](RecordBlock& b, std::size_t i) { b.nodes[i] = 4; });
  corrupt(3, [](RecordBlock& b, std::size_t i) { b.nodes[i] = -1; });
  corrupt(0, [](RecordBlock& b, std::size_t i) {
    b.ends[i] = b.starts[i] - 1;
  });
  corrupt(4, [](RecordBlock& b, std::size_t i) { b.cats[i] = 6; });
  corrupt(1, [](RecordBlock& b, std::size_t i) { b.cats[i] = 0xFF; });
  // Subcategory out of range for the category (software has 7 components).
  corrupt(2, [](RecordBlock& b, std::size_t i) { b.subs[i] = 8; });
  // The staging sentinel for structurally broken records must never pass.
  corrupt(3, [](RecordBlock& b, std::size_t i) {
    b.subs[i] = simd::kInvalidPackedSub;
  });
  // Subcategory under a category that allows none (human/network).
  corrupt(4, [](RecordBlock& b, std::size_t i) {
    b.cats[i] = static_cast<std::uint8_t>(FailureCategory::kHuman);
    b.subs[i] = 1;
  });
}

TEST(EventStoreAppendBlock, RejectsTimeOrderViolations) {
  const SystemConfig cfg = FourNodeConfig();

  // Intra-block disorder.
  {
    SystemEventStore se;
    se.Init(cfg);
    RecordBlock block;
    block.PushBack(GoodRecord(2 * kDay));
    block.PushBack(GoodRecord(kDay));
    EXPECT_THROW(se.AppendBlock(block), std::invalid_argument);
    EXPECT_EQ(se.size(), 0u);
  }
  // Block starts before the store's last record.
  {
    SystemEventStore se;
    se.Init(cfg);
    se.Append(GoodRecord(2 * kDay));
    RecordBlock block;
    block.PushBack(GoodRecord(kDay));
    EXPECT_THROW(se.AppendBlock(block), std::invalid_argument);
    EXPECT_EQ(se.size(), 1u);
  }
  // Structurally unpackable record staged via PushBack: the sentinel.
  {
    SystemEventStore se;
    se.Init(cfg);
    RecordBlock block;
    FailureRecord two_subs = GoodRecord(kDay);
    two_subs.hardware = HardwareComponent::kCpu;  // plus software
    block.PushBack(two_subs);
    EXPECT_EQ(block.subs[0], simd::kInvalidPackedSub);
    EXPECT_THROW(se.AppendBlock(block), std::invalid_argument);
    EXPECT_EQ(se.size(), 0u);
  }
  // An empty block is a no-op.
  {
    SystemEventStore se;
    se.Init(cfg);
    RecordBlock block;
    se.AppendBlock(block);
    EXPECT_EQ(se.size(), 0u);
  }
}

// ---- CompiledFilter unit behavior.

TEST(CompiledFilterTest, AnyMatchesEverything) {
  const CompiledFilter cf = CompiledFilter::From(EventFilter::Any());
  EXPECT_TRUE(cf.MatchesEverything());
  EXPECT_FALSE(cf.MatchesNothing());
}

TEST(CompiledFilterTest, ContradictionsMatchNothing) {
  EventFilter contradiction;
  contradiction.category = FailureCategory::kNetwork;
  contradiction.environment = EnvironmentEvent::kPowerSpike;
  EXPECT_TRUE(CompiledFilter::From(contradiction).MatchesNothing());

  EventFilter two_subs;
  two_subs.software = SoftwareComponent::kPfs;
  two_subs.environment = EnvironmentEvent::kChiller;
  EXPECT_TRUE(CompiledFilter::From(two_subs).MatchesNothing());
}

TEST(CompiledFilterTest, SubcategoryImpliesCategory) {
  EventFilter sub_only;
  sub_only.hardware = HardwareComponent::kCpu;
  const CompiledFilter cf = CompiledFilter::From(sub_only);
  EXPECT_TRUE(cf.check_cat);
  EXPECT_EQ(cf.cat, static_cast<std::uint8_t>(FailureCategory::kHardware));
  EXPECT_EQ(cf.sub, 1 + static_cast<std::uint8_t>(HardwareComponent::kCpu));
  EXPECT_FALSE(cf.MatchesNothing());
}

}  // namespace
}  // namespace hpcfail::core
