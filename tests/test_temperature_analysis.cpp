#include "core/temperature_analysis.h"

#include "core/power_analysis.h"

#include <gtest/gtest.h>
#include <cmath>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

// Realistic per-node rates (no saturation of month windows) with temperature
// sensing enabled and frequent chiller events.
Trace TempTrace(std::uint64_t seed = 61) {
  synth::Scenario sc;
  sc.duration = 3 * kYear;
  auto sys = synth::Group1System("t", 96, 3 * kYear);
  for (double& r : sys.base_rate_per_hour) r *= 2.0;
  sys.temperature.enabled = true;
  sys.temperature.sample_interval = 12 * kHour;
  sys.chiller_failure.events_per_year = 8.0;
  sc.systems.push_back(std::move(sys));
  return synth::GenerateTrace(sc, seed);
}

TEST(TemperatureRegression, ProducesAllNineFits) {
  const Trace t = TempTrace();
  const EventIndex idx(t);
  const auto regs = RegressFailuresOnTemperature(idx, t.systems()[0].id);
  // 3 covariates x 3 targets.
  EXPECT_EQ(regs.size(), 9u);
  for (const TemperatureRegression& r : regs) {
    EXPECT_GE(r.poisson_p, 0.0);
    EXPECT_LE(r.poisson_p, 1.0);
    EXPECT_GE(r.negbin_p, 0.0);
    EXPECT_LE(r.negbin_p, 1.0);
    EXPECT_EQ(r.poisson.coefficients.size(), 2u);  // intercept + covariate
  }
}

TEST(TemperatureRegression, AverageTemperatureIsInsignificant) {
  // Section VIII.A: the generator injects NO causal path from ambient
  // temperature to failures, so avg_temp must be insignificant for
  // hardware failures (negative control). With a tiny 16-node system the
  // Poisson fit can alias node-0's extreme counts, so assert on the honest
  // (overdispersion-aware) negative binomial p-value.
  const Trace t = TempTrace();
  const EventIndex idx(t);
  const auto regs = RegressFailuresOnTemperature(idx, t.systems()[0].id);
  for (const TemperatureRegression& r : regs) {
    if (r.covariate == "avg_temp" && r.target == "hardware") {
      EXPECT_GT(r.negbin_p, 0.01) << "avg_temp should not predict failures";
    }
  }
}

TEST(TemperatureRegression, ThrowsWithoutTemperatureLog) {
  synth::Scenario sc;
  sc.duration = 60 * kDay;
  sc.systems.push_back(synth::Group1System("plain", 8, 60 * kDay));
  const Trace t = synth::GenerateTrace(sc, 62);
  const EventIndex idx(t);
  EXPECT_THROW(RegressFailuresOnTemperature(idx, SystemId{0}),
               std::invalid_argument);
}

TEST(CoolingImpact, FanFailuresRaiseHardwareFailures) {
  const Trace t = TempTrace();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const auto impacts = CoolingFailureImpact(a);
  ASSERT_EQ(impacts.size(), 2u);
  EXPECT_EQ(impacts[0].trigger, "fan");
  EXPECT_EQ(impacts[1].trigger, "chiller");
  // Fig. 13: clear increases following fan failures at all timespans.
  const CoolingImpact& fan = impacts[0];
  if (fan.month.num_triggers >= 5) {
    EXPECT_GT(fan.month.factor, 2.0);
    EXPECT_GT(fan.week.factor, 2.0);
  }
}

TEST(CoolingImpact, FanStrongerThanChiller) {
  // Fig. 13 left: "Fan failures have a stronger effect for all timespans."
  const Trace t = TempTrace();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const auto impacts = CoolingFailureImpact(a);
  const auto& fan = impacts[0];
  const auto& chiller = impacts[1];
  if (fan.month.num_triggers >= 5 && chiller.month.num_triggers >= 5) {
    EXPECT_GT(fan.month.factor, chiller.month.factor);
  }
}

TEST(Filters, FanAndChiller) {
  EXPECT_EQ(FanFilter().hardware, HardwareComponent::kFan);
  EXPECT_EQ(ChillerFilter().environment, EnvironmentEvent::kChiller);
}

TEST(CoolingImpact, FanCascadeTargetsNonCpuComponents) {
  // Fig. 13 right: fans themselves recur most; CPUs are untouched.
  const Trace t = TempTrace();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const auto impacts = HardwareComponentImpact(a, FanFilter());
  double fan_self = 0.0, cpu = 0.0;
  for (const ComponentImpact& ci : impacts) {
    if (ci.component == "fan" && std::isfinite(ci.month.factor)) {
      fan_self = ci.month.factor;
    }
    if (ci.component == "cpu" && std::isfinite(ci.month.factor)) {
      cpu = ci.month.factor;
    }
  }
  EXPECT_GT(fan_self, cpu);
}

}  // namespace
}  // namespace hpcfail::core
