#include "stats/bootstrap.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace hpcfail::stats {
namespace {

TEST(Bootstrap, MeanCiContainsSampleMean) {
  Rng rng(1);
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(rng.Normal(5.0, 2.0));
  const BootstrapResult r = BootstrapCi(
      sample, [](std::span<const double> xs) { return Mean(xs); }, rng, 500);
  EXPECT_NEAR(r.estimate, Mean(sample), 1e-12);
  EXPECT_LE(r.ci_low, r.estimate);
  EXPECT_GE(r.ci_high, r.estimate);
  // With n = 200, sigma = 2: CI half-width ~ 1.96 * 2 / sqrt(200) ~ 0.28.
  EXPECT_LT(r.ci_high - r.ci_low, 1.0);
  EXPECT_GT(r.ci_high - r.ci_low, 0.2);
}

TEST(Bootstrap, ConstantSampleHasDegenerateCi) {
  Rng rng(2);
  const std::vector<double> sample(50, 3.0);
  const BootstrapResult r = BootstrapCi(
      sample, [](std::span<const double> xs) { return Mean(xs); }, rng, 200);
  EXPECT_DOUBLE_EQ(r.ci_low, 3.0);
  EXPECT_DOUBLE_EQ(r.ci_high, 3.0);
}

TEST(Bootstrap, WorksForMedian) {
  Rng rng(3);
  std::vector<double> sample;
  for (int i = 0; i < 101; ++i) sample.push_back(static_cast<double>(i));
  const BootstrapResult r = BootstrapCi(
      sample, [](std::span<const double> xs) { return Median(xs); }, rng, 300);
  EXPECT_DOUBLE_EQ(r.estimate, 50.0);
  EXPECT_GT(r.ci_high, r.ci_low);
}

TEST(Bootstrap, DeterministicGivenSeed) {
  std::vector<double> sample;
  Rng data_rng(4);
  for (int i = 0; i < 50; ++i) sample.push_back(data_rng.Normal());
  Rng rng1(99), rng2(99);
  const auto stat = [](std::span<const double> xs) { return Mean(xs); };
  const BootstrapResult a = BootstrapCi(sample, stat, rng1, 100);
  const BootstrapResult b = BootstrapCi(sample, stat, rng2, 100);
  EXPECT_DOUBLE_EQ(a.ci_low, b.ci_low);
  EXPECT_DOUBLE_EQ(a.ci_high, b.ci_high);
}

TEST(Bootstrap, RejectsBadArguments) {
  Rng rng(5);
  const auto stat = [](std::span<const double> xs) { return Mean(xs); };
  EXPECT_THROW(BootstrapCi({}, stat, rng), std::invalid_argument);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(BootstrapCi(one, stat, rng, 1), std::invalid_argument);
  EXPECT_THROW(BootstrapCi(one, stat, rng, 100, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace hpcfail::stats
