#include "stats/glm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.h"

namespace hpcfail::stats {
namespace {

// Generates Poisson data with log-link mean exp(b0 + b1 x).
struct PoissonData {
  Matrix x;
  std::vector<double> y;
};

PoissonData MakePoissonData(double b0, double b1, int n, Rng& rng) {
  PoissonData d;
  d.x = Matrix(static_cast<std::size_t>(n), 1);
  d.y.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double x = rng.Uniform(-1.0, 1.0);
    d.x(static_cast<std::size_t>(i), 0) = x;
    d.y[static_cast<std::size_t>(i)] = rng.Poisson(std::exp(b0 + b1 * x));
  }
  return d;
}

TEST(Poisson, RecoversKnownCoefficients) {
  Rng rng(42);
  const PoissonData d = MakePoissonData(1.0, 0.7, 4000, rng);
  const GlmFit fit = FitPoisson(d.x, d.y);
  EXPECT_TRUE(fit.converged);
  ASSERT_EQ(fit.coefficients.size(), 2u);
  EXPECT_EQ(fit.coefficients[0].name, "(Intercept)");
  EXPECT_NEAR(fit.coefficients[0].estimate, 1.0, 0.05);
  EXPECT_NEAR(fit.coefficients[1].estimate, 0.7, 0.05);
}

TEST(Poisson, WaldTestDetectsSignal) {
  Rng rng(43);
  const PoissonData d = MakePoissonData(0.5, 0.8, 2000, rng);
  const GlmFit fit = FitPoisson(d.x, d.y);
  EXPECT_LT(fit.coefficients[1].p_value, 1e-6);
  EXPECT_GT(std::abs(fit.coefficients[1].z), 5.0);
}

TEST(Poisson, NullCovariateNotSignificant) {
  Rng rng(44);
  // y independent of x.
  Matrix x(1000, 1);
  std::vector<double> y(1000);
  for (int i = 0; i < 1000; ++i) {
    x(static_cast<std::size_t>(i), 0) = rng.Uniform(-1.0, 1.0);
    y[static_cast<std::size_t>(i)] = rng.Poisson(2.0);
  }
  const GlmFit fit = FitPoisson(x, y);
  EXPECT_GT(fit.coefficients[1].p_value, 0.01);
  EXPECT_NEAR(fit.coefficients[1].estimate, 0.0, 0.1);
}

TEST(Poisson, InterceptOnlyMatchesLogMean) {
  const std::vector<double> y = {1, 2, 3, 4, 10};
  const GlmFit fit = FitPoisson(Matrix(5, 0), y);
  ASSERT_EQ(fit.coefficients.size(), 1u);
  EXPECT_NEAR(fit.coefficients[0].estimate, std::log(4.0), 1e-6);
  EXPECT_NEAR(fit.deviance, fit.null_deviance, 1e-9);
}

TEST(Poisson, ExposureOffsetRecoversRate) {
  Rng rng(45);
  // Counts over varying exposures with constant rate 0.5/unit.
  const int n = 500;
  Matrix x(n, 0);
  std::vector<double> y(n);
  GlmOptions opts;
  opts.exposure.resize(n);
  for (int i = 0; i < n; ++i) {
    const double e = rng.Uniform(1.0, 50.0);
    opts.exposure[static_cast<std::size_t>(i)] = e;
    y[static_cast<std::size_t>(i)] = rng.Poisson(0.5 * e);
  }
  const GlmFit fit = FitPoisson(x, y, opts);
  EXPECT_NEAR(fit.coefficients[0].estimate, std::log(0.5), 0.05);
}

TEST(Poisson, NamesAreApplied) {
  Rng rng(46);
  const PoissonData d = MakePoissonData(0.2, 0.1, 100, rng);
  GlmOptions opts;
  opts.names = {"load"};
  const GlmFit fit = FitPoisson(d.x, d.y, opts);
  EXPECT_EQ(fit.coefficients[1].name, "load");
  EXPECT_NO_THROW(fit.coefficient("load"));
  EXPECT_THROW(fit.coefficient("missing"), std::out_of_range);
}

TEST(Poisson, PredictMatchesLink) {
  Rng rng(47);
  const PoissonData d = MakePoissonData(1.0, 0.5, 2000, rng);
  const GlmFit fit = FitPoisson(d.x, d.y);
  const double b0 = fit.coefficients[0].estimate;
  const double b1 = fit.coefficients[1].estimate;
  const std::vector<double> row = {0.3};
  EXPECT_NEAR(fit.Predict(row), std::exp(b0 + 0.3 * b1), 1e-9);
  EXPECT_NEAR(fit.Predict(row, 10.0), 10.0 * std::exp(b0 + 0.3 * b1), 1e-9);
}

TEST(Poisson, RejectsBadInput) {
  Matrix x(3, 1);
  const std::vector<double> y_neg = {1, -1, 2};
  EXPECT_THROW(FitPoisson(x, y_neg), std::invalid_argument);
  const std::vector<double> y_short = {1, 2};
  EXPECT_THROW(FitPoisson(x, y_short), std::invalid_argument);
  const std::vector<double> y_ok = {1, 2, 3};
  GlmOptions opts;
  opts.exposure = {1.0, 0.0, 1.0};
  EXPECT_THROW(FitPoisson(x, y_ok, opts), std::invalid_argument);
}

TEST(Poisson, DevianceDecreasesWithRealCovariate) {
  Rng rng(48);
  const PoissonData d = MakePoissonData(0.5, 0.9, 1000, rng);
  const GlmFit fit = FitPoisson(d.x, d.y);
  EXPECT_LT(fit.deviance, fit.null_deviance);
}

TEST(Poisson, ScalingCovariateScalesCoefficient) {
  Rng rng(49);
  const PoissonData d = MakePoissonData(0.3, 0.6, 1500, rng);
  const GlmFit fit1 = FitPoisson(d.x, d.y);
  Matrix x10 = d.x;
  for (std::size_t i = 0; i < x10.rows(); ++i) x10(i, 0) *= 10.0;
  const GlmFit fit10 = FitPoisson(x10, d.y);
  EXPECT_NEAR(fit10.coefficients[1].estimate,
              fit1.coefficients[1].estimate / 10.0, 1e-6);
  // z-statistics are scale invariant.
  EXPECT_NEAR(fit10.coefficients[1].z, fit1.coefficients[1].z, 1e-4);
}

TEST(NegativeBinomial, RecoversCoefficientsAndTheta) {
  Rng rng(50);
  const double b0 = 1.2, b1 = 0.5, theta = 3.0;
  const int n = 4000;
  Matrix x(n, 1);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    const double xv = rng.Uniform(-1.0, 1.0);
    x(static_cast<std::size_t>(i), 0) = xv;
    const double mu = std::exp(b0 + b1 * xv);
    // NB via gamma-Poisson mixture.
    std::gamma_distribution<double> gamma(theta, mu / theta);
    y[static_cast<std::size_t>(i)] = rng.Poisson(gamma(rng.engine()));
  }
  const GlmFit fit = FitNegativeBinomial(x, y);
  EXPECT_NEAR(fit.coefficients[0].estimate, b0, 0.08);
  EXPECT_NEAR(fit.coefficients[1].estimate, b1, 0.08);
  EXPECT_NEAR(fit.theta, theta, 0.8);
}

TEST(NegativeBinomial, NearPoissonDataGivesLargeTheta) {
  Rng rng(51);
  const PoissonData d = MakePoissonData(1.0, 0.4, 2000, rng);
  const GlmFit fit = FitNegativeBinomial(d.x, d.y);
  // Pure Poisson data: theta should drift to a large value.
  EXPECT_GT(fit.theta, 50.0);
  EXPECT_NEAR(fit.coefficients[1].estimate, 0.4, 0.1);
}

TEST(NegativeBinomial, WiderErrorsThanPoissonOnOverdispersedData) {
  Rng rng(52);
  const int n = 2000;
  Matrix x(n, 1);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    const double xv = rng.Uniform(-1.0, 1.0);
    x(static_cast<std::size_t>(i), 0) = xv;
    const double mu = std::exp(1.0 + 0.5 * xv);
    std::gamma_distribution<double> gamma(1.0, mu);  // theta = 1, very noisy
    y[static_cast<std::size_t>(i)] = rng.Poisson(gamma(rng.engine()));
  }
  const GlmFit pois = FitPoisson(x, y);
  const GlmFit nb = FitNegativeBinomial(x, y);
  // Overdispersion inflates the honest (NB) standard errors.
  EXPECT_GT(nb.coefficients[1].std_error, pois.coefficients[1].std_error);
  EXPECT_GT(nb.log_likelihood, pois.log_likelihood);
}

TEST(Poisson, AllZeroResponseConverges) {
  // Degenerate but legal data: the MLE intercept runs to -inf; the fit must
  // stay finite (eta clamp) and predict ~0 rather than blow up.
  Rng rng(53);
  Matrix x(50, 1);
  for (int i = 0; i < 50; ++i) {
    x(static_cast<std::size_t>(i), 0) = rng.Uniform(-1.0, 1.0);
  }
  const std::vector<double> y(50, 0.0);
  const GlmFit fit = FitPoisson(x, y);
  EXPECT_TRUE(std::isfinite(fit.coefficients[0].estimate));
  const std::vector<double> row = {0.0};
  EXPECT_LT(fit.Predict(row), 1e-6);
  EXPECT_NEAR(fit.deviance, 0.0, 1e-6);
}

TEST(Poisson, NearCollinearCovariatesStaySolvable) {
  // Two covariates differing by 1e-8 noise: the ridge keeps the IRLS solve
  // alive; the *sum* of the two coefficients is identified even though the
  // split is not.
  Rng rng(54);
  const int n = 1000;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    const double v = rng.Uniform(-1.0, 1.0);
    x(static_cast<std::size_t>(i), 0) = v;
    x(static_cast<std::size_t>(i), 1) = v + 1e-8 * rng.Normal();
    y[static_cast<std::size_t>(i)] = rng.Poisson(std::exp(0.5 + 0.6 * v));
  }
  const GlmFit fit = FitPoisson(x, y);
  const double sum =
      fit.coefficients[1].estimate + fit.coefficients[2].estimate;
  EXPECT_NEAR(sum, 0.6, 0.1);
  EXPECT_TRUE(std::isfinite(fit.coefficients[1].std_error));
}

TEST(Poisson, LargeCountsHandled) {
  Rng rng(55);
  Matrix x(200, 1);
  std::vector<double> y(200);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.Uniform(-0.5, 0.5);
    x(static_cast<std::size_t>(i), 0) = v;
    y[static_cast<std::size_t>(i)] = rng.Poisson(std::exp(8.0 + v));
  }
  const GlmFit fit = FitPoisson(x, y);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.coefficients[0].estimate, 8.0, 0.05);
  EXPECT_NEAR(fit.coefficients[1].estimate, 1.0, 0.1);
}

TEST(NegativeBinomial, AllZeroResponseStaysFinite) {
  Matrix x(20, 0);
  const std::vector<double> y(20, 0.0);
  const GlmFit fit = FitNegativeBinomial(x, y);
  EXPECT_TRUE(std::isfinite(fit.coefficients[0].estimate));
  EXPECT_TRUE(std::isfinite(fit.theta));
}

TEST(LogLikelihoods, HandComputedValues) {
  const std::vector<double> y = {0, 1, 2};
  const std::vector<double> mu = {0.5, 1.0, 2.0};
  // Poisson: sum y log mu - mu - log(y!).
  const double expected = (0.0 - 0.5 - 0.0) + (0.0 - 1.0 - 0.0) +
                          (2.0 * std::log(2.0) - 2.0 - std::log(2.0));
  EXPECT_NEAR(PoissonLogLikelihood(y, mu), expected, 1e-12);
}

TEST(LogLikelihoods, NegBinApproachesPoissonForLargeTheta) {
  const std::vector<double> y = {0, 1, 2, 5};
  const std::vector<double> mu = {0.5, 1.0, 2.0, 4.0};
  EXPECT_NEAR(NegativeBinomialLogLikelihood(y, mu, 1e7),
              PoissonLogLikelihood(y, mu), 1e-3);
}

}  // namespace
}  // namespace hpcfail::stats
