#include "core/usage_analysis.h"

#include <gtest/gtest.h>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

Trace UsageTrace() {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sys";
  c.num_nodes = 4;
  c.procs_per_node = 4;
  c.observed = {0, 100 * kDay};
  t.AddSystem(c);
  // Node 0: two jobs, partially overlapping; node 1: one job; rest idle.
  JobRecord j;
  j.system = SystemId{0};
  j.user = UserId{1};
  j.procs = 4;
  j.id = JobId{0};
  j.submit = 0;
  j.dispatch = 10 * kDay;
  j.end = 20 * kDay;
  j.nodes = {NodeId{0}};
  t.AddJob(j);
  j.id = JobId{1};
  j.submit = 14 * kDay;
  j.dispatch = 15 * kDay;
  j.end = 25 * kDay;
  j.nodes = {NodeId{0}, NodeId{1}};
  j.procs = 8;
  t.AddJob(j);
  t.Finalize();
  return t;
}

TEST(ComputeNodeUsage, MergesOverlappingIntervals) {
  const Trace t = UsageTrace();
  const auto usage = ComputeNodeUsage(t, SystemId{0});
  ASSERT_EQ(usage.size(), 4u);
  EXPECT_EQ(usage[0].num_jobs, 2);
  // Node 0 busy from day 10 to day 25: 15 days, not 20.
  EXPECT_EQ(usage[0].busy_time, 15 * kDay);
  EXPECT_NEAR(usage[0].utilization, 0.15, 1e-12);
  EXPECT_EQ(usage[1].num_jobs, 1);
  EXPECT_EQ(usage[1].busy_time, 10 * kDay);
  EXPECT_EQ(usage[2].num_jobs, 0);
  EXPECT_EQ(usage[2].busy_time, 0);
}

TEST(AnalyzeUsage, ThrowsWithoutJobLog) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "nojobs";
  c.num_nodes = 4;
  c.procs_per_node = 4;
  c.observed = {0, kDay};
  t.AddSystem(c);
  t.Finalize();
  const EventIndex idx(t);
  EXPECT_THROW(AnalyzeUsage(idx, SystemId{0}), std::invalid_argument);
}

TEST(AnalyzeUsage, GeneratedTraceShowsPositiveCorrelation) {
  // System-20-like: node 0 is the heavily used login node with elevated
  // rates, so jobs-vs-failures correlation is clearly positive (Fig. 7).
  synth::Scenario sc;
  sc.duration = 2 * kYear;
  sc.systems.push_back(synth::System20Like(64, 2 * kYear));
  const Trace t = synth::GenerateTrace(sc, 31);
  const EventIndex idx(t);
  const UsageAnalysis u = AnalyzeUsage(idx, SystemId{0});
  EXPECT_GT(u.jobs_vs_failures.r, 0.1);
  // Paper Section V: removing node 0 collapses the linear correlation.
  EXPECT_EQ(u.top_node, NodeId{0});
  EXPECT_LT(u.jobs_vs_failures_excl_top.r, u.jobs_vs_failures.r);
}

TEST(AnalyzeUsage, NodeStatsCarryFailures) {
  synth::Scenario sc = synth::TinyScenario(120 * kDay);
  const Trace t = synth::GenerateTrace(sc, 32);
  const EventIndex idx(t);
  const UsageAnalysis u = AnalyzeUsage(idx, t.systems()[0].id);
  long long total = 0;
  for (const NodeUsageStats& n : u.nodes) total += n.failures;
  EXPECT_EQ(total, static_cast<long long>(t.num_failures()));
}

TEST(AnalyzeUsage, UtilizationGradientVisible) {
  synth::Scenario sc;
  sc.duration = kYear;
  sc.systems.push_back(synth::System20Like(64, kYear));
  const Trace t = synth::GenerateTrace(sc, 33);
  const EventIndex idx(t);
  const UsageAnalysis u = AnalyzeUsage(idx, SystemId{0});
  // Scheduler affinity: average utilization decreasing in node id halves.
  double lo = 0.0, hi = 0.0;
  for (std::size_t n = 0; n < 32; ++n) lo += u.nodes[n].utilization;
  for (std::size_t n = 32; n < 64; ++n) hi += u.nodes[n].utilization;
  EXPECT_GT(lo, hi);
}

}  // namespace
}  // namespace hpcfail::core
