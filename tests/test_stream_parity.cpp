// The tentpole guarantee: streaming results are bit-identical to the batch
// analyzers on the same data — for sorted input, out-of-order input within
// the tolerance bound, sharded catch-up at several thread counts, and
// across a checkpoint/restore cycle (test_stream_snapshot.cpp covers the
// snapshot-specific cases).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/prediction.h"
#include "core/window_analysis.h"
#include "stats/descriptive.h"
#include "stream/engine.h"
#include "synth/generate.h"
#include "synth/scenario.h"

namespace hpcfail::stream {
namespace {

using core::ConditionalResult;
using core::EventFilter;
using core::Scope;

const Trace& SharedTrace() {
  static const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 5);
  return trace;
}

// Deterministic local shuffle: swaps adjacent events whose starts are
// closer than `tolerance`, so arrival order violates time order but every
// event stays within the reorder bound.
std::vector<FailureRecord> Shuffled(const std::vector<FailureRecord>& sorted,
                                    TimeSec tolerance) {
  std::vector<FailureRecord> out = sorted;
  for (std::size_t i = 0; i + 1 < out.size(); i += 2) {
    if (out[i + 1].start - out[i].start < tolerance) {
      std::swap(out[i], out[i + 1]);
    }
  }
  return out;
}

void ExpectBitIdentical(const ConditionalResult& stream,
                        const ConditionalResult& batch) {
  EXPECT_EQ(stream.conditional.successes, batch.conditional.successes);
  EXPECT_EQ(stream.conditional.trials, batch.conditional.trials);
  EXPECT_EQ(stream.conditional.estimate, batch.conditional.estimate);
  EXPECT_EQ(stream.conditional.ci_low, batch.conditional.ci_low);
  EXPECT_EQ(stream.conditional.ci_high, batch.conditional.ci_high);
  EXPECT_EQ(stream.baseline.successes, batch.baseline.successes);
  EXPECT_EQ(stream.baseline.trials, batch.baseline.trials);
  EXPECT_EQ(stream.baseline.estimate, batch.baseline.estimate);
  if (std::isnan(batch.factor)) {
    EXPECT_TRUE(std::isnan(stream.factor));
  } else {
    EXPECT_EQ(stream.factor, batch.factor);
  }
  EXPECT_EQ(stream.test.z, batch.test.z);
  EXPECT_EQ(stream.test.p_value, batch.test.p_value);
  EXPECT_EQ(stream.num_triggers, batch.num_triggers);
}

struct Case {
  EventFilter trigger;
  EventFilter target;
  TimeSec window;
};

std::vector<Case> Cases() {
  return {
      {EventFilter::Any(), EventFilter::Any(), kWeek},
      {EventFilter::Any(), EventFilter::Any(), kDay},
      {EventFilter::Of(FailureCategory::kHardware), EventFilter::Any(),
       kWeek},
      {EventFilter::Of(FailureCategory::kSoftware),
       EventFilter::Of(FailureCategory::kSoftware), 3 * kDay},
  };
}

TEST(StreamParity, TrackerMatchesBatchAnalyzerOnSortedInput) {
  const Trace& trace = SharedTrace();
  const core::EventIndex batch_idx(trace);
  const core::WindowAnalyzer analyzer(batch_idx);
  for (const Case& c : Cases()) {
    StreamingWindowTracker tracker(
        trace.systems(), {.trigger = c.trigger, .target = c.target,
                          .window = c.window});
    IncrementalEventIndex idx(trace.systems(), {});
    idx.SetSink([&tracker](std::size_t sys, const FailureRecord& r) {
      tracker.OnEvent(sys, r);
    });
    for (const FailureRecord& r : trace.failures()) idx.Ingest(r);
    idx.Finish();
    tracker.Finish();
    for (const Scope scope :
         {Scope::kSameNode, Scope::kRackPeers, Scope::kSystemPeers}) {
      ExpectBitIdentical(
          tracker.Result(scope),
          analyzer.Compare(c.trigger, c.target, scope, c.window));
    }
  }
}

TEST(StreamParity, TrackerMatchesBatchUnderOutOfOrderDelivery) {
  const Trace& trace = SharedTrace();
  const core::EventIndex batch_idx(trace);
  const core::WindowAnalyzer analyzer(batch_idx);
  const TimeSec tolerance = kDay;
  const std::vector<FailureRecord> events =
      Shuffled(trace.failures(), tolerance);

  StreamingWindowTracker tracker(
      trace.systems(),
      {.trigger = EventFilter::Any(), .target = EventFilter::Any(),
       .window = kWeek});
  IncrementalEventIndex idx(trace.systems(),
                            {.reorder_tolerance = tolerance});
  idx.SetSink([&tracker](std::size_t sys, const FailureRecord& r) {
    tracker.OnEvent(sys, r);
  });
  for (const FailureRecord& r : events) {
    ASSERT_EQ(idx.Ingest(r), IngestStatus::kAccepted);
  }
  idx.Finish();
  tracker.Finish();
  for (const Scope scope :
       {Scope::kSameNode, Scope::kRackPeers, Scope::kSystemPeers}) {
    ExpectBitIdentical(tracker.Result(scope),
                       analyzer.Compare(EventFilter::Any(),
                                        EventFilter::Any(), scope, kWeek));
  }
}

TEST(StreamParity, EngineCatchUpMatchesBatchAtEveryThreadCount) {
  const Trace& trace = SharedTrace();
  const core::EventIndex batch_idx(trace);
  const core::WindowAnalyzer analyzer(batch_idx);
  const std::vector<FailureRecord> events = Shuffled(trace.failures(), kDay);

  EngineConfig cfg;
  cfg.stream.reorder_tolerance = kDay;
  cfg.window.trigger = EventFilter::Any();
  cfg.window.target = EventFilter::Any();
  cfg.window.window = kWeek;

  for (const int threads : {1, 2, 4, 8}) {
    StreamEngine engine(trace.systems(), cfg);
    engine.CatchUp(events, threads);
    engine.Finish();
    EXPECT_EQ(engine.counters().rejected(), 0);
    for (const Scope scope :
         {Scope::kSameNode, Scope::kRackPeers, Scope::kSystemPeers}) {
      ExpectBitIdentical(engine.tracker().Result(scope),
                         analyzer.Compare(EventFilter::Any(),
                                          EventFilter::Any(), scope, kWeek));
    }
  }
}

TEST(StreamParity, PredictorScoresBitIdenticalToBatchWalk) {
  const Trace& trace = SharedTrace();
  const core::EventIndex batch_idx(trace);
  const core::FailurePredictor predictor(batch_idx, core::PredictorConfig{});
  const double threshold = predictor.baseline();

  // Batch reference: walk the finalized (sorted) trace with per-node
  // last-failure state, scoring each event before folding it in.
  std::vector<double> reference;
  {
    std::vector<std::vector<std::pair<int, TimeSec>>> last;
    for (const SystemConfig& s : trace.systems()) {
      last.emplace_back(static_cast<std::size_t>(s.num_nodes),
                        std::pair<int, TimeSec>{-1, 0});
    }
    for (const FailureRecord& r : trace.failures()) {
      std::size_t sys = 0;
      while (trace.systems()[sys].id != r.system) ++sys;
      auto& slot = last[sys][static_cast<std::size_t>(r.node.value)];
      std::optional<FailureCategory> t;
      std::optional<TimeSec> at;
      if (slot.first >= 0) {
        t = static_cast<FailureCategory>(slot.first);
        at = slot.second;
      }
      reference.push_back(predictor.Score(t, at, r.start));
      slot = {static_cast<int>(r.category), r.start};
    }
  }

  // Streaming: out-of-order arrival, scores collected in release order.
  // Released order is per-system time-sorted and globally (start, system,
  // node)-sorted — the same order as the batch walk.
  StreamingPredictor streaming(trace.systems(), predictor, threshold);
  std::vector<double> scores;
  IncrementalEventIndex idx(trace.systems(), {.reorder_tolerance = kDay});
  idx.SetSink([&](std::size_t sys, const FailureRecord& r) {
    scores.push_back(streaming.OnEvent(sys, r));
  });
  for (const FailureRecord& r : Shuffled(trace.failures(), kDay)) {
    idx.Ingest(r);
  }
  idx.Finish();

  ASSERT_EQ(scores.size(), reference.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(scores[i], reference[i]) << "event " << i;
  }
  EXPECT_EQ(streaming.events_scored(),
            static_cast<long long>(reference.size()));
  long long ref_alarms = 0;
  for (const double s : reference) {
    if (s >= threshold) ++ref_alarms;
  }
  EXPECT_EQ(streaming.alarms(), ref_alarms);
}

TEST(StreamParity, SummaryMatchesBatchDescriptiveStats) {
  const Trace& trace = SharedTrace();
  StreamEngine engine(trace.systems(), [] {
    EngineConfig cfg;
    cfg.window.trigger = EventFilter::Any();
    cfg.window.target = EventFilter::Any();
    return cfg;
  }());
  engine.CatchUp(trace.failures(), 4);
  engine.Finish();

  std::vector<double> downtimes;
  for (const FailureRecord& r : trace.failures()) {
    downtimes.push_back(static_cast<double>(r.downtime()));
  }
  const RunningStats merged = engine.summary().Downtime();
  EXPECT_EQ(merged.count, static_cast<long long>(downtimes.size()));
  EXPECT_NEAR(merged.mean, stats::Mean(downtimes),
              1e-9 * std::abs(stats::Mean(downtimes)));
  EXPECT_NEAR(merged.variance(), stats::Variance(downtimes),
              1e-9 * stats::Variance(downtimes));

  long long by_cat = 0;
  for (FailureCategory c : AllFailureCategories()) {
    by_cat += engine.summary().CountOf(c);
  }
  EXPECT_EQ(by_cat, merged.count);
}

TEST(StreamParity, SummaryMergeIsIndependentOfSplitPoint) {
  // Merging per-system accumulators must not depend on how the stream was
  // chunked: any CatchUp split yields the same merged doubles.
  const Trace& trace = SharedTrace();
  const auto run = [&](std::size_t split) {
    StreamingSummary summary(trace.systems().size());
    IncrementalEventIndex idx(trace.systems(), {});
    idx.SetSink([&summary](std::size_t sys, const FailureRecord& r) {
      summary.OnEvent(sys, r);
    });
    const std::vector<FailureRecord>& events = trace.failures();
    idx.CatchUp(std::span(events).subspan(0, split), 2);
    idx.CatchUp(std::span(events).subspan(split), 2);
    idx.Finish();
    return summary.Downtime();
  };
  const RunningStats a = run(1);
  const RunningStats b = run(SharedTrace().failures().size() / 2);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace hpcfail::stream
