#include "core/power_analysis.h"

#include <gtest/gtest.h>
#include <cmath>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

// Realistic (non-saturating) per-node rates with many facility events, so
// the month-window conditional probabilities have room above the baseline.
Trace PowerTrace(std::uint64_t seed = 51) {
  synth::Scenario sc;
  sc.duration = 3 * kYear;
  auto sys = synth::Group1System("p", 96, 3 * kYear);
  for (double& r : sys.base_rate_per_hour) r *= 2.0;
  sys.power_outage.events_per_year = 12.0;
  sys.power_spike.events_per_year = 16.0;
  sys.ups_failure.events_per_year = 10.0;
  sys.chiller_failure.events_per_year = 10.0;
  sc.systems.push_back(std::move(sys));
  return synth::GenerateTrace(sc, seed);
}

TEST(PowerProblem, NamesAndFilters) {
  EXPECT_EQ(ToString(PowerProblem::kPowerOutage), "power_outage");
  EXPECT_EQ(ToString(PowerProblem::kUpsFailure), "ups_failure");
  const EventFilter f = PowerProblemFilter(PowerProblem::kPowerSupplyFailure);
  EXPECT_EQ(f.category, FailureCategory::kHardware);
  EXPECT_EQ(f.hardware, HardwareComponent::kPowerSupply);
  const EventFilter g = PowerProblemFilter(PowerProblem::kPowerSpike);
  EXPECT_EQ(g.environment, EnvironmentEvent::kPowerSpike);
}

TEST(EnvironmentBreakdown, PercentagesSumTo100) {
  const Trace t = PowerTrace();
  const EventIndex idx(t);
  const EnvironmentBreakdown b = BreakdownEnvironment(idx);
  ASSERT_GT(b.total, 0);
  double sum = 0.0;
  for (double p : b.percent) sum += p;
  EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(EnvironmentBreakdown, PowerProblemsDominate) {
  // Fig. 9: outages + spikes + UPS are the majority of env failures.
  const Trace t = PowerTrace();
  const EventIndex idx(t);
  const EnvironmentBreakdown b = BreakdownEnvironment(idx);
  const double power =
      b.percent[static_cast<std::size_t>(EnvironmentEvent::kPowerOutage)] +
      b.percent[static_cast<std::size_t>(EnvironmentEvent::kPowerSpike)] +
      b.percent[static_cast<std::size_t>(EnvironmentEvent::kUps)];
  EXPECT_GT(power, 50.0);
}

TEST(PowerImpact, HardwareFailuresElevatedAfterPowerEvents) {
  const Trace t = PowerTrace();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const auto rows =
      PowerImpactOn(a, EventFilter::Of(FailureCategory::kHardware));
  ASSERT_EQ(rows.size(), 4u);
  for (const PowerImpactRow& r : rows) {
    if (r.month.num_triggers < 5) continue;  // too few events to assert
    EXPECT_GT(r.month.factor, 2.0)
        << ToString(r.problem) << " month factor " << r.month.factor;
  }
}

TEST(PowerImpact, SoftwareFailuresElevatedAfterOutages) {
  const Trace t = PowerTrace();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const auto rows =
      PowerImpactOn(a, EventFilter::Of(FailureCategory::kSoftware));
  const PowerImpactRow& outage = rows[0];
  ASSERT_EQ(outage.problem, PowerProblem::kPowerOutage);
  EXPECT_GT(outage.month.factor, 2.0);
}

TEST(ComponentImpact, CpuUnaffectedByPower) {
  // Fig. 10 right: "The only component that showed no clear signs of
  // increased failure rates after any of the power problems are CPUs."
  const Trace t = PowerTrace();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const auto impacts = HardwareComponentImpact(
      a, PowerProblemFilter(PowerProblem::kPowerOutage));
  double cpu_factor = 0.0, board_factor = 0.0;
  for (const ComponentImpact& ci : impacts) {
    if (ci.component == "cpu" && std::isfinite(ci.month.factor)) {
      cpu_factor = ci.month.factor;
    }
    if (ci.component == "node_board" && std::isfinite(ci.month.factor)) {
      board_factor = ci.month.factor;
    }
  }
  EXPECT_GT(board_factor, 3.0);
  EXPECT_LT(cpu_factor, board_factor / 2.0);
}

TEST(ComponentImpact, StorageSoftwareDominatesAfterOutages) {
  // Fig. 11 right: DST/PFS/CFS carry the software impact of power problems.
  const Trace t = PowerTrace();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const auto impacts = SoftwareComponentImpact(
      a, PowerProblemFilter(PowerProblem::kPowerOutage));
  double dst = 0.0, os = 0.0;
  for (const ComponentImpact& ci : impacts) {
    if (ci.component == "dst") dst = ci.month.conditional.estimate;
    if (ci.component == "os") os = ci.month.conditional.estimate;
  }
  EXPECT_GT(dst, os);
}

TEST(MaintenanceImpact, ElevatedAfterPowerProblems) {
  const Trace t = PowerTrace();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const auto rows = MaintenanceImpact(a);
  ASSERT_EQ(rows.size(), 4u);
  const PowerImpactRow& outage = rows[0];
  if (outage.month.num_triggers >= 5 && outage.month.baseline.estimate > 0) {
    EXPECT_GT(outage.month.factor, 5.0);
  }
}

TEST(SpaceTime, ExtractsAllPowerEvents) {
  const Trace t = PowerTrace();
  const EventIndex idx(t);
  const auto points = PowerSpaceTime(idx, t.systems()[0].id);
  ASSERT_FALSE(points.empty());
  long long expected = 0;
  for (const FailureRecord& f : t.failures()) {
    if (f.environment == EnvironmentEvent::kPowerOutage ||
        f.environment == EnvironmentEvent::kPowerSpike ||
        f.environment == EnvironmentEvent::kUps ||
        f.hardware == HardwareComponent::kPowerSupply) {
      ++expected;
    }
  }
  EXPECT_EQ(static_cast<long long>(points.size()), expected);
  for (const SpaceTimePoint& p : points) {
    EXPECT_GE(p.node.value, 0);
    EXPECT_GE(p.time, 0);
  }
}

TEST(SpaceTime, OutagesClusterInTime) {
  // Fig. 12: outages strike many nodes at nearly the same moment.
  const Trace t = PowerTrace();
  const EventIndex idx(t);
  const auto points = PowerSpaceTime(idx, t.systems()[0].id);
  std::vector<TimeSec> outages;
  for (const SpaceTimePoint& p : points) {
    if (p.problem == PowerProblem::kPowerOutage) outages.push_back(p.time);
  }
  ASSERT_GT(outages.size(), 10u);
  std::sort(outages.begin(), outages.end());
  int clustered = 0;
  for (std::size_t i = 1; i < outages.size(); ++i) {
    if (outages[i] - outages[i - 1] <= 11 * kMinute) ++clustered;
  }
  // Most outage records arrive in same-instant bursts.
  EXPECT_GT(clustered, static_cast<int>(outages.size()) / 3);
}

}  // namespace
}  // namespace hpcfail::core
