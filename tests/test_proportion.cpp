#include "stats/proportion.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.h"

namespace hpcfail::stats {
namespace {

TEST(Wilson, PointEstimate) {
  const Proportion p = WilsonProportion(30, 100);
  EXPECT_DOUBLE_EQ(p.estimate, 0.3);
  EXPECT_EQ(p.successes, 30);
  EXPECT_EQ(p.trials, 100);
}

TEST(Wilson, KnownInterval) {
  // Wilson 95% for 30/100: approximately [0.2189, 0.3958].
  const Proportion p = WilsonProportion(30, 100);
  EXPECT_NEAR(p.ci_low, 0.2189, 5e-4);
  EXPECT_NEAR(p.ci_high, 0.3958, 5e-4);
}

TEST(Wilson, ZeroSuccessesHasPositiveUpperBound) {
  const Proportion p = WilsonProportion(0, 50);
  EXPECT_DOUBLE_EQ(p.estimate, 0.0);
  EXPECT_DOUBLE_EQ(p.ci_low, 0.0);
  EXPECT_GT(p.ci_high, 0.0);
  EXPECT_LT(p.ci_high, 0.15);
}

TEST(Wilson, AllSuccesses) {
  const Proportion p = WilsonProportion(50, 50);
  EXPECT_DOUBLE_EQ(p.estimate, 1.0);
  EXPECT_LT(p.ci_low, 1.0);
  EXPECT_DOUBLE_EQ(p.ci_high, 1.0);
}

TEST(Wilson, UndefinedOnZeroTrials) {
  const Proportion p = WilsonProportion(0, 0);
  EXPECT_FALSE(p.defined());
}

TEST(Wilson, IntervalContainsEstimate) {
  for (long long s : {0LL, 1LL, 5LL, 50LL, 99LL, 100LL}) {
    const Proportion p = WilsonProportion(s, 100);
    EXPECT_LE(p.ci_low, p.estimate + 1e-12);
    EXPECT_GE(p.ci_high, p.estimate - 1e-12);
  }
}

TEST(Wilson, HigherConfidenceWidensInterval) {
  const Proportion p95 = WilsonProportion(20, 80, 0.95);
  const Proportion p99 = WilsonProportion(20, 80, 0.99);
  EXPECT_LT(p99.ci_low, p95.ci_low);
  EXPECT_GT(p99.ci_high, p95.ci_high);
}

TEST(Wilson, RejectsBadArguments) {
  EXPECT_THROW(WilsonProportion(5, 3), std::invalid_argument);
  EXPECT_THROW(WilsonProportion(-1, 3), std::invalid_argument);
  EXPECT_THROW(WilsonProportion(1, 3, 0.0), std::invalid_argument);
  EXPECT_THROW(WilsonProportion(1, 3, 1.0), std::invalid_argument);
}

TEST(Wald, MatchesTextbookFormula) {
  const Proportion p = WaldProportion(40, 100);
  const double half = 1.959963985 * std::sqrt(0.4 * 0.6 / 100.0);
  EXPECT_NEAR(p.ci_low, 0.4 - half, 1e-9);
  EXPECT_NEAR(p.ci_high, 0.4 + half, 1e-9);
}

TEST(Wald, DegeneratesAtZero) {
  // The known Wald pathology: zero-width interval at p = 0. Wilson avoids it.
  const Proportion wald = WaldProportion(0, 50);
  EXPECT_DOUBLE_EQ(wald.ci_high, 0.0);
  const Proportion wilson = WilsonProportion(0, 50);
  EXPECT_GT(wilson.ci_high, 0.0);
}

TEST(TwoProportionTest, DetectsClearDifference) {
  const TwoProportionTest t = TestProportionsDiffer(80, 100, 20, 100);
  EXPECT_GT(t.z, 5.0);
  EXPECT_LT(t.p_value, 1e-6);
  EXPECT_TRUE(t.significant_95);
  EXPECT_TRUE(t.significant_99);
}

TEST(TwoProportionTest, NoDifference) {
  const TwoProportionTest t = TestProportionsDiffer(30, 100, 30, 100);
  EXPECT_NEAR(t.z, 0.0, 1e-12);
  EXPECT_NEAR(t.p_value, 1.0, 1e-12);
  EXPECT_FALSE(t.significant_95);
}

TEST(TwoProportionTest, KnownValue) {
  // p1 = 0.5 (50/100), p2 = 0.4 (40/100): pooled = 0.45,
  // se = sqrt(0.45*0.55*0.02) ~ 0.070356, z ~ 1.4213.
  const TwoProportionTest t = TestProportionsDiffer(50, 100, 40, 100);
  EXPECT_NEAR(t.z, 1.4213, 1e-3);
  EXPECT_FALSE(t.significant_95);
}

TEST(TwoProportionTest, ZeroTrialsGivesNull) {
  const TwoProportionTest t = TestProportionsDiffer(0, 0, 5, 10);
  EXPECT_EQ(t.p_value, 1.0);
  EXPECT_FALSE(t.significant_95);
}

TEST(TwoProportionTest, BothExtremeGivesNull) {
  const TwoProportionTest t = TestProportionsDiffer(0, 50, 0, 70);
  EXPECT_EQ(t.p_value, 1.0);
}

TEST(FactorIncrease, BasicRatio) {
  const Proportion a = WilsonProportion(20, 100);
  const Proportion b = WilsonProportion(5, 100);
  EXPECT_DOUBLE_EQ(FactorIncrease(a, b), 4.0);
}

TEST(FactorIncrease, UndefinedCases) {
  const Proportion a = WilsonProportion(20, 100);
  const Proportion zero = WilsonProportion(0, 100);
  const Proportion empty = WilsonProportion(0, 0);
  EXPECT_TRUE(std::isnan(FactorIncrease(a, zero)));
  EXPECT_TRUE(std::isnan(FactorIncrease(a, empty)));
  EXPECT_TRUE(std::isnan(FactorIncrease(empty, a)));
}

// Property: Wilson 95% CIs cover the true p roughly 95% of the time.
TEST(WilsonCoverage, ApproximatelyNominal) {
  Rng rng(123);
  const double true_p = 0.07;
  const int n = 200;
  int covered = 0;
  const int reps = 2000;
  for (int r = 0; r < reps; ++r) {
    long long successes = 0;
    for (int i = 0; i < n; ++i) successes += rng.Bernoulli(true_p) ? 1 : 0;
    const Proportion p = WilsonProportion(successes, n);
    if (p.ci_low <= true_p && true_p <= p.ci_high) ++covered;
  }
  const double coverage = static_cast<double>(covered) / reps;
  EXPECT_GT(coverage, 0.92);
  EXPECT_LT(coverage, 0.98);
}

// Property: the two-sample test controls false positives near nominal rate.
TEST(TwoProportionTest, FalsePositiveRateNearAlpha) {
  Rng rng(77);
  const double p = 0.2;
  int false_pos = 0;
  const int reps = 2000;
  for (int r = 0; r < reps; ++r) {
    long long s1 = 0, s2 = 0;
    for (int i = 0; i < 150; ++i) s1 += rng.Bernoulli(p) ? 1 : 0;
    for (int i = 0; i < 150; ++i) s2 += rng.Bernoulli(p) ? 1 : 0;
    if (TestProportionsDiffer(s1, 150, s2, 150).significant_95) ++false_pos;
  }
  const double rate = static_cast<double>(false_pos) / reps;
  EXPECT_GT(rate, 0.02);
  EXPECT_LT(rate, 0.09);
}

}  // namespace
}  // namespace hpcfail::stats
