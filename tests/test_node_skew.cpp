#include "core/node_skew.h"

#include <gtest/gtest.h>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

Trace SkewedTrace(int hot_node_failures, int rest_failures_per_node) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sys";
  c.num_nodes = 16;
  c.procs_per_node = 4;
  c.observed = {0, 1000 * kDay};
  t.AddSystem(c);
  TimeSec when = kDay;
  for (int i = 0; i < hot_node_failures; ++i) {
    t.AddFailure(MakeFailure(SystemId{0}, NodeId{0}, when, when + kHour,
                             i % 2 == 0 ? FailureCategory::kSoftware
                                        : FailureCategory::kNetwork));
    when += kDay;
  }
  for (int n = 1; n < 16; ++n) {
    for (int i = 0; i < rest_failures_per_node; ++i) {
      t.AddFailure(MakeFailure(SystemId{0}, NodeId{n}, when, when + kHour,
                               FailureCategory::kHardware));
      when += kDay / 2;
    }
  }
  t.Finalize();
  return t;
}

TEST(NodeSkew, DetectsHotNode) {
  const Trace t = SkewedTrace(60, 3);
  const EventIndex idx(t);
  const NodeSkewSummary s = AnalyzeNodeSkew(idx, SystemId{0});
  EXPECT_EQ(s.most_failing_node, NodeId{0});
  EXPECT_EQ(s.max_failures, 60);
  EXPECT_GT(s.max_over_mean, 5.0);
  EXPECT_TRUE(s.equal_rates_test.significant_99);
}

TEST(NodeSkew, UniformSystemNotSignificant) {
  const Trace t = SkewedTrace(3, 3);
  const EventIndex idx(t);
  const NodeSkewSummary s = AnalyzeNodeSkew(idx, SystemId{0});
  EXPECT_FALSE(s.equal_rates_test.significant_99);
}

TEST(NodeSkew, ExcludingTopNodeTestIsComputed) {
  // Hot node 0 plus a secondary hot node 1: removing node 0 still rejects.
  Trace t = SkewedTrace(60, 2);
  for (int i = 0; i < 30; ++i) {
    t.AddFailure(MakeFailure(SystemId{0}, NodeId{1},
                             500 * kDay + i * kDay, 500 * kDay + i * kDay + 1,
                             FailureCategory::kHardware));
  }
  t.Finalize();
  const EventIndex idx(t);
  const NodeSkewSummary s = AnalyzeNodeSkew(idx, SystemId{0});
  EXPECT_TRUE(s.equal_rates_test_excl_top.significant_99);
}

TEST(NodeSkew, PerNodeCountsMatch) {
  const Trace t = SkewedTrace(10, 2);
  const EventIndex idx(t);
  const NodeSkewSummary s = AnalyzeNodeSkew(idx, SystemId{0});
  ASSERT_EQ(s.failures_per_node.size(), 16u);
  EXPECT_EQ(s.failures_per_node[0], 10);
  for (std::size_t n = 1; n < 16; ++n) EXPECT_EQ(s.failures_per_node[n], 2);
  EXPECT_NEAR(s.mean_failures, (10.0 + 15 * 2.0) / 16.0, 1e-12);
}

TEST(Breakdown, PercentagesSumTo100) {
  const Trace t = SkewedTrace(40, 3);
  const EventIndex idx(t);
  const BreakdownComparison b = CompareBreakdown(idx, SystemId{0}, NodeId{0});
  double node_sum = 0.0, rest_sum = 0.0;
  for (double p : b.node_percent) node_sum += p;
  for (double p : b.rest_percent) rest_sum += p;
  EXPECT_NEAR(node_sum, 100.0, 1e-9);
  EXPECT_NEAR(rest_sum, 100.0, 1e-9);
}

TEST(Breakdown, DominantModeShiftVisible) {
  // Fig. 5: in the prone node the dominant mode shifts away from hardware.
  const Trace t = SkewedTrace(40, 3);
  const EventIndex idx(t);
  const BreakdownComparison b = CompareBreakdown(idx, SystemId{0}, NodeId{0});
  const auto sw = static_cast<std::size_t>(FailureCategory::kSoftware);
  const auto hw = static_cast<std::size_t>(FailureCategory::kHardware);
  EXPECT_GT(b.node_percent[sw], b.node_percent[hw]);
  EXPECT_GT(b.rest_percent[hw], b.rest_percent[sw]);
}

TEST(ProneNode, WindowProbabilitiesAndFactor) {
  const Trace t = SkewedTrace(60, 3);
  const EventIndex idx(t);
  const ProneNodeProbability p = CompareProneNode(
      idx, SystemId{0}, NodeId{0}, EventFilter::Any(), kWeek);
  EXPECT_TRUE(p.prone.defined());
  EXPECT_TRUE(p.rest.defined());
  EXPECT_GT(p.factor, 3.0);
  EXPECT_TRUE(p.per_type_equal_rate.significant_99);
}

TEST(ProneNode, TypeRestrictedComparison) {
  const Trace t = SkewedTrace(60, 3);
  const EventIndex idx(t);
  // All of node 0's failures are sw/net; hardware prone-vs-rest goes the
  // other way.
  const ProneNodeProbability hw = CompareProneNode(
      idx, SystemId{0}, NodeId{0},
      EventFilter::Of(FailureCategory::kHardware), kWeek);
  EXPECT_EQ(hw.prone.successes, 0);
  EXPECT_GT(hw.rest.estimate, 0.0);
}

TEST(ProneNode, GeneratedTraceNodeZeroIsProne) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 21);
  const EventIndex idx(t);
  const NodeSkewSummary s = AnalyzeNodeSkew(idx, t.systems()[0].id);
  // The generator's login-node effect: node 0 tops the counts.
  EXPECT_EQ(s.most_failing_node, NodeId{0});
  EXPECT_TRUE(s.equal_rates_test.significant_99);
}

}  // namespace
}  // namespace hpcfail::core
