// Checkpoint/restore: snapshot primitives, the envelope format, full-engine
// round trips (snapshot mid-stream, restore fresh, finish, compare against
// an uninterrupted run) and rejection of corrupted/truncated/mismatched
// snapshots.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "core/prediction.h"
#include "core/window_analysis.h"
#include "obs/metrics.h"
#include "stream/engine.h"
#include "stream/snapshot.h"
#include "synth/generate.h"
#include "synth/scenario.h"

namespace hpcfail::stream {
namespace {

using core::EventFilter;
using core::Scope;

TEST(Snapshot, WriterReaderRoundTrip) {
  snapshot::Writer w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutBool(true);
  w.PutDouble(-0.1);
  w.PutString("hello");

  snapshot::Reader r(w.payload());
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_TRUE(r.GetBool());
  EXPECT_EQ(r.GetDouble(), -0.1);
  EXPECT_EQ(r.GetString(), "hello");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_THROW(r.GetU8(), snapshot::SnapshotError);
}

TEST(Snapshot, DoubleRoundTripIsExact) {
  snapshot::Writer w;
  const double values[] = {0.0, -0.0, 1e-300, 1e300,
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()};
  for (const double v : values) w.PutDouble(v);
  snapshot::Reader r(w.payload());
  for (const double v : values) {
    const double got = r.GetDouble();
    if (std::isnan(v)) {
      EXPECT_TRUE(std::isnan(got));
    } else {
      EXPECT_EQ(got, v);
      EXPECT_EQ(std::signbit(got), std::signbit(v));
    }
  }
}

TEST(Snapshot, GetSizeRejectsImplausibleContainerLength) {
  snapshot::Writer w;
  w.PutU64(1'000'000'000ULL);  // claims a billion elements...
  w.PutU8(1);                  // ...with one byte of payload behind it
  snapshot::Reader r(w.payload());
  EXPECT_THROW(r.GetSize(8), snapshot::SnapshotError);
}

TEST(Snapshot, EnvelopeRoundTrip) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  snapshot::WriteEnvelope(ss, "payload bytes");
  EXPECT_EQ(snapshot::ReadEnvelope(ss), "payload bytes");
}

TEST(Snapshot, EnvelopeRejectsCorruption) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  snapshot::WriteEnvelope(ss, "payload bytes");
  const std::string good = ss.str();

  {  // bad magic
    std::string bytes = good;
    bytes[0] = 'X';
    std::istringstream is(bytes);
    EXPECT_THROW(snapshot::ReadEnvelope(is), snapshot::SnapshotError);
  }
  {  // unsupported version
    std::string bytes = good;
    bytes[8] = 99;
    std::istringstream is(bytes);
    EXPECT_THROW(snapshot::ReadEnvelope(is), snapshot::SnapshotError);
  }
  {  // flipped payload byte -> checksum mismatch
    std::string bytes = good;
    bytes[22] ^= 0x01;
    std::istringstream is(bytes);
    EXPECT_THROW(snapshot::ReadEnvelope(is), snapshot::SnapshotError);
  }
  {  // truncation at every prefix length
    for (std::size_t n = 0; n < good.size(); ++n) {
      std::istringstream is(good.substr(0, n));
      EXPECT_THROW(snapshot::ReadEnvelope(is), snapshot::SnapshotError)
          << "prefix " << n;
    }
  }
  {  // implausible declared size must not trigger a giant allocation
    std::string bytes = good;
    for (int i = 12; i < 20; ++i) bytes[static_cast<std::size_t>(i)] = '\xFF';
    std::istringstream is(bytes);
    EXPECT_THROW(snapshot::ReadEnvelope(is), snapshot::SnapshotError);
  }
}

// ---- Full-engine round trips.

EngineConfig TestConfig() {
  EngineConfig cfg;
  cfg.stream.reorder_tolerance = kDay;
  cfg.window.trigger = EventFilter::Any();
  cfg.window.target = EventFilter::Any();
  cfg.window.window = kWeek;
  return cfg;
}

const Trace& SharedTrace() {
  static const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 23);
  return trace;
}

const core::FailurePredictor& SharedPredictor() {
  static const core::EventIndex index(SharedTrace());
  static const core::FailurePredictor predictor(index,
                                                core::PredictorConfig{});
  return predictor;
}

std::unique_ptr<StreamEngine> MakeEngine() {
  auto engine =
      std::make_unique<StreamEngine>(SharedTrace().systems(), TestConfig());
  engine->AttachPredictor(SharedPredictor(), SharedPredictor().baseline());
  return engine;
}

TEST(EngineSnapshot, MidStreamRestoreFinishesIdentically) {
  const std::vector<FailureRecord>& events = SharedTrace().failures();
  const std::size_t split = events.size() / 2;

  auto uninterrupted = MakeEngine();
  for (const FailureRecord& r : events) uninterrupted->Ingest(r);
  uninterrupted->Finish();

  auto head = MakeEngine();
  for (std::size_t i = 0; i < split; ++i) head->Ingest(events[i]);
  std::stringstream snap(std::ios::in | std::ios::out | std::ios::binary);
  head->SaveCheckpoint(snap);

  // Fresh engine, as a restarted process would build it.
  auto resumed = MakeEngine();
  resumed->RestoreCheckpoint(snap);
  EXPECT_EQ(resumed->counters().accepted, head->counters().accepted);
  EXPECT_EQ(resumed->watermark(), head->watermark());
  EXPECT_EQ(resumed->index().num_buffered(), head->index().num_buffered());
  for (std::size_t i = split; i < events.size(); ++i) {
    resumed->Ingest(events[i]);
  }
  resumed->Finish();

  for (const Scope scope :
       {Scope::kSameNode, Scope::kRackPeers, Scope::kSystemPeers}) {
    const auto a = resumed->tracker().Result(scope);
    const auto b = uninterrupted->tracker().Result(scope);
    EXPECT_EQ(a.conditional.estimate, b.conditional.estimate);
    EXPECT_EQ(a.conditional.trials, b.conditional.trials);
    EXPECT_EQ(a.baseline.estimate, b.baseline.estimate);
    EXPECT_EQ(a.test.p_value, b.test.p_value);
  }
  EXPECT_EQ(resumed->summary().Downtime(), uninterrupted->summary().Downtime());
  EXPECT_EQ(resumed->predictor().alarms(), uninterrupted->predictor().alarms());
  EXPECT_EQ(resumed->predictor().events_scored(),
            uninterrupted->predictor().events_scored());
  EXPECT_EQ(resumed->counters().released, uninterrupted->counters().released);
}

TEST(EngineSnapshot, RestoreWithReorderBufferInFlight) {
  // Snapshot taken while events sit in the reorder buffer: the buffered
  // events must survive the round trip and release later in order.
  const std::vector<FailureRecord>& events = SharedTrace().failures();
  auto head = MakeEngine();
  for (std::size_t i = 0; i < events.size() / 2; ++i) head->Ingest(events[i]);
  ASSERT_GT(head->index().num_buffered(), 0u);

  std::stringstream snap(std::ios::in | std::ios::out | std::ios::binary);
  head->SaveCheckpoint(snap);
  auto resumed = MakeEngine();
  resumed->RestoreCheckpoint(snap);

  head->Finish();
  resumed->Finish();
  EXPECT_EQ(resumed->counters().released, head->counters().released);
  EXPECT_EQ(resumed->summary().Downtime(), head->summary().Downtime());
}

TEST(EngineSnapshot, CorruptedPayloadIsRejected) {
  auto head = MakeEngine();
  for (const FailureRecord& r : SharedTrace().failures()) head->Ingest(r);
  std::stringstream snap(std::ios::in | std::ios::out | std::ios::binary);
  head->SaveCheckpoint(snap);
  std::string bytes = snap.str();
  bytes[bytes.size() / 3] ^= 0x40;
  std::istringstream is(bytes);
  auto victim = MakeEngine();
  EXPECT_THROW(victim->RestoreCheckpoint(is), snapshot::SnapshotError);
}

TEST(EngineSnapshot, TruncatedFileIsRejected) {
  auto head = MakeEngine();
  for (const FailureRecord& r : SharedTrace().failures()) head->Ingest(r);
  std::stringstream snap(std::ios::in | std::ios::out | std::ios::binary);
  head->SaveCheckpoint(snap);
  const std::string bytes = snap.str();
  std::istringstream torn(bytes.substr(0, bytes.size() - 9));
  auto victim = MakeEngine();
  EXPECT_THROW(victim->RestoreCheckpoint(torn), snapshot::SnapshotError);
}

TEST(EngineSnapshot, ConfigMismatchIsRejected) {
  auto head = MakeEngine();
  std::stringstream snap(std::ios::in | std::ios::out | std::ios::binary);
  head->SaveCheckpoint(snap);

  {  // different reorder tolerance
    EngineConfig other = TestConfig();
    other.stream.reorder_tolerance = 2 * kDay;
    StreamEngine victim(SharedTrace().systems(), other);
    victim.AttachPredictor(SharedPredictor(), SharedPredictor().baseline());
    std::istringstream is(snap.str());
    EXPECT_THROW(victim.RestoreCheckpoint(is), snapshot::SnapshotError);
  }
  {  // predictor attached at save time but missing at restore
    StreamEngine victim(SharedTrace().systems(), TestConfig());
    std::istringstream is(snap.str());
    EXPECT_THROW(victim.RestoreCheckpoint(is), snapshot::SnapshotError);
  }
  {  // fewer systems configured
    std::vector<SystemConfig> fewer(SharedTrace().systems().begin(),
                                    SharedTrace().systems().end() - 1);
    if (!fewer.empty()) {
      StreamEngine victim(fewer, TestConfig());
      victim.AttachPredictor(SharedPredictor(), SharedPredictor().baseline());
      std::istringstream is(snap.str());
      EXPECT_THROW(victim.RestoreCheckpoint(is), snapshot::SnapshotError);
    }
  }
}

long long ObsCounterValue(const char* name) {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  const obs::MetricsSnapshot::CounterValue* c = snap.FindCounter(name);
  return c != nullptr ? c->value : 0;
}

void PatchLeU64(std::string* bytes, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*bytes)[at + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

TEST(EngineSnapshot, CorruptionMatrixYieldsDistinctErrors) {
  // Envelope layout: 8B magic | 4B version | 8B payload size | payload
  // (first 8B = config fingerprint) | 8B FNV-1a checksum. Each corruption
  // class must surface its own descriptive error — an operator debugging a
  // bad restore needs to know whether the file is foreign, torn, bit-rotted
  // or from a differently configured engine — and every failed restore must
  // land in the restore-failure metric.
  auto head = MakeEngine();
  for (const FailureRecord& r : SharedTrace().failures()) head->Ingest(r);
  std::stringstream snap(std::ios::in | std::ios::out | std::ios::binary);
  head->SaveCheckpoint(snap);
  const std::string good = snap.str();
  ASSERT_GT(good.size(), 36u);

  const long long failures_before =
      ObsCounterValue("hpcfail_stream_restore_failures_total");
  const long long restores_before =
      ObsCounterValue("hpcfail_stream_restores_total");

  const auto restore_error = [&](const std::string& bytes) -> std::string {
    std::istringstream is(bytes);
    auto victim = MakeEngine();
    try {
      victim->RestoreCheckpoint(is);
    } catch (const snapshot::SnapshotError& e) {
      return e.what();
    }
    return "";
  };

  std::set<std::string> errors;
  {  // corrupted magic
    std::string bytes = good;
    bytes[0] = 'X';
    const std::string err = restore_error(bytes);
    EXPECT_EQ(err, "snapshot: bad magic (not a snapshot file?)");
    errors.insert(err);
  }
  {  // unsupported version
    std::string bytes = good;
    bytes[8] = 99;
    const std::string err = restore_error(bytes);
    EXPECT_EQ(err, "snapshot: unsupported version 99");
    errors.insert(err);
  }
  {  // absurd declared payload size
    std::string bytes = good;
    for (std::size_t i = 12; i < 20; ++i) bytes[i] = '\xFF';
    const std::string err = restore_error(bytes);
    EXPECT_EQ(err, "snapshot: payload size implausible");
    errors.insert(err);
  }
  {  // file torn mid-payload
    const std::string err = restore_error(good.substr(0, 24));
    EXPECT_EQ(err, "snapshot: truncated payload");
    errors.insert(err);
  }
  {  // payload intact but checksum footer cut short
    const std::string err = restore_error(good.substr(0, good.size() - 5));
    EXPECT_EQ(err, "snapshot: missing checksum");
    errors.insert(err);
  }
  {  // bit rot in the checksum itself
    std::string bytes = good;
    bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
    const std::string err = restore_error(bytes);
    EXPECT_EQ(err, "snapshot: checksum mismatch (corrupted snapshot)");
    errors.insert(err);
  }
  {  // payload flipped AND checksum recomputed: the envelope verifies, so
     // the semantic validation inside the payload must catch it instead.
    std::string bytes = good;
    bytes[20] = static_cast<char>(bytes[20] ^ 0x01);  // config fingerprint
    const std::string_view payload(bytes.data() + 20, bytes.size() - 28);
    PatchLeU64(&bytes, bytes.size() - 8, snapshot::Fnv1a64(payload));
    const std::string err = restore_error(bytes);
    EXPECT_EQ(err,
              "snapshot: snapshot was taken with a different system/stream "
              "configuration");
    errors.insert(err);
  }
  // Seven corruption classes, seven distinct diagnostics.
  EXPECT_EQ(errors.size(), 7u);
  EXPECT_EQ(errors.count(""), 0u);

  if (hpcfail::obs::kEnabled) {
    EXPECT_EQ(ObsCounterValue("hpcfail_stream_restore_failures_total") -
                  failures_before,
              7);
    EXPECT_EQ(ObsCounterValue("hpcfail_stream_restores_total") -
                  restores_before,
              7);
  }
}

TEST(EngineSnapshot, BadRecordEnumsInPayloadAreRejectedAtRestore) {
  // Corruption-matrix companion for record payloads: flip a stored record's
  // category/subcategory byte to an out-of-range value and recompute the
  // checksum, so the envelope verifies and only the per-record validation
  // inside LoadFrom stands between the corruption and the query columns.
  auto head = MakeEngine();
  for (const FailureRecord& r : SharedTrace().failures()) head->Ingest(r);
  head->Finish();  // drain the reorder buffer: payload holds only stores
  std::stringstream snap(std::ios::in | std::ios::out | std::ios::binary);
  head->SaveCheckpoint(snap);
  ASSERT_EQ(head->index().num_buffered(), 0u);
  const std::string good = snap.str();

  // Walk the known layout to the first stored record. Envelope header is
  // 20 bytes; the index payload opens with fingerprint u64, 2 bool bytes,
  // max_seen i64, next_seq u64, five i64 counters, buffer count u64 (= 0),
  // store count u64, then per store: size u64 + 26-byte records
  // (u32 system, u32 node, i64 start, i64 end, u8 category, u8 sub).
  const auto read_u64 = [&](std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) |
          static_cast<unsigned char>(good[at + static_cast<std::size_t>(i)]);
    }
    return v;
  };
  std::size_t pos = 20 + 8 + 2 + 8 + 8 + 5 * 8;
  ASSERT_EQ(read_u64(pos), 0u) << "reorder buffer should be empty";
  pos += 8;
  const std::uint64_t num_stores = read_u64(pos);
  pos += 8;
  ASSERT_GT(num_stores, 0u);
  std::uint64_t store_size = 0;
  for (std::uint64_t s = 0; s < num_stores; ++s) {
    store_size = read_u64(pos);
    pos += 8;
    if (store_size > 0) break;
    ASSERT_LT(s + 1, num_stores) << "no store holds any record";
  }
  ASSERT_GT(store_size, 0u);
  const std::size_t cat_at = pos + 24;  // first record's category byte
  const std::size_t sub_at = pos + 25;

  const auto corrupt_and_restore = [&](std::size_t at,
                                       char value) -> std::string {
    std::string bytes = good;
    bytes[at] = value;
    const std::string_view payload(bytes.data() + 20, bytes.size() - 28);
    PatchLeU64(&bytes, bytes.size() - 8, snapshot::Fnv1a64(payload));
    std::istringstream is(bytes);
    auto victim = MakeEngine();
    try {
      victim->RestoreCheckpoint(is);
    } catch (const snapshot::SnapshotError& e) {
      return e.what();
    }
    return "";
  };

  EXPECT_EQ(corrupt_and_restore(cat_at, '\x7F'),
            "snapshot: invalid failure category");
  // Which message fires depends on the first record's category; all that
  // matters is that an out-of-range subcategory byte cannot restore.
  const std::set<std::string> subcategory_errors = {
      "snapshot: invalid hardware subcategory",
      "snapshot: invalid software subcategory",
      "snapshot: invalid environment subcategory",
      "snapshot: subcategory on category without one"};
  const std::string sub_err = corrupt_and_restore(sub_at, '\x7F');
  EXPECT_EQ(subcategory_errors.count(sub_err), 1u) << "got: " << sub_err;
}

TEST(EngineSnapshot, DoubleRestoreIsDeterministic) {
  auto head = MakeEngine();
  const std::vector<FailureRecord>& events = SharedTrace().failures();
  for (std::size_t i = 0; i < events.size() / 4; ++i) head->Ingest(events[i]);
  std::stringstream snap(std::ios::in | std::ios::out | std::ios::binary);
  head->SaveCheckpoint(snap);

  auto a = MakeEngine();
  auto b = MakeEngine();
  std::istringstream is_a(snap.str());
  std::istringstream is_b(snap.str());
  a->RestoreCheckpoint(is_a);
  b->RestoreCheckpoint(is_b);
  std::stringstream out_a(std::ios::in | std::ios::out | std::ios::binary);
  std::stringstream out_b(std::ios::in | std::ios::out | std::ios::binary);
  a->SaveCheckpoint(out_a);
  b->SaveCheckpoint(out_b);
  EXPECT_EQ(out_a.str(), out_b.str());
  EXPECT_EQ(out_a.str(), snap.str());  // save(restore(x)) == x
}

}  // namespace
}  // namespace hpcfail::stream
