#include "core/window_analysis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

// One 4-node system observed for 100 days with fully controlled failures.
Trace ControlledTrace(const std::vector<std::pair<int, TimeSec>>& failures) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sys";
  c.num_nodes = 4;
  c.procs_per_node = 4;
  c.observed = {0, 100 * kDay};
  c.layout = MachineLayout::Grid(4, 2, 2);
  t.AddSystem(c);
  for (const auto& [node, time] : failures) {
    t.AddFailure(MakeFailure(SystemId{0}, NodeId{node}, time, time + kHour,
                             FailureCategory::kHardware));
  }
  t.Finalize();
  return t;
}

TEST(Baseline, ExactWindowArithmetic) {
  // Node 0 fails on days 5 and 6 (same week), node 1 on day 50.
  const Trace t = ControlledTrace({{0, 5 * kDay + kHour},
                                   {0, 6 * kDay},
                                   {1, 50 * kDay}});
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  // Weekly baseline: 14 aligned weeks x 4 nodes = 56 windows; node 0's two
  // failures share week 0, node 1's failure is in week 7: 2 hit windows.
  const stats::Proportion p = a.BaselineProbability(EventFilter::Any(), kWeek);
  EXPECT_EQ(p.trials, 56);
  EXPECT_EQ(p.successes, 2);
  EXPECT_NEAR(p.estimate, 2.0 / 56.0, 1e-12);
}

TEST(Baseline, DailyWindows) {
  const Trace t = ControlledTrace({{2, 10 * kDay + 5 * kHour}});
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const stats::Proportion p = a.BaselineProbability(EventFilter::Any(), kDay);
  EXPECT_EQ(p.trials, 400);  // 100 days x 4 nodes
  EXPECT_EQ(p.successes, 1);
}

TEST(Baseline, NodePredicateRestricts) {
  const Trace t = ControlledTrace({{0, 10 * kDay}, {1, 20 * kDay}});
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const stats::Proportion p = a.BaselineProbability(
      EventFilter::Any(), kDay,
      [](SystemId, NodeId n) { return n == NodeId{0}; });
  EXPECT_EQ(p.trials, 100);
  EXPECT_EQ(p.successes, 1);
}

TEST(Conditional, SameNodeFollowUpDetected) {
  // Node 0 fails at day 10 and again at day 10 + 3h: the first failure's
  // one-day window contains the second; the second's contains nothing.
  const Trace t = ControlledTrace({{0, 10 * kDay}, {0, 10 * kDay + 3 * kHour}});
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const stats::Proportion p = a.ConditionalProbability(
      EventFilter::Any(), EventFilter::Any(), Scope::kSameNode, kDay);
  EXPECT_EQ(p.trials, 2);
  EXPECT_EQ(p.successes, 1);
}

TEST(Conditional, TriggerWindowCensoredAtObservationEnd) {
  // A failure on day 99.9 has no full one-day window left: censored.
  const Trace t = ControlledTrace({{0, 99 * kDay + 23 * kHour}});
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const stats::Proportion p = a.ConditionalProbability(
      EventFilter::Any(), EventFilter::Any(), Scope::kSameNode, kDay);
  EXPECT_EQ(p.trials, 0);
}

TEST(Conditional, RackPeerPairSemantics) {
  // Node 0 fails at day 10; rack mate node 1 fails at day 12 (within week).
  const Trace t = ControlledTrace({{0, 10 * kDay}, {1, 12 * kDay}});
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const stats::Proportion p = a.ConditionalProbability(
      EventFilter::Any(), EventFilter::Any(), Scope::kRackPeers, kWeek);
  // Two triggers; each has 1 rack peer (racks of 2). Node 0's window hits
  // node 1; node 1's window (12d..19d] has nothing.
  EXPECT_EQ(p.trials, 2);
  EXPECT_EQ(p.successes, 1);
}

TEST(Conditional, SystemPeerPairSemantics) {
  const Trace t = ControlledTrace({{0, 10 * kDay}, {3, 11 * kDay}});
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const stats::Proportion p = a.ConditionalProbability(
      EventFilter::Any(), EventFilter::Any(), Scope::kSystemPeers, kWeek);
  // Each trigger has 3 peers; node 0's window hits node 3 once.
  EXPECT_EQ(p.trials, 6);
  EXPECT_EQ(p.successes, 1);
}

TEST(Conditional, TypedTriggerAndTarget) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sys";
  c.num_nodes = 2;
  c.procs_per_node = 4;
  c.observed = {0, 100 * kDay};
  t.AddSystem(c);
  t.AddFailure(MakeEnvironmentFailure(SystemId{0}, NodeId{0}, 10 * kDay,
                                      10 * kDay + kHour,
                                      EnvironmentEvent::kPowerOutage));
  t.AddFailure(MakeHardwareFailure(SystemId{0}, NodeId{0}, 12 * kDay,
                                   12 * kDay + kHour,
                                   HardwareComponent::kNodeBoard));
  t.Finalize();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const stats::Proportion p = a.ConditionalProbability(
      EventFilter::Of(EnvironmentEvent::kPowerOutage),
      EventFilter::Of(FailureCategory::kHardware), Scope::kSameNode, kWeek);
  EXPECT_EQ(p.trials, 1);
  EXPECT_EQ(p.successes, 1);
  // Reverse direction: hardware trigger, outage target within a week: no.
  const stats::Proportion q = a.ConditionalProbability(
      EventFilter::Of(FailureCategory::kHardware),
      EventFilter::Of(EnvironmentEvent::kPowerOutage), Scope::kSameNode,
      kWeek);
  EXPECT_EQ(q.successes, 0);
}

TEST(Compare, BundlesFactorAndSignificance) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 11);
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const ConditionalResult r = a.Compare(EventFilter::Any(), EventFilter::Any(),
                                        Scope::kSameNode, kDay);
  EXPECT_GT(r.num_triggers, 0);
  EXPECT_TRUE(r.conditional.defined());
  EXPECT_TRUE(r.baseline.defined());
  // The generator injects same-node correlation: factor clearly above 1 and
  // statistically significant.
  EXPECT_GT(r.factor, 2.0);
  EXPECT_TRUE(r.test.significant_99);
}

TEST(Compare, WindowMonotonicity) {
  // P(failure in window) grows with window length, conditional and baseline.
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 12);
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const auto day = a.Compare(EventFilter::Any(), EventFilter::Any(),
                             Scope::kSameNode, kDay);
  const auto week = a.Compare(EventFilter::Any(), EventFilter::Any(),
                              Scope::kSameNode, kWeek);
  const auto month = a.Compare(EventFilter::Any(), EventFilter::Any(),
                               Scope::kSameNode, kMonth);
  EXPECT_LE(day.conditional.estimate, week.conditional.estimate + 1e-9);
  EXPECT_LE(week.conditional.estimate, month.conditional.estimate + 1e-9);
  EXPECT_LE(day.baseline.estimate, week.baseline.estimate + 1e-9);
  EXPECT_LE(week.baseline.estimate, month.baseline.estimate + 1e-9);
}

TEST(MaintenanceAfter, DetectsInjectedMaintenanceCascades) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 13);
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const ConditionalResult r = a.MaintenanceAfter(
      EventFilter::Of(EnvironmentEvent::kPowerOutage), kMonth);
  // The tiny scenario has outages; each plants maintenance children.
  if (r.num_triggers > 0 && r.baseline.estimate > 0.0) {
    EXPECT_GT(r.conditional.estimate, r.baseline.estimate);
  }
}

TEST(MaintenanceAfter, HandBuiltCase) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sys";
  c.num_nodes = 2;
  c.procs_per_node = 4;
  c.observed = {0, 100 * kDay};
  t.AddSystem(c);
  t.AddFailure(MakeEnvironmentFailure(SystemId{0}, NodeId{0}, 10 * kDay,
                                      10 * kDay + kHour,
                                      EnvironmentEvent::kPowerOutage));
  t.AddMaintenance({SystemId{0}, NodeId{0}, 15 * kDay, 15 * kDay + 4 * kHour});
  t.Finalize();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const ConditionalResult r = a.MaintenanceAfter(
      EventFilter::Of(EnvironmentEvent::kPowerOutage), kMonth);
  EXPECT_EQ(r.conditional.trials, 1);
  EXPECT_EQ(r.conditional.successes, 1);
  // Baseline: 3 aligned months x 2 nodes = 6 windows, 1 with maintenance.
  EXPECT_EQ(r.baseline.trials, 6);
  EXPECT_EQ(r.baseline.successes, 1);
}

TEST(PairwiseMatrix, DiagonalDominatesAndMatchesDirectQueries) {
  // Realistic (non-saturating) rates: window saturation at TinyScenario's
  // cranked rates compresses the factors and breaks diagonal dominance.
  synth::Scenario sc;
  sc.duration = 3 * kYear;
  auto sys = synth::Group1System("g", 96, 3 * kYear);
  for (double& r : sys.base_rate_per_hour) r *= 3.0;
  sc.systems.push_back(sys);
  const Trace t = synth::GenerateTrace(sc, 14);
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const auto matrix = a.PairwiseProbabilities(Scope::kSameNode, kWeek);
  // Entries agree with the equivalent direct Compare() calls.
  const auto direct =
      a.Compare(EventFilter::Of(FailureCategory::kHardware),
                EventFilter::Of(FailureCategory::kSoftware),
                Scope::kSameNode, kWeek);
  const auto& cell =
      matrix[static_cast<std::size_t>(FailureCategory::kHardware)]
            [static_cast<std::size_t>(FailureCategory::kSoftware)];
  EXPECT_EQ(cell.conditional.successes, direct.conditional.successes);
  EXPECT_EQ(cell.conditional.trials, direct.conditional.trials);
  EXPECT_EQ(cell.baseline.successes, direct.baseline.successes);
  // The paper's III.A.3 claim: a same-type trigger raises the follow-up
  // probability of that type more than a random (any-type) trigger does.
  // (Neither strict row nor column dominance holds — environment is a
  // "super-trigger" that raises everything — matching the paper.)
  for (FailureCategory x :
       {FailureCategory::kHardware, FailureCategory::kSoftware,
        FailureCategory::kNetwork}) {
    const auto xi = static_cast<std::size_t>(x);
    if (matrix[xi][xi].num_triggers < 50) continue;
    const auto after_any = a.Compare(EventFilter::Any(), EventFilter::Of(x),
                                     Scope::kSameNode, kWeek);
    EXPECT_GT(matrix[xi][xi].conditional.estimate,
              after_any.conditional.estimate)
        << ToString(x);
    EXPECT_GT(matrix[xi][xi].factor, 1.0);
    EXPECT_TRUE(matrix[xi][xi].test.significant_99) << ToString(x);
  }
}

TEST(PairwiseMatrix, FastPathMatchesPerCellQueriesInEveryCell) {
  // PairwiseProbabilities(kSameNode) runs a one-pass kernel over the node
  // columns instead of 36 ConditionalProbability calls; every cell must be
  // bit-identical to the per-cell path it replaced.
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 29);
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  for (const TimeSec window : {kDay, kWeek}) {
    const auto matrix = a.PairwiseProbabilities(Scope::kSameNode, window);
    for (std::size_t x = 0; x < kNumFailureCategories; ++x) {
      for (std::size_t y = 0; y < kNumFailureCategories; ++y) {
        const auto direct = a.Compare(
            EventFilter::Of(static_cast<FailureCategory>(x)),
            EventFilter::Of(static_cast<FailureCategory>(y)),
            Scope::kSameNode, window);
        const ConditionalResult& cell = matrix[x][y];
        EXPECT_EQ(cell.conditional.successes, direct.conditional.successes)
            << "cell " << x << "," << y;
        EXPECT_EQ(cell.conditional.trials, direct.conditional.trials);
        EXPECT_EQ(cell.conditional.estimate, direct.conditional.estimate);
        EXPECT_EQ(cell.baseline.successes, direct.baseline.successes);
        EXPECT_EQ(cell.baseline.trials, direct.baseline.trials);
        if (std::isnan(direct.factor)) {
          EXPECT_TRUE(std::isnan(cell.factor));
        } else {
          EXPECT_EQ(cell.factor, direct.factor);
        }
        EXPECT_EQ(cell.test.p_value, direct.test.p_value);
        EXPECT_EQ(cell.num_triggers, direct.num_triggers);
      }
    }
  }
}

TEST(WindowValidation, ZeroAndNegativeWindowsThrow) {
  // window <= 0 used to reach a division by `window` (UB / garbage trials);
  // every public entry point now rejects it up front.
  const Trace t = ControlledTrace({{0, 10 * kDay}});
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const auto any = EventFilter::Any();
  for (TimeSec bad : {TimeSec{0}, TimeSec{-kDay}}) {
    EXPECT_THROW(a.ConditionalProbability(any, any, Scope::kSameNode, bad),
                 std::invalid_argument);
    EXPECT_THROW(a.BaselineProbability(any, bad), std::invalid_argument);
    EXPECT_THROW(a.Compare(any, any, Scope::kSameNode, bad),
                 std::invalid_argument);
    EXPECT_THROW(a.PairwiseProbabilities(Scope::kSameNode, bad),
                 std::invalid_argument);
    EXPECT_THROW(a.MaintenanceAfter(any, bad), std::invalid_argument);
  }
}

TEST(WindowValidation, PositiveWindowStillWorks) {
  const Trace t = ControlledTrace({{0, 10 * kDay}});
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  EXPECT_NO_THROW(a.Compare(EventFilter::Any(), EventFilter::Any(),
                            Scope::kSameNode, kDay));
}

TEST(ScopeNames, AreStable) {
  EXPECT_EQ(ToString(Scope::kSameNode), "same-node");
  EXPECT_EQ(ToString(Scope::kRackPeers), "rack-peers");
  EXPECT_EQ(ToString(Scope::kSystemPeers), "system-peers");
}

}  // namespace
}  // namespace hpcfail::core
