// Wire-protocol parsing and framing: every line command and HTTP GET path
// maps to the right verb/params, malformed input fails with a message (never
// a crash or a silent default), and responses are framed exactly.
#include <string>

#include <gtest/gtest.h>

#include "serve/protocol.h"

namespace hpcfail::serve {
namespace {

Request MustParseLine(const std::string& line) {
  Request request;
  std::string error;
  EXPECT_TRUE(ParseCommandLine(line, &request, &error)) << error;
  return request;
}

Request MustParseHttp(const std::string& line) {
  Request request;
  std::string error;
  EXPECT_TRUE(ParseHttpRequestLine(line, &request, &error)) << error;
  return request;
}

TEST(ParseCommandLine, BareVerbs) {
  EXPECT_EQ(MustParseLine("PING").verb, Verb::kPing);
  EXPECT_EQ(MustParseLine("HEALTH").verb, Verb::kHealth);
  EXPECT_EQ(MustParseLine("METRICS").verb, Verb::kMetrics);
  EXPECT_EQ(MustParseLine("QUIT").verb, Verb::kQuit);
  EXPECT_FALSE(MustParseLine("PING").http);
}

TEST(ParseCommandLine, ReportWithParams) {
  const Request r = MustParseLine("REPORT scale=0.5 years=1 seed=9");
  EXPECT_EQ(r.verb, Verb::kReport);
  EXPECT_DOUBLE_EQ(r.GetDouble("scale", 0), 0.5);
  EXPECT_DOUBLE_EQ(r.GetDouble("years", 0), 1.0);
  EXPECT_EQ(r.GetUint64("seed", 0), 9u);
}

TEST(ParseCommandLine, TableTakesTargetThenParams) {
  const Request r = MustParseLine("TABLE overview scale=0.25");
  EXPECT_EQ(r.verb, Verb::kTable);
  EXPECT_EQ(r.target, "overview");
  EXPECT_DOUBLE_EQ(r.GetDouble("scale", 0), 0.25);
}

TEST(ParseCommandLine, ShardsAndShardedParams) {
  EXPECT_EQ(MustParseLine("SHARDS").verb, Verb::kShards);
  const Request r =
      MustParseLine("SHARDS scale=0.5 window_days=30 block_systems=2");
  EXPECT_EQ(r.verb, Verb::kShards);
  EXPECT_DOUBLE_EQ(r.GetDouble("window_days", 0), 30.0);
  EXPECT_EQ(r.GetUint64("block_systems", 0), 2u);

  // STATS carries shard= as an opaque key; REPORT carries sharded=1.
  const Request stats = MustParseLine("STATS shard=1:2 scale=0.5");
  EXPECT_EQ(stats.verb, Verb::kStats);
  ASSERT_EQ(stats.params.count("shard"), 1u);
  EXPECT_EQ(stats.params.at("shard"), "1:2");
  const Request report = MustParseLine("REPORT sharded=1 scale=0.5");
  EXPECT_EQ(report.verb, Verb::kReport);
  EXPECT_EQ(report.GetUint64("sharded", 0), 1u);
}

TEST(ParseCommandLine, FormatsVerbAndLogParams) {
  EXPECT_EQ(MustParseLine("FORMATS").verb, Verb::kFormats);
  // log= / format= ride through as plain params on query verbs.
  const Request r = MustParseLine("REPORT log=ras format=bgq_ras");
  EXPECT_EQ(r.verb, Verb::kReport);
  EXPECT_EQ(r.params.at("log"), "ras");
  EXPECT_EQ(r.params.at("format"), "bgq_ras");
}

TEST(ParseCommandLine, ToleratesCrlfAndPadding) {
  const Request r = MustParseLine("  REPORT seed=3  \r");
  EXPECT_EQ(r.verb, Verb::kReport);
  EXPECT_EQ(r.GetUint64("seed", 0), 3u);
}

TEST(ParseCommandLine, Rejections) {
  Request r;
  std::string error;
  EXPECT_FALSE(ParseCommandLine("", &r, &error));
  EXPECT_FALSE(ParseCommandLine("NOPE", &r, &error));
  EXPECT_NE(error.find("NOPE"), std::string::npos);
  EXPECT_FALSE(ParseCommandLine("TABLE", &r, &error));
  EXPECT_NE(error.find("table name"), std::string::npos);
  EXPECT_FALSE(ParseCommandLine("REPORT scale", &r, &error));
  EXPECT_NE(error.find("key=value"), std::string::npos);
}

TEST(ParseCommandLine, MalformedNumbersThrowOnAccess) {
  const Request r = MustParseLine("REPORT scale=abc seed=-1");
  EXPECT_THROW(r.GetDouble("scale", 0), std::invalid_argument);
  EXPECT_THROW(r.GetUint64("seed", 0), std::invalid_argument);
  // Absent keys fall back without throwing.
  EXPECT_DOUBLE_EQ(r.GetDouble("years", 2.5), 2.5);
}

TEST(ParseHttpRequestLine, PathMapping) {
  EXPECT_EQ(MustParseHttp("GET /healthz HTTP/1.1").verb, Verb::kHealth);
  EXPECT_EQ(MustParseHttp("GET /metrics HTTP/1.1").verb, Verb::kMetrics);
  EXPECT_EQ(MustParseHttp("GET /stats HTTP/1.1").verb, Verb::kStats);
  EXPECT_EQ(MustParseHttp("GET /report HTTP/1.1").verb, Verb::kReport);
  EXPECT_EQ(MustParseHttp("GET /debug/sleep HTTP/1.1").verb, Verb::kSleep);
  EXPECT_EQ(MustParseHttp("GET /shards HTTP/1.1").verb, Verb::kShards);
  EXPECT_EQ(MustParseHttp("GET /formats HTTP/1.1").verb, Verb::kFormats);
  EXPECT_TRUE(MustParseHttp("GET /healthz HTTP/1.1").http);
  // /formats takes no trailing path segment.
  Request bad;
  std::string error;
  EXPECT_FALSE(
      ParseHttpRequestLine("GET /formats/ras HTTP/1.1", &bad, &error));
  // log=/format= query parameters ride through url-decoded.
  const Request r =
      MustParseHttp("GET /stats?log=messages&format=syslog HTTP/1.1");
  EXPECT_EQ(r.params.at("log"), "messages");
  EXPECT_EQ(r.params.at("format"), "syslog");
}

TEST(ParseHttpRequestLine, ShardsQueryParams) {
  const Request r = MustParseHttp(
      "GET /shards?scale=0.5&window_days=30&block_systems=2 HTTP/1.1");
  EXPECT_EQ(r.verb, Verb::kShards);
  EXPECT_DOUBLE_EQ(r.GetDouble("window_days", 0), 30.0);
  const Request stats = MustParseHttp("GET /stats?shard=0%3A1 HTTP/1.1");
  EXPECT_EQ(stats.verb, Verb::kStats);
  EXPECT_EQ(stats.params.at("shard"), "0:1");  // url-decoded
  // /shards with a trailing path segment is not a route.
  Request bad;
  std::string error;
  EXPECT_FALSE(ParseHttpRequestLine("GET /shards/0 HTTP/1.1", &bad, &error));
}

TEST(ParseHttpRequestLine, TableTargetIsUrlDecoded) {
  const Request r = MustParseHttp("GET /table/per%73ystem HTTP/1.1");
  EXPECT_EQ(r.verb, Verb::kTable);
  EXPECT_EQ(r.target, "persystem");
}

TEST(ParseHttpRequestLine, QueryParams) {
  const Request r =
      MustParseHttp("GET /report?scale=0.5&years=1&seed=9 HTTP/1.1");
  EXPECT_DOUBLE_EQ(r.GetDouble("scale", 0), 0.5);
  EXPECT_EQ(r.GetUint64("seed", 0), 9u);
}

TEST(ParseHttpRequestLine, Rejections) {
  Request r;
  std::string error;
  EXPECT_FALSE(ParseHttpRequestLine("POST /report HTTP/1.1", &r, &error));
  EXPECT_NE(error.find("GET"), std::string::npos);
  EXPECT_FALSE(ParseHttpRequestLine("GET /nope HTTP/1.1", &r, &error));
  EXPECT_NE(error.find("no such path"), std::string::npos);
  EXPECT_FALSE(ParseHttpRequestLine("GET /table/ HTTP/1.1", &r, &error));
  EXPECT_FALSE(ParseHttpRequestLine("GET relative HTTP/1.1", &r, &error));
}

TEST(UrlDecode, Basics) {
  EXPECT_EQ(UrlDecode("a%20b+c"), "a b c");
  EXPECT_EQ(UrlDecode("%2Fpath"), "/path");
  EXPECT_EQ(UrlDecode("%zz"), "%zz");  // malformed escapes pass through
  EXPECT_EQ(UrlDecode("%2"), "%2");
}

TEST(Framing, LineOkCountsBytes) {
  EXPECT_EQ(LineOk("hello\n"), "OK 6\nhello\n");
  EXPECT_EQ(LineOk(""), "OK 0\n");
}

TEST(Framing, LineErrorStaysOneLine) {
  EXPECT_EQ(LineError(503, "overloaded"), "ERR 503 overloaded\n");
  EXPECT_EQ(LineError(400, "two\nlines"), "ERR 400 two lines\n");
}

TEST(Framing, HttpResponseShape) {
  const std::string r = HttpResponse(200, "body\n");
  EXPECT_EQ(r.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(r.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(r.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(r.substr(r.size() - 5), "body\n");
}

TEST(Framing, ErrorResponseFollowsRequestSyntax) {
  Request line_req;
  Request http_req;
  http_req.http = true;
  EXPECT_EQ(ErrorResponse(line_req, 404, "nope"), "ERR 404 nope\n");
  const std::string h = ErrorResponse(http_req, 404, "nope");
  EXPECT_EQ(h.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u);
  EXPECT_EQ(h.substr(h.size() - 5), "nope\n");
}

TEST(StatusTextTest, KnownCodes) {
  EXPECT_EQ(StatusText(kStatusOk), "OK");
  EXPECT_EQ(StatusText(kStatusOverloaded), "Service Unavailable");
  EXPECT_EQ(StatusText(kStatusDeadlineExceeded), "Gateway Timeout");
  EXPECT_EQ(StatusText(599), "Error");
}

}  // namespace
}  // namespace hpcfail::serve
