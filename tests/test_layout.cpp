#include "trace/layout.h"

#include <gtest/gtest.h>

namespace hpcfail {
namespace {

TEST(MachineLayout, EmptyByDefault) {
  MachineLayout layout;
  EXPECT_TRUE(layout.empty());
  EXPECT_EQ(layout.num_racks(), 0);
  EXPECT_FALSE(layout.placement(NodeId{0}).has_value());
}

TEST(MachineLayout, GridFillsRacksInOrder) {
  const MachineLayout layout = MachineLayout::Grid(10, 4, 2);
  EXPECT_EQ(layout.num_racks(), 3);
  EXPECT_EQ(layout.rack_of(NodeId{0}), RackId{0});
  EXPECT_EQ(layout.rack_of(NodeId{3}), RackId{0});
  EXPECT_EQ(layout.rack_of(NodeId{4}), RackId{1});
  EXPECT_EQ(layout.rack_of(NodeId{9}), RackId{2});
}

TEST(MachineLayout, GridAssignsPositionsBottomUp) {
  const MachineLayout layout = MachineLayout::Grid(6, 3, 2);
  EXPECT_EQ(layout.placement(NodeId{0})->position_in_rack, 1);
  EXPECT_EQ(layout.placement(NodeId{1})->position_in_rack, 2);
  EXPECT_EQ(layout.placement(NodeId{2})->position_in_rack, 3);
  EXPECT_EQ(layout.placement(NodeId{3})->position_in_rack, 1);
}

TEST(MachineLayout, GridPositionsStayWithinBounds) {
  // Racks larger than kMaxPositionInRack wrap shelf positions.
  const MachineLayout layout = MachineLayout::Grid(64, 32, 4);
  for (const NodePlacement& p : layout.placements()) {
    EXPECT_GE(p.position_in_rack, 1);
    EXPECT_LE(p.position_in_rack, kMaxPositionInRack);
  }
}

TEST(MachineLayout, GridRoomCoordinatesAreRowMajor) {
  const MachineLayout layout = MachineLayout::Grid(12, 2, 3);
  // 6 racks in rows of 3.
  EXPECT_EQ(layout.placement(NodeId{0})->room_row, 0);
  EXPECT_EQ(layout.placement(NodeId{0})->room_col, 0);
  EXPECT_EQ(layout.placement(NodeId{4})->room_row, 0);  // rack 2
  EXPECT_EQ(layout.placement(NodeId{4})->room_col, 2);
  EXPECT_EQ(layout.placement(NodeId{6})->room_row, 1);  // rack 3
  EXPECT_EQ(layout.placement(NodeId{6})->room_col, 0);
}

TEST(MachineLayout, NodesInRackReturnsMembers) {
  const MachineLayout layout = MachineLayout::Grid(8, 4, 2);
  const std::vector<NodeId> rack0 = layout.nodes_in_rack(RackId{0});
  ASSERT_EQ(rack0.size(), 4u);
  EXPECT_EQ(rack0[0], NodeId{0});
  EXPECT_EQ(rack0[3], NodeId{3});
  EXPECT_TRUE(layout.nodes_in_rack(RackId{5}).empty());
}

TEST(MachineLayout, UnknownNodeHasNoPlacement) {
  const MachineLayout layout = MachineLayout::Grid(4, 2, 2);
  EXPECT_FALSE(layout.placement(NodeId{4}).has_value());
  EXPECT_FALSE(layout.rack_of(NodeId{100}).has_value());
}

TEST(MachineLayout, RejectsDuplicateNodes) {
  std::vector<NodePlacement> placements(2);
  placements[0] = {NodeId{0}, RackId{0}, 1, 0, 0};
  placements[1] = {NodeId{0}, RackId{1}, 2, 0, 1};
  EXPECT_THROW(MachineLayout{placements}, std::invalid_argument);
}

TEST(MachineLayout, RejectsInvalidPositions) {
  std::vector<NodePlacement> placements(1);
  placements[0] = {NodeId{0}, RackId{0}, 0, 0, 0};  // position < 1
  EXPECT_THROW(MachineLayout{placements}, std::invalid_argument);
  placements[0].position_in_rack = kMaxPositionInRack + 1;
  EXPECT_THROW(MachineLayout{placements}, std::invalid_argument);
}

TEST(MachineLayout, RejectsInvalidGridParameters) {
  EXPECT_THROW(MachineLayout::Grid(-1, 4, 2), std::invalid_argument);
  EXPECT_THROW(MachineLayout::Grid(8, 0, 2), std::invalid_argument);
  EXPECT_THROW(MachineLayout::Grid(8, 4, 0), std::invalid_argument);
}

TEST(MachineLayout, ZeroNodesGridIsEmpty) {
  const MachineLayout layout = MachineLayout::Grid(0, 4, 2);
  EXPECT_TRUE(layout.empty());
}

// Property: every node of a grid appears exactly once across all racks.
class GridPropertyTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(GridPropertyTest, EveryNodePlacedExactlyOnce) {
  const auto [num_nodes, nodes_per_rack] = GetParam();
  const MachineLayout layout =
      MachineLayout::Grid(num_nodes, nodes_per_rack, 4);
  EXPECT_EQ(layout.placements().size(), static_cast<std::size_t>(num_nodes));
  std::size_t total = 0;
  for (int r = 0; r < layout.num_racks(); ++r) {
    total += layout.nodes_in_rack(RackId{r}).size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    EXPECT_TRUE(layout.placement(NodeId{n}).has_value()) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridPropertyTest,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{7, 3},
                                           std::tuple{32, 32},
                                           std::tuple{100, 8},
                                           std::tuple{512, 32}));

}  // namespace
}  // namespace hpcfail
