// Integration tests for the observability wiring: run real batch analysis
// and a streaming session end to end, then check that the expected metric
// names exist in the global registry and that the cross-metric invariants
// hold (ingested = accepted + rejected, span totals match stage counts,
// checkpoint/restore accounting). Counted-value assertions are delta-based
// — the global registry accumulates across test cases by design — and are
// skipped in a -DHPCFAIL_OBS=OFF build.
#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/event_index.h"
#include "core/parallel.h"
#include "core/window_analysis.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "stats/bootstrap.h"
#include "stats/rng.h"
#include "stream/engine.h"
#include "synth/generate.h"
#include "synth/scenario.h"

namespace {

using namespace hpcfail;

long long CounterValue(const obs::MetricsSnapshot& snap, const char* name) {
  const obs::MetricsSnapshot::CounterValue* c = snap.FindCounter(name);
  return c != nullptr ? c->value : 0;
}

long long HistogramCount(const obs::MetricsSnapshot& snap, const char* name) {
  const obs::MetricsSnapshot::HistogramValue* h = snap.FindHistogram(name);
  return h != nullptr ? h->count : 0;
}

TEST(ObsIntegration, BatchAnalysisRecordsStagesAndCounters) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();

  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 3);
  const core::EventIndex idx(trace);
  const core::WindowAnalyzer analyzer(idx);
  const core::ConditionalResult r =
      analyzer.Compare(core::EventFilter::Any(), core::EventFilter::Any(),
                       core::Scope::kSameNode, kWeek);
  EXPECT_GE(r.num_triggers, 0);
  stats::Rng rng(5);
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  stats::BootstrapCi(
      sample,
      [](std::span<const double> s) {
        double total = 0;
        for (double v : s) total += v;
        return total / static_cast<double>(s.size());
      },
      rng, 50, 0.95);

  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterValue(after, "hpcfail_index_builds_total") -
                CounterValue(before, "hpcfail_index_builds_total"),
            1);
  EXPECT_EQ(CounterValue(after, "hpcfail_index_records_total") -
                CounterValue(before, "hpcfail_index_records_total"),
            static_cast<long long>(trace.num_failures()));
  // One span per instrumented stage this test drove.
  for (const char* stage :
       {"hpcfail_stage_sort_seconds", "hpcfail_stage_index_build_seconds",
        "hpcfail_stage_window_query_seconds",
        "hpcfail_stage_bootstrap_seconds"}) {
    EXPECT_GE(HistogramCount(after, stage) - HistogramCount(before, stage), 1)
        << stage;
  }
}

TEST(ObsIntegration, ParallelForAccountsEveryItemExactlyOnce) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  std::vector<int> out(10000, 0);
  core::ParallelFor(out.size(), [&](std::size_t i) { out[i] = 1; });
  core::ParallelFor(
      out.size(), [&](std::size_t i) { out[i] += 1; }, /*threads=*/1);
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  // Items are counted once each whether a worker, a stealing caller, or the
  // serial path ran them: two sweeps over 10000 items = exactly 20000.
  EXPECT_EQ(CounterValue(after, "hpcfail_parallel_items_total") -
                CounterValue(before, "hpcfail_parallel_items_total"),
            20000);
  EXPECT_GE(CounterValue(after, "hpcfail_parallel_regions_inline_total") -
                CounterValue(before, "hpcfail_parallel_regions_inline_total"),
            1);  // the threads=1 sweep takes the inline path
  EXPECT_EQ(std::count(out.begin(), out.end(), 2),
            static_cast<long long>(out.size()));
}

TEST(ObsIntegration, StreamSessionCountersAndInvariants) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();

  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 7);
  const std::vector<FailureRecord>& sorted = trace.failures();
  ASSERT_GT(sorted.size(), 10u);

  stream::EngineConfig cfg;
  cfg.stream.reorder_tolerance = kDay;
  cfg.window.trigger = core::EventFilter::Any();
  cfg.window.target = core::EventFilter::Any();
  cfg.window.window = kWeek;
  stream::StreamEngine engine(trace.systems(), cfg);

  for (const FailureRecord& r : sorted) {
    ASSERT_EQ(engine.Ingest(r), stream::IngestStatus::kAccepted);
  }
  // One rejection of each kind.
  FailureRecord bad = sorted.front();
  bad.node = NodeId{1 << 20};
  EXPECT_EQ(engine.Ingest(bad), stream::IngestStatus::kRejectedBadRecord);
  FailureRecord unknown = sorted.front();
  unknown.system = SystemId{424242};
  EXPECT_EQ(engine.Ingest(unknown),
            stream::IngestStatus::kRejectedUnknownSystem);
  FailureRecord late = sorted.front();
  late.start = sorted.front().start - 10 * kYear;
  late.end = late.start + 1;
  EXPECT_EQ(engine.Ingest(late), stream::IngestStatus::kRejectedLate);
  engine.Finish();

  // Checkpoint, then restore into an identically configured engine.
  std::stringstream snap(std::ios::in | std::ios::out | std::ios::binary);
  engine.SaveCheckpoint(snap);
  stream::StreamEngine restored(trace.systems(), cfg);
  restored.RestoreCheckpoint(snap);

  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  const auto delta = [&](const char* name) {
    return CounterValue(after, name) - CounterValue(before, name);
  };
  const long long n = static_cast<long long>(sorted.size());
  // The registry totals the ingest counters across engines, and a restore
  // reconciles the restored engine's contribution with its snapshot (the
  // exports must agree with the engine's counters() afterwards). Here two
  // engines contribute: the live one and the restored copy of it, so every
  // ingest counter appears twice.
  EXPECT_EQ(delta("hpcfail_stream_ingested_total"), 2 * (n + 3));
  EXPECT_EQ(delta("hpcfail_stream_accepted_total"), 2 * n);
  EXPECT_EQ(delta("hpcfail_stream_rejected_bad_record_total"), 2);
  EXPECT_EQ(delta("hpcfail_stream_rejected_unknown_system_total"), 2);
  EXPECT_EQ(delta("hpcfail_stream_rejected_late_total"), 2);
  // The load-bearing invariant: every presented record is accounted for.
  EXPECT_EQ(delta("hpcfail_stream_ingested_total"),
            delta("hpcfail_stream_accepted_total") +
                delta("hpcfail_stream_rejected_bad_record_total") +
                delta("hpcfail_stream_rejected_unknown_system_total") +
                delta("hpcfail_stream_rejected_late_total"));
  // Finished engine: everything accepted was released downstream.
  EXPECT_EQ(delta("hpcfail_stream_released_total"),
            delta("hpcfail_stream_accepted_total"));
  // Checkpoint/restore accounting.
  EXPECT_EQ(delta("hpcfail_stream_checkpoints_total"), 1);
  EXPECT_GT(delta("hpcfail_stream_checkpoint_bytes_total"), 0);
  EXPECT_EQ(delta("hpcfail_stream_restores_total"), 1);
  EXPECT_EQ(delta("hpcfail_stream_restore_failures_total"), 0);
  EXPECT_GE(HistogramCount(after, "hpcfail_stage_checkpoint_seconds") -
                HistogramCount(before, "hpcfail_stage_checkpoint_seconds"),
            1);
  EXPECT_GE(HistogramCount(after, "hpcfail_stage_restore_seconds") -
                HistogramCount(before, "hpcfail_stage_restore_seconds"),
            1);
  // Gauges reflect the drained end state.
  const obs::MetricsSnapshot::GaugeValue* buffered =
      after.FindGauge("hpcfail_stream_reorder_buffered");
  ASSERT_NE(buffered, nullptr);
  EXPECT_EQ(buffered->value, 0.0);

  // Determinism: metrics observe, they never perturb analysis. The restored
  // engine answers identically to the original.
  for (core::Scope scope : {core::Scope::kSameNode, core::Scope::kRackPeers,
                            core::Scope::kSystemPeers}) {
    const core::ConditionalResult a = engine.tracker().Result(scope);
    const core::ConditionalResult b = restored.tracker().Result(scope);
    EXPECT_EQ(a.conditional.successes, b.conditional.successes);
    EXPECT_EQ(a.conditional.trials, b.conditional.trials);
    EXPECT_EQ(a.baseline.successes, b.baseline.successes);
    EXPECT_EQ(a.baseline.trials, b.baseline.trials);
  }
}

TEST(ObsIntegration, RestoreReconcilesStreamCountersWithSnapshot) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  // Regression: LoadFrom used to restore the engine's counters_ without
  // touching the registry, so the Prometheus/JSON exports disagreed with
  // counters() after every restore. The restore must add (or subtract —
  // snapshots can be older than the engine's current state) exactly the
  // counter delta it applies to the engine.
  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 11);
  const std::vector<FailureRecord>& sorted = trace.failures();
  stream::EngineConfig cfg;
  cfg.stream.reorder_tolerance = kDay;
  cfg.window.trigger = core::EventFilter::Any();
  cfg.window.target = core::EventFilter::Any();
  cfg.window.window = kWeek;

  stream::StreamEngine head(trace.systems(), cfg);
  // An empty-engine checkpoint, for the rewind leg below.
  std::stringstream empty_snap(std::ios::in | std::ios::out |
                               std::ios::binary);
  head.SaveCheckpoint(empty_snap);
  for (const FailureRecord& r : sorted) head.Ingest(r);
  FailureRecord bad = sorted.front();
  bad.node = NodeId{1 << 20};
  ASSERT_EQ(head.Ingest(bad), stream::IngestStatus::kRejectedBadRecord);
  head.Finish();
  std::stringstream full_snap(std::ios::in | std::ios::out |
                              std::ios::binary);
  head.SaveCheckpoint(full_snap);

  const auto counter = [](const char* name) {
    return CounterValue(obs::MetricsRegistry::Global().Snapshot(), name);
  };
  const long long n = static_cast<long long>(sorted.size());

  // Restoring into a fresh engine adds the snapshot's counters.
  stream::StreamEngine restored(trace.systems(), cfg);
  const long long accepted_0 = counter("hpcfail_stream_accepted_total");
  const long long released_0 = counter("hpcfail_stream_released_total");
  const long long rejected_0 = counter("hpcfail_stream_rejected_bad_record_total");
  const long long ingested_0 = counter("hpcfail_stream_ingested_total");
  restored.RestoreCheckpoint(full_snap);
  EXPECT_EQ(restored.counters().accepted, n);
  EXPECT_EQ(counter("hpcfail_stream_accepted_total") - accepted_0, n);
  EXPECT_EQ(counter("hpcfail_stream_released_total") - released_0, n);
  EXPECT_EQ(counter("hpcfail_stream_rejected_bad_record_total") - rejected_0,
            1);
  EXPECT_EQ(counter("hpcfail_stream_ingested_total") - ingested_0, n + 1);

  // Rewinding the same engine to the empty checkpoint subtracts it again.
  restored.RestoreCheckpoint(empty_snap);
  EXPECT_EQ(restored.counters().accepted, 0);
  EXPECT_EQ(counter("hpcfail_stream_accepted_total"), accepted_0);
  EXPECT_EQ(counter("hpcfail_stream_released_total"), released_0);
  EXPECT_EQ(counter("hpcfail_stream_rejected_bad_record_total"), rejected_0);
  EXPECT_EQ(counter("hpcfail_stream_ingested_total"), ingested_0);
}

TEST(ObsIntegration, CatchUpMatchesSerialIngestAndCounts) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 9);
  stream::EngineConfig cfg;
  cfg.stream.reorder_tolerance = kDay;
  cfg.window.trigger = core::EventFilter::Any();
  cfg.window.target = core::EventFilter::Any();
  cfg.window.window = kWeek;

  stream::StreamEngine serial(trace.systems(), cfg);
  for (const FailureRecord& r : trace.failures()) serial.Ingest(r);
  serial.Finish();

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  stream::StreamEngine batched(trace.systems(), cfg);
  batched.CatchUp(trace.failures(), /*threads=*/4);
  batched.Finish();
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();

  const long long n = static_cast<long long>(trace.failures().size());
  EXPECT_EQ(CounterValue(after, "hpcfail_stream_accepted_total") -
                CounterValue(before, "hpcfail_stream_accepted_total"),
            n);
  EXPECT_EQ(CounterValue(after, "hpcfail_stream_released_total") -
                CounterValue(before, "hpcfail_stream_released_total"),
            n);
  EXPECT_GE(HistogramCount(after, "hpcfail_stage_stream_catchup_seconds") -
                HistogramCount(before, "hpcfail_stage_stream_catchup_seconds"),
            1);
  // Threaded catch-up with instrumentation on still matches serial ingest.
  for (core::Scope scope : {core::Scope::kSameNode, core::Scope::kRackPeers,
                            core::Scope::kSystemPeers}) {
    const core::ConditionalResult a = serial.tracker().Result(scope);
    const core::ConditionalResult b = batched.tracker().Result(scope);
    EXPECT_EQ(a.conditional.successes, b.conditional.successes);
    EXPECT_EQ(a.conditional.trials, b.conditional.trials);
    EXPECT_EQ(a.num_triggers, b.num_triggers);
  }
}

TEST(ObsIntegration, SpanTracerAggregatesMatchRecordedSpans) {
  obs::SpanTracer tracer;  // private: no registry mirror, no cross-test noise
  {
    obs::ScopedTimer a("alpha", &tracer);
    obs::ScopedTimer b("beta", &tracer);
  }
  {
    obs::ScopedTimer again("alpha", &tracer);
  }
  if (!obs::kEnabled) {
    EXPECT_EQ(tracer.total_recorded(), 0u);  // timers compiled to no-ops
    return;
  }
  EXPECT_EQ(tracer.total_recorded(), 3u);
  const std::vector<obs::SpanAggregate> aggs = tracer.Aggregates();
  ASSERT_EQ(aggs.size(), 2u);  // span stages == distinct stage count
  EXPECT_EQ(aggs[0].stage, "alpha");
  EXPECT_EQ(aggs[0].count, 2);
  EXPECT_EQ(aggs[1].stage, "beta");
  EXPECT_EQ(aggs[1].count, 1);
  long long total_count = 0;
  for (const obs::SpanAggregate& a : aggs) {
    total_count += a.count;
    EXPECT_GE(a.min_seconds, 0.0);
    EXPECT_LE(a.min_seconds, a.max_seconds);
    EXPECT_GE(a.total_seconds, a.max_seconds);
  }
  EXPECT_EQ(static_cast<std::uint64_t>(total_count), tracer.total_recorded());
  EXPECT_EQ(tracer.Recent().size(), 3u);
}

TEST(ObsIntegration, SpanRingIsBoundedButAggregatesAreNot) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  obs::SpanTracer tracer;
  const std::size_t n = obs::SpanTracer::kRingCapacity + 44;
  for (std::size_t i = 0; i < n; ++i) tracer.Record("stage", 0.001);
  EXPECT_EQ(tracer.total_recorded(), n);
  EXPECT_EQ(tracer.Recent().size(), obs::SpanTracer::kRingCapacity);
  // Oldest-first and contiguous: the ring kept the most recent spans.
  const std::vector<obs::SpanRecord> recent = tracer.Recent();
  EXPECT_EQ(recent.front().seq, n - obs::SpanTracer::kRingCapacity);
  EXPECT_EQ(recent.back().seq, n - 1);
  const std::vector<obs::SpanAggregate> aggs = tracer.Aggregates();
  ASSERT_EQ(aggs.size(), 1u);
  EXPECT_EQ(aggs[0].count, static_cast<long long>(n));
}

TEST(ObsIntegration, ConcurrentScrapeDuringActiveIngestIsCoherent) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  // hpcfaild answers GET /metrics from worker threads while other workers
  // (and hpcfail_stream --follow) are mid-ingest. Snapshot/PrometheusText
  // must stay well-formed and monotonic under that race — this is the
  // regression test for the exporter's thread-safety contract, and the
  // TSan job in scripts/ci.sh runs it with the race detector live.
  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 13);
  stream::EngineConfig cfg;
  cfg.stream.reorder_tolerance = kDay;
  cfg.window.trigger = core::EventFilter::Any();
  cfg.window.target = core::EventFilter::Any();
  cfg.window.window = kWeek;

  const long long accepted_before =
      CounterValue(obs::MetricsRegistry::Global().Snapshot(),
                   "hpcfail_stream_accepted_total");

  std::atomic<bool> ingesting{true};
  std::atomic<long long> scrapes{0};
  std::vector<std::thread> scrapers;
  std::vector<std::string> failures_seen;
  std::mutex failures_mu;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&] {
      long long last_accepted = 0;
      // do-while: on a loaded 1-core box the ingest below can finish before
      // this thread first runs; every scraper still scrapes at least once.
      do {
        const obs::MetricsSnapshot snap =
            obs::MetricsRegistry::Global().Snapshot();
        const std::string text = obs::PrometheusText(snap);
        const long long accepted =
            CounterValue(snap, "hpcfail_stream_accepted_total");
        ++scrapes;
        // Well-formed: the exposition ends with a newline and carries the
        // counter we are racing against once registered.
        if (text.empty() || text.back() != '\n' || accepted < last_accepted) {
          std::lock_guard<std::mutex> lock(failures_mu);
          failures_seen.push_back(
              accepted < last_accepted
                  ? "counter went backwards"
                  : "malformed Prometheus exposition");
          return;
        }
        last_accepted = accepted;
      } while (ingesting.load(std::memory_order_acquire));
    });
  }

  stream::StreamEngine engine(trace.systems(), cfg);
  for (const FailureRecord& r : trace.failures()) {
    ASSERT_EQ(engine.Ingest(r), stream::IngestStatus::kAccepted);
  }
  engine.Finish();
  ingesting.store(false, std::memory_order_release);
  for (std::thread& s : scrapers) s.join();

  EXPECT_TRUE(failures_seen.empty())
      << "first failure: " << failures_seen.front();
  EXPECT_GT(scrapes.load(), 0);
  const long long accepted_after =
      CounterValue(obs::MetricsRegistry::Global().Snapshot(),
                   "hpcfail_stream_accepted_total");
  EXPECT_EQ(accepted_after - accepted_before,
            static_cast<long long>(trace.failures().size()));
}

TEST(ObsIntegration, StageHistogramsMirrorIntoRegistry) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  obs::MetricsRegistry reg;
  obs::SpanTracer tracer(&reg);
  tracer.Record("mystage", 0.75);
  tracer.Record("mystage", 3.0);
  const obs::MetricsSnapshot snap = reg.Snapshot();
  const obs::MetricsSnapshot::HistogramValue* h =
      snap.FindHistogram("hpcfail_stage_mystage_seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_DOUBLE_EQ(h->sum, 3.75);
}

}  // namespace
