#include "stats/linalg.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace hpcfail::stats {
namespace {

TEST(Matrix, InitializerListConstruction) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST(Matrix, RejectsRaggedInitializer) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(1, 2), 0.0);
}

TEST(Matrix, Transpose) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Multiplication) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplicationShapeMismatch) {
  const Matrix a{{1, 2}};
  const Matrix b{{1, 2}};
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, AddSubtractScale) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ((a + b)(1, 1), 5.0);
  EXPECT_DOUBLE_EQ((a - b)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(a.ScaledBy(2.0)(1, 0), 6.0);
}

TEST(Dot, BasicAndMismatch) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_THROW(Dot({1}, {1, 2}), std::invalid_argument);
}

TEST(MatVec, Basic) {
  const Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> x = {1, 1};
  const std::vector<double> y = MatVec(a, x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(CholeskySolve, KnownSystem) {
  // SPD matrix [[4,2],[2,3]], b = [6,5] -> x = [1,1].
  const Matrix a{{4, 2}, {2, 3}};
  const std::vector<double> x = CholeskySolve(a, {6, 5});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(CholeskySolve, RejectsNonSpd) {
  const Matrix a{{1, 2}, {2, 1}};  // indefinite
  EXPECT_THROW(CholeskySolve(a, {1, 1}), std::runtime_error);
}

TEST(CholeskySolve, RejectsNonSquare) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_THROW(CholeskySolve(a, {1, 1}), std::invalid_argument);
}

TEST(CholeskyInverse, InverseTimesOriginalIsIdentity) {
  const Matrix a{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}};
  const Matrix inv = CholeskyInverse(a);
  const Matrix prod = a * inv;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(LuSolve, KnownSystem) {
  const Matrix a{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
  const std::vector<double> x = LuSolve(a, {8, -11, -3});
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 3.0, 1e-10);
  EXPECT_NEAR(x[2], -1.0, 1e-10);
}

TEST(LuSolve, HandlesPivoting) {
  // Zero on the diagonal forces a row swap.
  const Matrix a{{0, 1}, {1, 0}};
  const std::vector<double> x = LuSolve(a, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuSolve, RejectsSingular) {
  const Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(LuSolve(a, {1, 2}), std::runtime_error);
}

// Property: CholeskySolve and LuSolve agree on random SPD systems.
class SolveAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SolveAgreementTest, CholeskyMatchesLu) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 1000 + 17);
  // Build SPD A = B^T B + n*I.
  Matrix b(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.Normal();
  }
  Matrix a = b.Transpose() * b;
  for (std::size_t i = 0; i < a.rows(); ++i) a(i, i) += n;
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (double& v : rhs) v = rng.Normal();
  const std::vector<double> x1 = CholeskySolve(a, rhs);
  const std::vector<double> x2 = LuSolve(a, rhs);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x1[static_cast<std::size_t>(i)], x2[static_cast<std::size_t>(i)],
                1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveAgreementTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace hpcfail::stats
