// SessionSet's headline contract: a sharded (system-block x start-window)
// grid whose merged view and per-shard-composed queries are BIT-IDENTICAL
// to the monolithic AnalysisSession over the same trace — plus the
// operational machinery around it (LRU eviction under a memory budget,
// per-shard artifact caching, single-flight builds, concurrent access).
// The ShardPlan partition property (every record in exactly one shard, no
// drops, no duplicates, wherever the window boundaries land) gets its own
// randomized suite at the bottom.
#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/event_index.h"
#include "core/event_store.h"
#include "core/window_analysis.h"
#include "engine/report_render.h"
#include "engine/session.h"
#include "engine/session_set.h"
#include "engine/shard_plan.h"
#include "stats/rng.h"
#include "synth/generate.h"
#include "synth/scenario.h"

namespace hpcfail::engine {
namespace {

using core::EventFilter;
using core::EventIndex;
using core::EventStoreSet;
using core::Scope;
using core::WindowAnalyzer;

// A multi-system synthetic trace, generated once: big enough that shards
// are non-trivial (10 systems, hundreds of failures), small enough that
// every parity check below runs in milliseconds.
std::shared_ptr<const Trace> MultiTrace() {
  static const std::shared_ptr<const Trace> trace =
      std::make_shared<const Trace>(synth::GenerateTrace(
          synth::LanlLikeScenario(0.1, static_cast<TimeSec>(kYear)), 2013));
  return trace;
}

// A hand-built two-system trace whose failures cluster in days 10..12 of a
// 100-day observation: a windowed grid over it deterministically contains
// empty shards.
std::shared_ptr<const Trace> SparseTrace() {
  auto t = std::make_shared<Trace>();
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sys0";
  c.num_nodes = 8;
  c.procs_per_node = 2;
  c.observed = {0, 100 * kDay};
  c.layout = MachineLayout::Grid(8, 4, 2);
  t->AddSystem(c);
  SystemConfig d = c;
  d.id = SystemId{1};
  d.name = "sys1";
  t->AddSystem(d);
  t->AddFailure(MakeHardwareFailure(SystemId{0}, NodeId{1}, 10 * kDay,
                                    10 * kDay + kHour,
                                    HardwareComponent::kCpu));
  t->AddFailure(MakeHardwareFailure(SystemId{0}, NodeId{1},
                                    10 * kDay + 2 * kHour,
                                    10 * kDay + 3 * kHour,
                                    HardwareComponent::kMemory));
  t->AddFailure(MakeSoftwareFailure(SystemId{0}, NodeId{2}, 11 * kDay,
                                    11 * kDay + kHour,
                                    SoftwareComponent::kDst));
  t->AddFailure(MakeFailure(SystemId{1}, NodeId{3}, 12 * kDay,
                            12 * kDay + kHour, FailureCategory::kNetwork));
  t->Finalize();
  return t;
}

SessionSetOptions NoCacheOptions(TimeSec window, int per_block) {
  SessionSetOptions o;
  o.shard.window = window;
  o.shard.systems_per_block = per_block;
  o.cache.enabled = false;
  return o;
}

std::string RenderedReport(const AnalysisView& view) {
  std::ostringstream os;
  RenderReport(view, os);
  return os.str();
}

void ExpectProportionBitIdentical(const stats::Proportion& got,
                                  const stats::Proportion& want) {
  EXPECT_EQ(got.successes, want.successes);
  EXPECT_EQ(got.trials, want.trials);
  // Exact double equality on purpose: the composed counts are integer sums,
  // so the Wilson interval arithmetic sees identical inputs.
  EXPECT_EQ(got.estimate, want.estimate);
  EXPECT_EQ(got.ci_low, want.ci_low);
  EXPECT_EQ(got.ci_high, want.ci_high);
}

// Asserts the merged store set reproduces the monolithic build
// column-for-column for every system of the trace.
void ExpectStoresBitIdentical(const EventStoreSet& merged,
                              const EventStoreSet& mono) {
  ASSERT_EQ(merged.stores.size(), mono.stores.size());
  for (const core::SystemEventStore& want : mono.stores) {
    const core::SystemEventStore* got = merged.Find(want.id);
    ASSERT_NE(got, nullptr) << "system " << want.id.value << " missing";
    EXPECT_EQ(got->starts, want.starts);
    EXPECT_EQ(got->ends, want.ends);
    EXPECT_EQ(got->nodes, want.nodes);
    EXPECT_EQ(got->cats, want.cats);
    EXPECT_EQ(got->subs, want.subs);
  }
}

// Runs the full parity battery for one grid spec over one trace: merged
// columns, merged report bytes, composed same-node conditionals (windows
// both smaller and larger than the shard window, so composition must probe
// across shard boundaries), and merged counts.
void ExpectGridParity(std::shared_ptr<const Trace> trace, TimeSec window,
                      int per_block) {
  SessionSet set(trace, NoCacheOptions(window, per_block));
  const auto merged = set.Merged();

  const EventIndex mono_index(*trace);
  ExpectStoresBitIdentical(merged->stores(),
                           EventStoreSet::Build(*trace, {}));
  EXPECT_EQ(RenderedReport(merged->view()),
            RenderedReport(AnalysisView(*trace, mono_index)));

  const WindowAnalyzer mono(mono_index);
  const std::vector<EventFilter> filters = {
      EventFilter::Any(), EventFilter::Of(FailureCategory::kHardware),
      EventFilter::Of(FailureCategory::kSoftware)};
  for (const TimeSec w : {kDay, kWeek, 30 * kDay}) {
    for (const EventFilter& trigger : filters) {
      ExpectProportionBitIdentical(
          set.SameNodeConditional(trigger, EventFilter::Any(), w),
          mono.ConditionalProbability(trigger, EventFilter::Any(),
                                      Scope::kSameNode, w));
    }
  }
  for (const EventFilter& f : filters) {
    EXPECT_EQ(set.MergedCount(f), mono_index.Count(f));
  }
}

TEST(SessionSetParity, SingleShardDegenerate) {
  SessionSet set(MultiTrace(), NoCacheOptions(0, 0));
  EXPECT_EQ(set.plan().num_shards(), 1u);
  ExpectGridParity(MultiTrace(), 0, 0);
}

TEST(SessionSetParity, BlockPartitionedGrid) {
  ExpectGridParity(MultiTrace(), 0, 3);
}

TEST(SessionSetParity, WindowedGridWithMidWindowBoundaries) {
  // 37 days divides nothing cleanly: every boundary lands mid-stream, and
  // the kWeek/30-day follow-up windows in the battery cross shard edges.
  ExpectGridParity(MultiTrace(), 37 * kDay, 4);
}

TEST(SessionSetParity, FineWindowsForceCrossShardComposition) {
  // Shard window (3 days) smaller than the kWeek and 30-day follow-ups:
  // nearly every trigger's follow-up interval spans later shards.
  ExpectGridParity(MultiTrace(), 3 * kDay, 0);
}

TEST(SessionSetParity, EmptyShardsMergeCleanly) {
  const auto trace = SparseTrace();
  SessionSet set(trace, NoCacheOptions(5 * kDay, 1));
  EXPECT_GT(set.plan().num_shards(), 10u);

  std::size_t empty_shards = 0;
  std::size_t total = 0;
  for (const ShardKey key : set.Keys()) {
    const auto shard = set.GetShard(key);
    if (shard->num_failures == 0) ++empty_shards;
    total += shard->num_failures;
  }
  EXPECT_GT(empty_shards, 10u) << "sparse grid should be mostly empty";
  EXPECT_EQ(total, trace->failures().size());

  ExpectGridParity(trace, 5 * kDay, 1);
}

TEST(SessionSetParity, MergedSubsetDeduplicatesAndCounts) {
  SessionSet set(MultiTrace(), NoCacheOptions(0, 4));
  const std::vector<ShardKey> keys = set.Keys();
  ASSERT_GE(keys.size(), 2u);

  // A subset with duplicates merges each shard once.
  const std::vector<ShardKey> dup = {keys[0], keys[1], keys[0], keys[1]};
  const auto subset = set.Merged(dup);
  const std::size_t want = set.GetShard(keys[0])->num_failures +
                           set.GetShard(keys[1])->num_failures;
  EXPECT_EQ(subset->num_failures(), want);
  EXPECT_EQ(static_cast<std::size_t>(subset->index().Count(
                EventFilter::Any())),
            want);

  // A subset of only-empty shards is valid, not an error.
  SessionSet sparse(SparseTrace(), NoCacheOptions(5 * kDay, 1));
  std::vector<ShardKey> empties;
  for (const ShardKey key : sparse.Keys()) {
    if (sparse.GetShard(key)->num_failures == 0) empties.push_back(key);
    if (empties.size() == 3) break;
  }
  ASSERT_EQ(empties.size(), 3u);
  EXPECT_EQ(sparse.Merged(empties)->num_failures(), 0u);
}

TEST(SessionSet, NegativeSystemIdsYieldEmptyShardNotCrash) {
  const auto trace = MultiTrace();
  SessionSetOptions options = NoCacheOptions(0, 2);
  // One block of real systems, one block holding only rejected ids.
  options.systems = {trace->systems()[0].id, trace->systems()[1].id,
                     SystemId{-1}, SystemId{-7}};
  SessionSet set(trace, std::move(options));
  ASSERT_EQ(set.plan().num_blocks(), 2);

  const auto junk = set.GetShard({1, 0});
  EXPECT_EQ(junk->num_failures, 0u);
  EXPECT_EQ(junk->stores->stores.size(), 0u);
  EXPECT_EQ(junk->systems, (std::vector<SystemId>{SystemId{-1},
                                                  SystemId{-7}}));
  EXPECT_TRUE(set.ShardStatsJson({1, 0}).has_value());

  // The merged view covers exactly the two real systems, bit-identically
  // to a monolithic build restricted to them.
  const std::vector<SystemId> real = {trace->systems()[0].id,
                                      trace->systems()[1].id};
  const auto merged = set.Merged();
  ExpectStoresBitIdentical(merged->stores(),
                           EventStoreSet::Build(*trace, real));
  const EventIndex mono_index(*trace, std::span<const SystemId>(real));
  EXPECT_EQ(set.MergedCount(EventFilter::Any()),
            mono_index.Count(EventFilter::Any()));
  ExpectProportionBitIdentical(
      set.SameNodeConditional(EventFilter::Any(), EventFilter::Any(), kWeek),
      WindowAnalyzer(mono_index)
          .ConditionalProbability(EventFilter::Any(), EventFilter::Any(),
                                  Scope::kSameNode, kWeek));
}

TEST(SessionSet, ValidButAbsentSystemThrows) {
  SessionSetOptions options = NoCacheOptions(0, 0);
  options.systems = {SystemId{999}};
  EXPECT_THROW(SessionSet(MultiTrace(), std::move(options)),
               std::out_of_range);
}

TEST(SessionSet, UnknownKeysAreErrorsNotCrashes) {
  SessionSet set(MultiTrace(), NoCacheOptions(0, 3));
  EXPECT_THROW((void)set.GetShard({99, 0}), std::out_of_range);
  EXPECT_THROW((void)set.GetShard({0, 5}), std::out_of_range);
  EXPECT_THROW((void)set.GetShard({-1, 0}), std::out_of_range);
  EXPECT_FALSE(set.ShardStatsJson({99, 0}).has_value());
  const std::vector<ShardKey> bad = {{0, 0}, {99, 0}};
  EXPECT_THROW((void)set.Merged(bad), std::out_of_range);
}

TEST(SessionSet, SameNodeConditionalRejectsNonPositiveWindow) {
  SessionSet set(MultiTrace(), NoCacheOptions(0, 0));
  EXPECT_THROW((void)set.SameNodeConditional(EventFilter::Any(),
                                             EventFilter::Any(), 0),
               std::invalid_argument);
  EXPECT_THROW((void)set.SameNodeConditional(EventFilter::Any(),
                                             EventFilter::Any(), -kDay),
               std::invalid_argument);
}

TEST(SessionSet, LruEvictionHonorsBudgetAndSurvivingReaders) {
  const auto trace = MultiTrace();
  SessionSet set(trace, NoCacheOptions(0, 2));
  set.BuildAll();
  const SessionSet::Stats full = set.stats();
  EXPECT_EQ(full.resident_shards, set.plan().num_shards());
  EXPECT_EQ(full.evictions, 0u);
  ASSERT_GT(full.resident_bytes, 0u);

  // A reader pins a shard, then the budget collapses to one shard's bytes:
  // eviction must drop the set's references without invalidating the
  // reader's.
  const auto held = set.GetShard({0, 0});
  const std::size_t one_shard = held->resident_bytes;
  set.SetMemoryBudget(std::max<std::size_t>(one_shard, 1));
  const SessionSet::Stats squeezed = set.stats();
  EXPECT_GT(squeezed.evictions, 0u);
  EXPECT_LT(squeezed.resident_shards, full.resident_shards);
  EXPECT_LE(squeezed.resident_bytes,
            std::max<std::size_t>(one_shard, 1));

  // The held shard answers queries after eviction.
  EXPECT_EQ(held->stores->stores.empty(), held->num_failures == 0);
  std::size_t held_total = 0;
  for (const auto& store : held->stores->stores) held_total += store.size();
  EXPECT_EQ(held_total, held->num_failures);

  // Rebuild-after-eviction is counted and bit-identical.
  const EventIndex mono_index(*trace);
  const WindowAnalyzer mono(mono_index);
  ExpectProportionBitIdentical(
      set.SameNodeConditional(EventFilter::Any(), EventFilter::Any(), kWeek),
      mono.ConditionalProbability(EventFilter::Any(), EventFilter::Any(),
                                  Scope::kSameNode, kWeek));
  EXPECT_GT(set.stats().rebuilds, 0u);

  // Lifting the budget lets the grid become fully resident again.
  set.SetMemoryBudget(0);
  set.BuildAll();
  EXPECT_EQ(set.stats().resident_shards, set.plan().num_shards());
}

TEST(SessionSet, StatsJsonCarriesGridAndShardState) {
  SessionSet set(MultiTrace(), NoCacheOptions(0, 3));
  (void)set.GetShard({0, 0});
  const std::string json = set.StatsJson();
  for (const char* key :
       {"\"parent\":", "\"window_seconds\":", "\"systems_per_block\":",
        "\"num_blocks\":", "\"num_windows\":", "\"num_shards\":",
        "\"memory_budget_bytes\":", "\"builds\":", "\"rebuilds\":",
        "\"coalesced\":", "\"shard_cache_hits\":", "\"evictions\":",
        "\"merges\":", "\"resident_shards\":", "\"resident_bytes\":",
        "\"shards\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing: "
                                                 << json;
  }
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be a single line";

  const auto one = set.ShardStatsJson({0, 0});
  ASSERT_TRUE(one.has_value());
  EXPECT_NE(one->find("\"key\":\"0:0\""), std::string::npos) << *one;
  EXPECT_NE(one->find("\"num_failures\":"), std::string::npos) << *one;
}

// --- concurrency (run under TSan via scripts/ci.sh) ---------------------

TEST(SessionSetConcurrency, SameShardBuildsOnceAcrossThreads) {
  SessionSet set(MultiTrace(), NoCacheOptions(0, 0));
  constexpr int kThreads = 8;
  std::barrier start(kThreads);
  std::vector<std::shared_ptr<const SessionSet::Shard>> got(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      start.arrive_and_wait();
      got[static_cast<std::size_t>(i)] = set.GetShard({0, 0});
    });
  }
  for (auto& t : threads) t.join();

  // Single-flight: one build ran; every thread shares the same shard.
  EXPECT_EQ(set.stats().builds, 1u);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].get(), got[0].get());
  }
}

TEST(SessionSetConcurrency, EvictionRacesReadersSafely) {
  const auto trace = MultiTrace();
  SessionSet set(trace, NoCacheOptions(0, 1));
  const std::vector<ShardKey> keys = set.Keys();
  const long long mono_count = EventIndex(*trace).Count(EventFilter::Any());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = static_cast<std::size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto shard = set.GetShard(keys[i % keys.size()]);
        // Query the pinned shard: eviction must never invalidate it.
        std::size_t n = 0;
        for (const auto& store : shard->stores->stores) n += store.size();
        ASSERT_EQ(n, shard->num_failures);
        ++i;
      }
    });
  }
  // The evictor starves and restores the budget while readers run.
  for (int round = 0; round < 50; ++round) {
    set.SetMemoryBudget(1);
    set.SetMemoryBudget(0);
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_GT(set.stats().evictions, 0u);
  EXPECT_EQ(set.MergedCount(EventFilter::Any()), mono_count);
}

TEST(SessionSetConcurrency, MergedViewsAndQueriesRaceSafely) {
  const auto trace = MultiTrace();
  SessionSet set(trace, NoCacheOptions(0, 3));
  const EventIndex mono_index(*trace);
  const long long mono_count = mono_index.Count(EventFilter::Any());
  const stats::Proportion mono_p =
      WindowAnalyzer(mono_index)
          .ConditionalProbability(EventFilter::Any(), EventFilter::Any(),
                                  Scope::kSameNode, kWeek);

  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&, i] {
      for (int round = 0; round < 5; ++round) {
        switch ((i + round) % 4) {
          case 0: {
            const auto merged = set.Merged();
            ASSERT_EQ(merged->num_failures(), trace->failures().size());
            break;
          }
          case 1: {
            const stats::Proportion p = set.SameNodeConditional(
                EventFilter::Any(), EventFilter::Any(), kWeek);
            ASSERT_EQ(p.successes, mono_p.successes);
            ASSERT_EQ(p.trials, mono_p.trials);
            break;
          }
          case 2:
            ASSERT_EQ(set.MergedCount(EventFilter::Any()), mono_count);
            break;
          default:
            ASSERT_FALSE(set.StatsJson().empty());
            set.DropMerged();
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(set.stats().merges, 0u);
}

// --- per-shard artifact cache -------------------------------------------

class SessionSetCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/hpcfail_session_set_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  SessionSetOptions CachedOptions() const {
    SessionSetOptions o;
    o.shard.window = 0;
    o.shard.systems_per_block = 1;
    o.cache.dir = dir_ + "/cache";
    return o;
  }

  std::string dir_;
};

TEST_F(SessionSetCacheTest, ShardsHitAcrossInstances) {
  const synth::Scenario scenario = synth::TinyScenario(90 * kDay);

  SessionSet cold = SessionSet::FromScenario(scenario, 7, CachedOptions());
  cold.BuildAll();
  EXPECT_GT(cold.stats().cache_stores, 0u);
  EXPECT_EQ(cold.stats().cache_hits, 0u);
  const std::string cold_report = RenderedReport(cold.Merged()->view());

  SessionSet warm = SessionSet::FromScenario(scenario, 7, CachedOptions());
  const auto shard = warm.GetShard({0, 0});
  EXPECT_TRUE(shard->from_cache);
  EXPECT_GT(warm.stats().cache_hits, 0u);
  // Warm timing path, identical bytes: the cache's core guarantee.
  EXPECT_EQ(RenderedReport(warm.Merged()->view()), cold_report);

  // A different grid spec must NOT hit the same entries: the shard
  // fingerprint mixes the spec in.
  SessionSetOptions other = CachedOptions();
  other.shard.window = 10 * kDay;
  SessionSet regrid = SessionSet::FromScenario(scenario, 7, std::move(other));
  (void)regrid.GetShard({0, 0});
  EXPECT_EQ(regrid.stats().cache_hits, 0u);
}

// --- ShardPlan partition property (randomized) --------------------------

TEST(ShardPlanFuzz, EveryRecordLandsInExactlyOneShard) {
  stats::Rng rng(20130618);
  for (int iter = 0; iter < 200; ++iter) {
    // A random little fleet with random observation windows.
    const int num_systems = 1 + static_cast<int>(rng.Index(5));
    Trace trace;
    for (int s = 0; s < num_systems; ++s) {
      SystemConfig c;
      c.id = SystemId{s};
      c.name = "sys" + std::to_string(s);
      c.num_nodes = 4;
      c.procs_per_node = 1;
      const TimeSec begin = rng.Int(0, 50 * kDay);
      c.observed = {begin, begin + rng.Int(kDay, 300 * kDay)};
      trace.AddSystem(c);
    }
    trace.Finalize();

    ShardSpec spec;
    spec.window = (rng.Index(4) == 0) ? 0 : rng.Int(kHour, 60 * kDay);
    spec.systems_per_block =
        static_cast<int>(rng.Index(static_cast<std::size_t>(num_systems) + 2));
    const ShardPlan plan(trace, spec);

    // Window ranges tile the whole time axis with sentinel edges.
    ASSERT_GE(plan.num_windows(), 1);
    EXPECT_EQ(plan.StartRange(0).begin,
              std::numeric_limits<TimeSec>::min());
    EXPECT_EQ(plan.StartRange(plan.num_windows() - 1).end,
              std::numeric_limits<TimeSec>::max());
    for (int w = 0; w + 1 < plan.num_windows(); ++w) {
      EXPECT_EQ(plan.StartRange(w).end, plan.StartRange(w + 1).begin);
      EXPECT_LT(plan.StartRange(w).begin, plan.StartRange(w).end);
    }

    // Random records: mostly planned systems, some junk ids, with starts
    // spread across (and beyond) the observation windows.
    std::vector<std::size_t> per_shard(plan.num_shards(), 0);
    std::size_t planned_records = 0;
    const int num_records = 64;
    for (int r = 0; r < num_records; ++r) {
      FailureRecord f;
      const bool junk = rng.Index(8) == 0;
      f.system = junk ? SystemId{-1 - static_cast<int>(rng.Index(3))}
                      : SystemId{static_cast<int>(rng.Index(
                            static_cast<std::size_t>(num_systems)))};
      f.node = NodeId{static_cast<int>(rng.Index(4))};
      f.start = rng.Int(-30 * kDay, 400 * kDay);  // may fall outside observed
      f.end = f.start + kHour;

      const std::optional<ShardKey> key = plan.KeyFor(f);
      if (!f.system.valid()) {
        EXPECT_FALSE(key.has_value()) << "junk system must not map";
        continue;
      }
      ++planned_records;
      ASSERT_TRUE(key.has_value());
      ASSERT_TRUE(plan.Contains(*key));
      // The key is self-consistent: the record's start is inside the
      // window's range and its system inside the block.
      const TimeInterval range = plan.StartRange(key->window);
      EXPECT_GE(f.start, range.begin);
      EXPECT_LT(f.start, range.end);
      EXPECT_EQ(plan.WindowOf(f.start), key->window);
      EXPECT_EQ(plan.BlockOf(f.system), key->block);
      const std::span<const SystemId> block =
          plan.SystemsOfBlock(key->block);
      EXPECT_NE(std::find(block.begin(), block.end(), f.system),
                block.end());
      ++per_shard[plan.IndexOf(*key)];
    }

    // No drops, no duplicates: per-shard counts sum to the planned total.
    std::size_t total = 0;
    for (const std::size_t n : per_shard) total += n;
    EXPECT_EQ(total, planned_records)
        << "window=" << spec.window
        << " per_block=" << spec.systems_per_block;
  }
}

// The same property at the SessionSet layer with real stores: for random
// grid specs over a real trace, the shards' failure counts always sum to
// the trace's, and the merged count matches the monolithic index.
TEST(ShardPlanFuzz, RandomGridsPartitionARealTrace) {
  const auto trace = MultiTrace();
  const long long mono_count =
      EventIndex(*trace).Count(EventFilter::Any());
  stats::Rng rng(424242);
  for (int iter = 0; iter < 8; ++iter) {
    SessionSetOptions options;
    options.cache.enabled = false;
    options.shard.window = (iter % 2 == 0) ? 0 : rng.Int(10 * kDay, kYear);
    options.shard.systems_per_block = static_cast<int>(rng.Index(6));
    SessionSet set(trace, std::move(options));

    std::size_t total = 0;
    for (const ShardKey key : set.Keys()) {
      total += set.GetShard(key)->num_failures;
    }
    EXPECT_EQ(total, trace->failures().size());
    EXPECT_EQ(set.MergedCount(EventFilter::Any()), mono_count);
  }
}

}  // namespace
}  // namespace hpcfail::engine
