#include "core/checkpoint_sim.h"

#include <gtest/gtest.h>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

Trace TraceWithFailures(const std::vector<std::pair<int, TimeSec>>& fails) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sys";
  c.num_nodes = 8;
  c.procs_per_node = 4;
  c.observed = {0, 100 * kDay};
  t.AddSystem(c);
  for (const auto& [node, when] : fails) {
    t.AddFailure(MakeFailure(SystemId{0}, NodeId{node}, when, when + kHour,
                             FailureCategory::kHardware));
  }
  t.Finalize();
  return t;
}

CheckpointSimConfig BasicConfig() {
  CheckpointSimConfig cfg;
  cfg.nodes = {NodeId{0}, NodeId{1}};
  cfg.checkpoint_cost = 6 * kMinute;
  cfg.restart_cost = 10 * kMinute;
  cfg.window = {0, 10 * kDay};
  return cfg;
}

TEST(CheckpointSim, NoFailuresOnlyCheckpointOverhead) {
  const Trace t = TraceWithFailures({});
  const EventIndex idx(t);
  const CheckpointSimConfig cfg = BasicConfig();
  const CheckpointSimResult r =
      SimulateCheckpointing(idx, SystemId{0}, cfg, StaticPolicy(kHour));
  EXPECT_EQ(r.failures, 0);
  EXPECT_EQ(r.lost_work, 0);
  EXPECT_GT(r.checkpoints, 0);
  // Accounting closes: work + checkpoints == window.
  EXPECT_EQ(r.useful_work + r.checkpoint_time, cfg.window.duration());
  // Overhead ~ cost/(interval+cost) = 6/66.
  EXPECT_NEAR(r.overhead, 6.0 / 66.0, 0.01);
}

TEST(CheckpointSim, FailureLosesWorkSinceCheckpoint) {
  // One failure at day 1 + 30min; hourly checkpoints mean <= 1h+cost lost.
  const Trace t = TraceWithFailures({{0, kDay + 30 * kMinute}});
  const EventIndex idx(t);
  const CheckpointSimConfig cfg = BasicConfig();
  const CheckpointSimResult r =
      SimulateCheckpointing(idx, SystemId{0}, cfg, StaticPolicy(kHour));
  EXPECT_EQ(r.failures, 1);
  EXPECT_GT(r.lost_work, 0);
  EXPECT_LE(r.lost_work, kHour + cfg.checkpoint_cost);
  EXPECT_EQ(r.restart_time, cfg.restart_cost);
  EXPECT_EQ(r.useful_work + r.checkpoint_time + r.lost_work + r.restart_time,
            cfg.window.duration());
}

TEST(CheckpointSim, FailuresOfOtherNodesDontMatter) {
  const Trace t = TraceWithFailures({{5, kDay}, {6, 2 * kDay}});
  const EventIndex idx(t);
  const CheckpointSimResult r = SimulateCheckpointing(
      idx, SystemId{0}, BasicConfig(), StaticPolicy(kHour));
  EXPECT_EQ(r.failures, 0);
}

TEST(CheckpointSim, BackToBackFailuresAbsorbedByRestart) {
  // Two failures 2 minutes apart: the second strikes during the restart and
  // is absorbed (no double restart).
  const Trace t =
      TraceWithFailures({{0, kDay}, {1, kDay + 2 * kMinute}});
  const EventIndex idx(t);
  const CheckpointSimResult r = SimulateCheckpointing(
      idx, SystemId{0}, BasicConfig(), StaticPolicy(kHour));
  EXPECT_EQ(r.failures, 1);
}

TEST(CheckpointSim, ShorterIntervalLosesLessWorkUnderFire) {
  // Cluster of failures: a tighter interval preserves more work.
  std::vector<std::pair<int, TimeSec>> storm;
  for (int i = 0; i < 20; ++i) {
    storm.push_back({0, kDay + i * 5 * kHour});
  }
  const Trace t = TraceWithFailures(storm);
  const EventIndex idx(t);
  const CheckpointSimConfig cfg = BasicConfig();
  const CheckpointSimResult tight =
      SimulateCheckpointing(idx, SystemId{0}, cfg, StaticPolicy(kHour));
  const CheckpointSimResult loose =
      SimulateCheckpointing(idx, SystemId{0}, cfg, StaticPolicy(8 * kHour));
  EXPECT_LT(tight.lost_work, loose.lost_work);
}

TEST(CheckpointSim, AdaptivePolicySwitchesInterval) {
  const auto policy = AdaptivePolicy(4 * kHour, kHour, kDay,
                                     {FailureCategory::kEnvironment});
  EXPECT_EQ(policy(2 * kDay, FailureCategory::kEnvironment), 4 * kHour);
  EXPECT_EQ(policy(kHour, FailureCategory::kEnvironment), kHour);
  EXPECT_EQ(policy(kHour, FailureCategory::kHardware), 4 * kHour);
  EXPECT_EQ(policy(kHour, std::nullopt), 4 * kHour);
}

TEST(CheckpointSim, AdaptiveBeatsStaticOnBurstyTrace) {
  // On a correlated (Hawkes) trace, tightening the interval for a day after
  // each failure preserves work without paying the tight interval's
  // checkpoint cost all the time.
  synth::Scenario sc;
  sc.duration = kYear;
  auto sys = synth::Group1System("g", 16, kYear);
  for (double& r : sys.base_rate_per_hour) r *= 60.0;
  sc.systems.push_back(sys);
  const Trace t = synth::GenerateTrace(sc, 5);
  const EventIndex idx(t);
  CheckpointSimConfig cfg;
  cfg.nodes = {NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}};
  cfg.window = {0, kYear};
  // Baselines chosen near the Young optimum for the steady-state rate.
  const CheckpointSimResult fixed =
      SimulateCheckpointing(idx, SystemId{0}, cfg, StaticPolicy(8 * kHour));
  const CheckpointSimResult adaptive = SimulateCheckpointing(
      idx, SystemId{0}, cfg, AdaptivePolicy(8 * kHour, 2 * kHour, 2 * kDay));
  EXPECT_LT(adaptive.lost_work, fixed.lost_work);
  EXPECT_LE(adaptive.overhead, fixed.overhead + 0.01);
}

TEST(CheckpointSim, AccountingAlwaysCloses) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 6);
  const EventIndex idx(t);
  CheckpointSimConfig cfg;
  cfg.nodes = {NodeId{0}, NodeId{5}, NodeId{9}};
  cfg.window = {10 * kDay, 170 * kDay};
  for (TimeSec interval : {kHour, 4 * kHour, kDay}) {
    const CheckpointSimResult r = SimulateCheckpointing(
        idx, t.systems()[0].id, cfg, StaticPolicy(interval));
    EXPECT_EQ(
        r.useful_work + r.checkpoint_time + r.lost_work + r.restart_time,
        cfg.window.duration())
        << "interval " << interval;
    EXPECT_GE(r.overhead, 0.0);
    EXPECT_LE(r.overhead, 1.0);
  }
}

TEST(CheckpointSim, RejectsBadConfig) {
  const Trace t = TraceWithFailures({});
  const EventIndex idx(t);
  CheckpointSimConfig cfg = BasicConfig();
  cfg.nodes.clear();
  EXPECT_THROW(
      SimulateCheckpointing(idx, SystemId{0}, cfg, StaticPolicy(kHour)),
      std::invalid_argument);
  cfg = BasicConfig();
  cfg.window = {10, 10};
  EXPECT_THROW(
      SimulateCheckpointing(idx, SystemId{0}, cfg, StaticPolicy(kHour)),
      std::invalid_argument);
  EXPECT_THROW(StaticPolicy(0), std::invalid_argument);
  EXPECT_THROW(AdaptivePolicy(0, kHour, kDay), std::invalid_argument);
}

}  // namespace
}  // namespace hpcfail::core
