// Failure-injection and degenerate-input tests across the analysis layer:
// empty traces, systems without events, filters that match nothing, and
// minimal populations. Every analysis must either return a well-defined
// "nothing to see" result or throw a precise std::invalid_argument — never
// crash or emit NaN silently.
#include <gtest/gtest.h>

#include <cmath>

#include "core/downtime.h"
#include "core/node_skew.h"
#include "core/power_analysis.h"
#include "core/survival_analysis.h"
#include "core/window_analysis.h"
#include "synth/generate.h"

namespace hpcfail::core {
namespace {

Trace EmptyTrace(int num_nodes = 8) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "empty";
  c.num_nodes = num_nodes;
  c.procs_per_node = 4;
  c.observed = {0, kYear};
  c.layout = MachineLayout::Grid(num_nodes, 4, 2);
  t.AddSystem(c);
  t.Finalize();
  return t;
}

TEST(EdgeCases, EmptyTraceWindowAnalysis) {
  const Trace t = EmptyTrace();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const auto cond = a.ConditionalProbability(
      EventFilter::Any(), EventFilter::Any(), Scope::kSameNode, kWeek);
  EXPECT_EQ(cond.trials, 0);
  EXPECT_FALSE(cond.defined());
  const auto base = a.BaselineProbability(EventFilter::Any(), kWeek);
  EXPECT_GT(base.trials, 0);  // windows exist even without events
  EXPECT_EQ(base.successes, 0);
  const ConditionalResult r = a.Compare(EventFilter::Any(),
                                        EventFilter::Any(),
                                        Scope::kSameNode, kWeek);
  EXPECT_TRUE(std::isnan(r.factor));
  EXPECT_FALSE(r.test.significant_95);
}

TEST(EdgeCases, EmptyTraceSkewAndBreakdown) {
  const Trace t = EmptyTrace();
  const EventIndex idx(t);
  const NodeSkewSummary s = AnalyzeNodeSkew(idx, SystemId{0});
  EXPECT_EQ(s.max_failures, 0);
  EXPECT_FALSE(s.equal_rates_test.significant_99);
  const BreakdownComparison b = CompareBreakdown(idx, SystemId{0}, NodeId{0});
  for (double p : b.node_percent) EXPECT_EQ(p, 0.0);
  for (double p : b.rest_percent) EXPECT_EQ(p, 0.0);
}

TEST(EdgeCases, EmptyTraceDowntimeAndSurvival) {
  const Trace t = EmptyTrace();
  const EventIndex idx(t);
  EXPECT_DOUBLE_EQ(AnalyzeDowntime(idx, SystemId{0}).availability, 1.0);
  const SurvivalAnalysis sa = AnalyzeTimeToNextFailure(idx);
  for (const TriggerSurvival& ts : sa.by_trigger) {
    EXPECT_TRUE(ts.observations.empty());
    EXPECT_EQ(ts.failure_within_week, 0.0);
  }
}

TEST(EdgeCases, EmptyTracePowerAnalyses) {
  const Trace t = EmptyTrace();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const EnvironmentBreakdown env = BreakdownEnvironment(idx);
  EXPECT_EQ(env.total, 0);
  for (const PowerImpactRow& r :
       PowerImpactOn(a, EventFilter::Of(FailureCategory::kHardware))) {
    EXPECT_EQ(r.month.num_triggers, 0);
  }
  EXPECT_TRUE(PowerSpaceTime(idx, SystemId{0}).empty());
}

TEST(EdgeCases, FilterMatchingNothing) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(30 * kDay), 1);
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  // Human failures are rare in a 30-day tiny trace; MSC boards rarer. Use a
  // filter guaranteed empty: hardware AND a software subcomponent can never
  // match.
  EventFilter impossible;
  impossible.category = FailureCategory::kHardware;
  impossible.software = SoftwareComponent::kDst;
  EXPECT_EQ(idx.Count(impossible), 0);
  const auto cond = a.ConditionalProbability(impossible, EventFilter::Any(),
                                             Scope::kSameNode, kWeek);
  EXPECT_EQ(cond.trials, 0);
  const auto base = a.BaselineProbability(impossible, kWeek);
  EXPECT_EQ(base.successes, 0);
}

TEST(EdgeCases, SingleNodeSystemScopes) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "solo";
  c.num_nodes = 1;
  c.procs_per_node = 4;
  c.observed = {0, kYear};
  c.layout = MachineLayout::Grid(1, 1, 1);
  t.AddSystem(c);
  t.AddFailure(MakeFailure(SystemId{0}, NodeId{0}, 10 * kDay,
                           10 * kDay + kHour, FailureCategory::kHardware));
  t.Finalize();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  // No peers exist: zero trials at peer scopes, no crash.
  const auto rack = a.ConditionalProbability(
      EventFilter::Any(), EventFilter::Any(), Scope::kRackPeers, kWeek);
  EXPECT_EQ(rack.trials, 0);
  const auto sys = a.ConditionalProbability(
      EventFilter::Any(), EventFilter::Any(), Scope::kSystemPeers, kWeek);
  EXPECT_EQ(sys.trials, 0);
}

TEST(EdgeCases, WindowLongerThanObservationCensorsEverything) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(30 * kDay), 2);
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const auto cond = a.ConditionalProbability(
      EventFilter::Any(), EventFilter::Any(), Scope::kSameNode, 40 * kDay);
  EXPECT_EQ(cond.trials, 0);
  const auto base = a.BaselineProbability(EventFilter::Any(), 40 * kDay);
  EXPECT_EQ(base.trials, 0);
}

TEST(EdgeCases, MaintenanceAfterWithNoMaintenanceStream) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "nomaint";
  c.num_nodes = 4;
  c.procs_per_node = 4;
  c.observed = {0, kYear};
  t.AddSystem(c);
  t.AddFailure(MakeEnvironmentFailure(SystemId{0}, NodeId{0}, 10 * kDay,
                                      10 * kDay + kHour,
                                      EnvironmentEvent::kPowerOutage));
  t.Finalize();
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const ConditionalResult r = a.MaintenanceAfter(
      EventFilter::Of(EnvironmentEvent::kPowerOutage), kMonth);
  EXPECT_EQ(r.conditional.successes, 0);
  EXPECT_EQ(r.baseline.successes, 0);
  EXPECT_TRUE(std::isnan(r.factor));
}

TEST(EdgeCases, ProneNodeOnSystemWithSingleFailure) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "one";
  c.num_nodes = 8;
  c.procs_per_node = 4;
  c.observed = {0, kYear};
  t.AddSystem(c);
  t.AddFailure(MakeFailure(SystemId{0}, NodeId{3}, kDay, kDay + kHour,
                           FailureCategory::kSoftware));
  t.Finalize();
  const EventIndex idx(t);
  const ProneNodeProbability p = CompareProneNode(
      idx, SystemId{0}, NodeId{3},
      EventFilter::Of(FailureCategory::kSoftware), kWeek);
  EXPECT_GT(p.prone.estimate, 0.0);
  EXPECT_EQ(p.rest.successes, 0);
}

TEST(EdgeCases, EventIndexOnUnknownSystemThrows) {
  const Trace t = EmptyTrace();
  const EventIndex idx(t);
  EXPECT_THROW(idx.failures_of(SystemId{42}), std::out_of_range);
  EXPECT_THROW(idx.NodeCounts(SystemId{42}, EventFilter::Any()),
               std::out_of_range);
}

TEST(EdgeCases, ZeroDurationScenarioRejected) {
  synth::Scenario sc = synth::TinyScenario();
  sc.systems[0].duration = 0;
  EXPECT_THROW(synth::GenerateTrace(sc, 1), std::invalid_argument);
}

}  // namespace
}  // namespace hpcfail::core
