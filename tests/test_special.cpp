#include "stats/special.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hpcfail::stats {
namespace {

TEST(LogGamma, KnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(LogGamma, RejectsNonPositive) {
  EXPECT_THROW(LogGamma(0.0), std::domain_error);
  EXPECT_THROW(LogGamma(-1.0), std::domain_error);
}

TEST(Digamma, KnownValues) {
  constexpr double kEulerMascheroni = 0.5772156649015329;
  EXPECT_NEAR(Digamma(1.0), -kEulerMascheroni, 1e-9);
  EXPECT_NEAR(Digamma(2.0), 1.0 - kEulerMascheroni, 1e-9);
  EXPECT_NEAR(Digamma(0.5), -kEulerMascheroni - 2.0 * std::log(2.0), 1e-9);
  // Recurrence: psi(x+1) = psi(x) + 1/x.
  EXPECT_NEAR(Digamma(3.7), Digamma(2.7) + 1.0 / 2.7, 1e-9);
}

TEST(Trigamma, KnownValues) {
  EXPECT_NEAR(Trigamma(1.0), M_PI * M_PI / 6.0, 1e-9);
  EXPECT_NEAR(Trigamma(0.5), M_PI * M_PI / 2.0, 1e-9);
  // Recurrence: psi'(x+1) = psi'(x) - 1/x^2.
  EXPECT_NEAR(Trigamma(5.2), Trigamma(4.2) - 1.0 / (4.2 * 4.2), 1e-9);
}

TEST(RegularizedGamma, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 700.0), 1.0, 1e-12);
}

TEST(RegularizedGamma, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12) << x;
  }
}

TEST(RegularizedGamma, PPlusQIsOne) {
  for (double a : {0.5, 1.0, 3.0, 10.0, 100.0}) {
    for (double x : {0.1, 1.0, 5.0, 50.0, 200.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGamma, RejectsBadArguments) {
  EXPECT_THROW(RegularizedGammaP(0.0, 1.0), std::domain_error);
  EXPECT_THROW(RegularizedGammaP(1.0, -1.0), std::domain_error);
}

TEST(RegularizedBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedBeta(0.0, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedBeta(1.0, 2.0, 3.0), 1.0);
}

TEST(RegularizedBeta, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedBeta(x, 1.0, 1.0), x, 1e-12) << x;
  }
}

TEST(RegularizedBeta, SymmetryRelation) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.2, 0.5, 0.7}) {
    EXPECT_NEAR(RegularizedBeta(x, 2.5, 4.0),
                1.0 - RegularizedBeta(1.0 - x, 4.0, 2.5), 1e-12);
  }
}

TEST(RegularizedBeta, KnownValue) {
  // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.25}(2, 2) = 3x^2 - 2x^3 at 0.25.
  EXPECT_NEAR(RegularizedBeta(0.5, 2.0, 2.0), 0.5, 1e-12);
  EXPECT_NEAR(RegularizedBeta(0.25, 2.0, 2.0),
              3 * 0.0625 - 2 * 0.015625, 1e-12);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-9);
  EXPECT_NEAR(NormalCdf(2.575829304), 0.995, 1e-9);
}

TEST(NormalSf, ComplementsCdf) {
  for (double z : {-3.0, -1.0, 0.0, 0.5, 2.0, 4.0}) {
    EXPECT_NEAR(NormalCdf(z) + NormalSf(z), 1.0, 1e-14) << z;
  }
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-10) << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.995), 2.575829304, 1e-8);
}

TEST(NormalQuantile, RejectsBoundaries) {
  EXPECT_THROW(NormalQuantile(0.0), std::domain_error);
  EXPECT_THROW(NormalQuantile(1.0), std::domain_error);
}

TEST(ChiSquare, KnownValues) {
  // Chi-square with 1 df: CDF(3.841) ~ 0.95.
  EXPECT_NEAR(ChiSquareCdf(3.841458821, 1.0), 0.95, 1e-8);
  // 2 df: CDF(x) = 1 - exp(-x/2).
  EXPECT_NEAR(ChiSquareCdf(4.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  // 5 df upper tail at 11.0705 ~ 0.05.
  EXPECT_NEAR(ChiSquareSf(11.0705, 5.0), 0.05, 1e-5);
}

TEST(ChiSquare, NegativeArgument) {
  EXPECT_DOUBLE_EQ(ChiSquareCdf(-1.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareSf(-1.0, 3.0), 1.0);
}

TEST(StudentT, KnownValues) {
  // With 10 df, |t| = 2.228 gives two-sided p ~ 0.05.
  EXPECT_NEAR(StudentTTwoSidedP(2.228138852, 10.0), 0.05, 1e-6);
  // t = 0 gives p = 1.
  EXPECT_NEAR(StudentTTwoSidedP(0.0, 5.0), 1.0, 1e-12);
  // Symmetric in t.
  EXPECT_NEAR(StudentTTwoSidedP(1.7, 7.0), StudentTTwoSidedP(-1.7, 7.0),
              1e-12);
}

TEST(FDist, KnownValues) {
  // F(1, d2) = T(d2)^2: SF at t^2 equals the t two-sided p.
  const double t = 2.228138852;
  EXPECT_NEAR(FDistSf(t * t, 1.0, 10.0), 0.05, 1e-6);
  EXPECT_DOUBLE_EQ(FDistSf(0.0, 3.0, 4.0), 1.0);
}

TEST(PoissonCdf, KnownValues) {
  // P[X <= 0] = exp(-lambda).
  EXPECT_NEAR(PoissonCdf(0, 2.0), std::exp(-2.0), 1e-12);
  // P[X <= 1] = exp(-l)(1 + l).
  EXPECT_NEAR(PoissonCdf(1, 2.0), std::exp(-2.0) * 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(PoissonCdf(-1, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(PoissonCdf(5, 0.0), 1.0);
}

// Property sweep: distribution functions are monotone.
class MonotoneCdfTest : public ::testing::TestWithParam<double> {};

TEST_P(MonotoneCdfTest, ChiSquareCdfIsMonotone) {
  const double df = GetParam();
  double prev = 0.0;
  for (double x = 0.0; x <= 50.0; x += 0.5) {
    const double v = ChiSquareCdf(x, df);
    EXPECT_GE(v, prev - 1e-12);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(DegreesOfFreedom, MonotoneCdfTest,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0, 50.0));

}  // namespace
}  // namespace hpcfail::stats
