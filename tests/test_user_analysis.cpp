#include "core/user_analysis.h"

#include <gtest/gtest.h>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

Trace UserTrace() {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sys";
  c.num_nodes = 4;
  c.procs_per_node = 4;
  c.observed = {0, 100 * kDay};
  t.AddSystem(c);
  int id = 0;
  auto add_job = [&](int user, TimeSec dispatch, TimeSec runtime, int procs,
                     bool killed) {
    JobRecord j;
    j.id = JobId{id++};
    j.system = SystemId{0};
    j.user = UserId{user};
    j.submit = dispatch - kMinute;
    j.dispatch = dispatch;
    j.end = dispatch + runtime;
    j.procs = procs;
    j.nodes = {NodeId{0}};
    j.killed_by_node_failure = killed;
    t.AddJob(j);
  };
  // User 1: heavy, 4 proc-days, 2 kills. User 2: heavy, 8 proc-days, 0
  // kills. User 3: light.
  add_job(1, 1 * kDay, kDay, 2, true);
  add_job(1, 3 * kDay, kDay, 2, true);
  add_job(2, 5 * kDay, 2 * kDay, 4, false);
  add_job(3, 9 * kDay, kHour, 1, false);
  t.Finalize();
  return t;
}

TEST(AnalyzeUsers, PerUserStatistics) {
  const Trace t = UserTrace();
  const UserAnalysis u = AnalyzeUsers(t, SystemId{0}, 50);
  EXPECT_EQ(u.total_users, 3);
  ASSERT_EQ(u.heaviest_users.size(), 3u);
  // Sorted by processor-days: user 2 (8), user 1 (4), user 3 (~0.04).
  EXPECT_EQ(u.heaviest_users[0].user, UserId{2});
  EXPECT_EQ(u.heaviest_users[1].user, UserId{1});
  EXPECT_NEAR(u.heaviest_users[0].processor_days, 8.0, 1e-9);
  EXPECT_NEAR(u.heaviest_users[1].processor_days, 4.0, 1e-9);
  EXPECT_EQ(u.heaviest_users[1].killed_jobs, 2);
  EXPECT_NEAR(u.heaviest_users[1].failures_per_proc_day, 0.5, 1e-9);
  EXPECT_EQ(u.heaviest_users[0].killed_jobs, 0);
}

TEST(AnalyzeUsers, TopNTruncates) {
  const Trace t = UserTrace();
  const UserAnalysis u = AnalyzeUsers(t, SystemId{0}, 2);
  EXPECT_EQ(u.heaviest_users.size(), 2u);
  EXPECT_EQ(u.heaviest_users[0].user, UserId{2});
}

TEST(AnalyzeUsers, ThrowsWithoutJobs) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "empty";
  c.num_nodes = 2;
  c.procs_per_node = 1;
  c.observed = {0, kDay};
  t.AddSystem(c);
  t.Finalize();
  EXPECT_THROW(AnalyzeUsers(t, SystemId{0}), std::invalid_argument);
  EXPECT_THROW(AnalyzeUsers(UserTrace(), SystemId{0}, 1),
               std::invalid_argument);
}

TEST(AnalyzeUsers, GeneratedTraceShowsRateHeterogeneity) {
  // Section VI: per-user risk multipliers make the saturated Poisson model
  // significantly better than the common-rate model.
  synth::Scenario sc;
  sc.duration = 2 * kYear;
  auto sys = synth::System8Like(64, 2 * kYear);
  sys.workload.jobs_per_day = 120.0;
  sys.workload.user_risk_sigma = 1.2;  // strong heterogeneity
  sc.systems.push_back(sys);
  const Trace t = synth::GenerateTrace(sc, 41);
  const UserAnalysis u = AnalyzeUsers(t, SystemId{0}, 50);
  ASSERT_GE(u.heaviest_users.size(), 10u);
  EXPECT_TRUE(u.rate_heterogeneity.significant_99)
      << "p=" << u.rate_heterogeneity.p_value;
}

TEST(AnalyzeUsers, RatesVaryAcrossUsersInGeneratedTrace) {
  synth::Scenario sc;
  sc.duration = kYear;
  auto sys = synth::System8Like(32, kYear);
  sys.workload.user_risk_sigma = 1.2;
  sc.systems.push_back(sys);
  const Trace t = synth::GenerateTrace(sc, 42);
  const UserAnalysis u = AnalyzeUsers(t, SystemId{0}, 50);
  double lo = 1e18, hi = 0.0;
  for (const UserFailureStats& s : u.heaviest_users) {
    lo = std::min(lo, s.failures_per_proc_day);
    hi = std::max(hi, s.failures_per_proc_day);
  }
  EXPECT_GT(hi, lo);  // visible discrepancy, as in Fig. 8
}

}  // namespace
}  // namespace hpcfail::core
