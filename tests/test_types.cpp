#include "trace/types.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace hpcfail {
namespace {

TEST(TimeConstants, AreConsistent) {
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_EQ(kWeek, 7 * kDay);
  EXPECT_EQ(kMonth, 30 * kDay);
  EXPECT_EQ(kYear, 365 * kDay);
}

TEST(TimeInterval, DurationAndContains) {
  const TimeInterval iv{10, 20};
  EXPECT_EQ(iv.duration(), 10);
  EXPECT_TRUE(iv.valid());
  EXPECT_TRUE(iv.contains(10));   // inclusive begin
  EXPECT_TRUE(iv.contains(19));
  EXPECT_FALSE(iv.contains(20));  // exclusive end
  EXPECT_FALSE(iv.contains(9));
}

TEST(TimeInterval, EmptyIntervalContainsNothing) {
  const TimeInterval iv{5, 5};
  EXPECT_EQ(iv.duration(), 0);
  EXPECT_TRUE(iv.valid());
  EXPECT_FALSE(iv.contains(5));
}

TEST(TimeInterval, InvalidWhenEndBeforeBegin) {
  const TimeInterval iv{10, 5};
  EXPECT_FALSE(iv.valid());
}

TEST(Id, DefaultIsInvalid) {
  NodeId n;
  EXPECT_FALSE(n.valid());
  EXPECT_EQ(n.value, -1);
}

TEST(Id, ExplicitConstructionIsValid) {
  NodeId n{7};
  EXPECT_TRUE(n.valid());
  EXPECT_EQ(n.value, 7);
}

TEST(Id, ComparesByValue) {
  EXPECT_EQ(NodeId{3}, NodeId{3});
  EXPECT_NE(NodeId{3}, NodeId{4});
  EXPECT_LT(NodeId{3}, NodeId{4});
}

TEST(Id, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, UserId>);
  static_assert(!std::is_same_v<SystemId, RackId>);
}

TEST(Id, Hashable) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId{1});
  set.insert(NodeId{2});
  set.insert(NodeId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(NodeId{2}));
  EXPECT_FALSE(set.contains(NodeId{3}));
}

TEST(Id, InvalidNodeConstant) { EXPECT_FALSE(kInvalidNode.valid()); }

}  // namespace
}  // namespace hpcfail
