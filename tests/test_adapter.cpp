// The format-adapter registry (trace/adapter.h): registration and sniffing,
// byte parity between the lanl_csv adapter and the pre-registry direct
// import path, end-to-end ingestion of the checked-in BG/Q RAS and syslog
// fixtures, syslog template mining (masking, stable template ids, the
// rules table), and the format-aware source fingerprints that keep the
// artifact cache from aliasing formats.
#include "trace/adapter.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/event_index.h"
#include "engine/report_render.h"
#include "engine/session.h"
#include "engine/trace_source.h"
#include "obs/metrics.h"
#include "trace/lanl_import.h"

namespace hpcfail {
namespace {

std::string DataPath(const char* name) {
  return std::string(HPCFAIL_TEST_DATA_DIR) + "/" + name;
}

std::string BgqFixture() { return DataPath("bgq_ras_sample.csv"); }
std::string SyslogFixture() { return DataPath("syslog_sample.log"); }

// A LANL-convention failure log exercising every skip reason the importer
// reports, used to prove the adapter and the direct path agree row-for-row.
constexpr char kLanlSample[] =
    "system,node,started,fixed,cause,detail\n"
    "2,0,06/14/2004 03:12,06/14/2004 05:00,Hardware,Memory Dimm\n"
    "2,1,06/15/2004 10:00,06/15/2004 11:30,Software,Distributed Storage\n"
    "2,1,06/20/2004 00:00,,Facilities,Power Outage\n"
    "3,2,07/01/2004 12:00,07/01/2004 12:45,Human Error,\n"
    "3,0,07/02/2004 09:15,07/02/2004 10:00,Network,\n"
    "3,1,07/03/2004 08:00,07/03/2004 09:00,Undetermined,\n"
    "bad,row,here\n"
    "2,5,99/99/9999 00:00,,Hardware,CPU\n"
    "2,0,07/04/2004 10:00,07/04/2004 09:00,Hardware,CPU\n";

std::string ReadWholeFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(Adapter, RegistryOrderAndLookup) {
  const auto& registry = trace::Registry();
  ASSERT_EQ(registry.size(), 4u);
  EXPECT_EQ(registry[0]->name(), "hpcfail_csv");
  EXPECT_EQ(registry[1]->name(), "lanl_csv");
  EXPECT_EQ(registry[2]->name(), "bgq_ras");
  EXPECT_EQ(registry[3]->name(), "syslog");
  for (const trace::LogAdapter* a : registry) {
    EXPECT_EQ(trace::FindAdapter(a->name()), a);
    EXPECT_FALSE(a->description().empty());
  }
  EXPECT_EQ(trace::FindAdapter("no_such_format"), nullptr);
}

TEST(Adapter, SniffDetectsEveryFormat) {
  // Fixtures on disk.
  {
    std::ifstream is(BgqFixture(), std::ios::binary);
    ASSERT_TRUE(is.is_open());
    const trace::LogAdapter* a = trace::DetectAdapter(trace::SniffHead(is));
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->name(), "bgq_ras");
    // SniffHead rewinds: the stream still reads from byte 0.
    std::string first;
    ASSERT_TRUE(std::getline(is, first));
    EXPECT_EQ(first.rfind("RECID,", 0), 0u);
  }
  {
    std::ifstream is(SyslogFixture(), std::ios::binary);
    ASSERT_TRUE(is.is_open());
    const trace::LogAdapter* a = trace::DetectAdapter(trace::SniffHead(is));
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->name(), "syslog");
  }
  // In-memory heads.
  const trace::LogAdapter* lanl = trace::DetectAdapter(kLanlSample);
  ASSERT_NE(lanl, nullptr);
  EXPECT_EQ(lanl->name(), "lanl_csv");
  const trace::LogAdapter* native = trace::DetectAdapter(
      "system,node,start,end,category,subcategory\n0,0,1,2,hardware,cpu\n");
  ASSERT_NE(native, nullptr);
  EXPECT_EQ(native->name(), "hpcfail_csv");
  EXPECT_EQ(trace::DetectAdapter("completely unrecognizable bytes"), nullptr);

  // ResolveAdapter: named, auto, and the two failure modes.
  EXPECT_EQ(trace::ResolveAdapter("syslog", "").name(), "syslog");
  EXPECT_EQ(trace::ResolveAdapter("auto", kLanlSample).name(), "lanl_csv");
  EXPECT_THROW(trace::ResolveAdapter("nope", ""), std::runtime_error);
  EXPECT_THROW(trace::ResolveAdapter("auto", "gibberish"),
               std::runtime_error);
  try {
    trace::ResolveAdapter("nope", "");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("lanl_csv"), std::string::npos)
        << "error should list the known formats: " << e.what();
  }
}

// The lanl_csv adapter must agree with the pre-registry direct path
// (lanl::ImportFailures) on every record AND every skipped row.
TEST(Adapter, LanlAdapterMatchesDirectImportRowForRow) {
  std::istringstream direct_is(kLanlSample);
  const lanl::ImportResult direct =
      lanl::ImportFailures(direct_is, lanl::ImportConfig{});

  const trace::LogAdapter* adapter = trace::FindAdapter("lanl_csv");
  ASSERT_NE(adapter, nullptr);
  std::istringstream adapter_is(kLanlSample);
  const trace::ParseResult parsed =
      trace::ParseLog(*adapter, adapter_is, trace::AdapterOptions{});

  EXPECT_EQ(parsed.failures, direct.failures);
  EXPECT_EQ(direct.failures.size(), 6u);
  ASSERT_EQ(parsed.issues.size(), direct.skipped.size());
  for (std::size_t i = 0; i < parsed.issues.size(); ++i) {
    EXPECT_EQ(parsed.issues[i].line, direct.skipped[i].line) << "issue " << i;
    EXPECT_EQ(parsed.issues[i].reason, direct.skipped[i].reason)
        << "issue " << i;
  }
  EXPECT_EQ(parsed.counters.records, 6u);
  EXPECT_EQ(parsed.counters.rejected, 3u);
  EXPECT_EQ(parsed.counters.ignored, 1u);  // the header row
}

// Full-report byte parity: the same LANL file rendered through the adapter
// registry (engine::MakeLogSource) and through the direct import path must
// produce identical report bytes.
TEST(Adapter, LanlFullReportByteIdenticalViaRegistry) {
  const std::string path = ::testing::TempDir() + "/adapter_lanl_parity.csv";
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << kLanlSample;
  }

  std::istringstream is(kLanlSample);
  const lanl::AssembleResult direct = lanl::AssembleTrace(
      lanl::ImportFailures(is, lanl::ImportConfig{}), /*nodes_per_system=*/0);
  const core::EventIndex direct_index(direct.trace);
  std::ostringstream expected;
  engine::RenderReport(engine::AnalysisView(direct.trace, direct_index),
                       expected);

  for (const char* format : {"lanl_csv", "auto"}) {
    const auto source = engine::MakeLogSource(path, format,
                                              trace::AdapterOptions{}, 0);
    const Trace via_registry = source->Acquire();
    EXPECT_EQ(via_registry.failures(), direct.trace.failures()) << format;
    const core::EventIndex index(via_registry);
    std::ostringstream got;
    engine::RenderReport(engine::AnalysisView(via_registry, index), got);
    EXPECT_EQ(got.str(), expected.str())
        << "report bytes diverged for --format " << format;
  }
}

TEST(Adapter, BgqFixtureParsesEndToEnd) {
  const trace::LogAdapter* adapter = trace::FindAdapter("bgq_ras");
  ASSERT_NE(adapter, nullptr);
  std::ifstream is(BgqFixture(), std::ios::binary);
  ASSERT_TRUE(is.is_open());
  const trace::ParseResult parsed =
      trace::ParseLog(*adapter, is, trace::AdapterOptions{});

  EXPECT_EQ(parsed.counters.lines, 15u);
  EXPECT_EQ(parsed.counters.records, 8u);
  EXPECT_EQ(parsed.counters.ignored, 3u);  // header + INFO + WARN
  EXPECT_EQ(parsed.counters.rejected, 4u);
  ASSERT_EQ(parsed.failures.size(), 8u);

  // RECID 1: KERNEL/DDR -> hardware/memory at R00-M0-N01 -> node 1.
  EXPECT_EQ(parsed.failures[0].category, FailureCategory::kHardware);
  EXPECT_EQ(parsed.failures[0].hardware, HardwareComponent::kMemory);
  EXPECT_EQ(parsed.failures[0].node.value, 1);
  EXPECT_EQ(parsed.failures[0].start, 1333239202);  // 2012-04-01 00:13:22
  EXPECT_EQ(parsed.failures[0].end, parsed.failures[0].start);
  // RECID 3: CNK/FPU -> hardware/cpu; R00-M1-N05 -> (0*2+1)*16+5 = 21.
  EXPECT_EQ(parsed.failures[1].hardware, HardwareComponent::kCpu);
  EXPECT_EQ(parsed.failures[1].node.value, 21);
  // RECID 6: MESSAGE contains a comma; BULK_POWER -> power_supply.
  EXPECT_EQ(parsed.failures[3].hardware, HardwareComponent::kPowerSupply);
  // RECID 7: TORUS/LINK -> network (no subcategory).
  EXPECT_EQ(parsed.failures[4].category, FailureCategory::kNetwork);
  // RECID 8: GPFS -> software/pfs.
  EXPECT_EQ(parsed.failures[5].software, SoftwareComponent::kPfs);
  // RECID 10: unclassifiable fatal -> undetermined, location R03 -> 96.
  EXPECT_EQ(parsed.failures[7].category, FailureCategory::kUndetermined);
  EXPECT_EQ(parsed.failures[7].node.value, 96);
  for (const FailureRecord& r : parsed.failures) {
    EXPECT_TRUE(r.consistent());
  }

  // Rejections carry reasons; nothing was silently dropped.
  ASSERT_EQ(parsed.issues.size(), 4u);
  EXPECT_NE(parsed.issues[0].reason.find("bad location"), std::string::npos);
  EXPECT_NE(parsed.issues[1].reason.find("bad event time"),
            std::string::npos);
  EXPECT_NE(parsed.issues[2].reason.find("unknown severity"),
            std::string::npos);
  EXPECT_NE(parsed.issues[3].reason.find("too few columns"),
            std::string::npos);

  // And the records assemble into a renderable trace (batch report path).
  lanl::ImportResult imported;
  imported.failures = parsed.failures;
  const lanl::AssembleResult assembled = lanl::AssembleTrace(imported, 0);
  EXPECT_EQ(assembled.trace.num_failures(), 8);
  const core::EventIndex index(assembled.trace);
  std::ostringstream report;
  engine::RenderReport(engine::AnalysisView(assembled.trace, index), report);
  EXPECT_NE(report.str().find("=== trace overview ==="), std::string::npos);
}

TEST(Adapter, SyslogFixtureParsesEndToEnd) {
  const trace::LogAdapter* adapter = trace::FindAdapter("syslog");
  ASSERT_NE(adapter, nullptr);
  std::ifstream is(SyslogFixture(), std::ios::binary);
  ASSERT_TRUE(is.is_open());
  trace::AdapterOptions options;
  options.syslog_base_year = 2004;
  const trace::ParseResult parsed = trace::ParseLog(*adapter, is, options);

  EXPECT_EQ(parsed.counters.lines, 11u);  // blank line not counted
  EXPECT_EQ(parsed.counters.records, 7u);
  EXPECT_EQ(parsed.counters.ignored, 0u);
  EXPECT_EQ(parsed.counters.rejected, 4u);
  ASSERT_EQ(parsed.failures.size(), 7u);

  // EDAC -> memory on node012 (BOM + CRLF line).
  EXPECT_EQ(parsed.failures[0].hardware, HardwareComponent::kMemory);
  EXPECT_EQ(parsed.failures[0].node.value, 12);
  // mce -> cpu; <4>-prefixed OOM kill -> software/os on cn-204.
  EXPECT_EQ(parsed.failures[1].hardware, HardwareComponent::kCpu);
  EXPECT_EQ(parsed.failures[2].software, SoftwareComponent::kOs);
  EXPECT_EQ(parsed.failures[2].node.value, 204);
  // LustreError -> software/pfs; slurmd -> software/scheduler.
  EXPECT_EQ(parsed.failures[3].software, SoftwareComponent::kPfs);
  EXPECT_EQ(parsed.failures[4].software, SoftwareComponent::kScheduler);
  // "link down" on cab3-sw17 -> network, node 17.
  EXPECT_EQ(parsed.failures[5].category, FailureCategory::kNetwork);
  EXPECT_EQ(parsed.failures[5].node.value, 17);
  // Kernel panic -> software/os; RFC 3164 time against the base year.
  EXPECT_EQ(parsed.failures[6].software, SoftwareComponent::kOs);
  EXPECT_EQ(parsed.failures[6].start, 1087520523);  // Jun 18 01:02:03 2004

  // The four rejects: host without node digits, an unmapped template
  // (counted with its template id — the operator's cue to add a rule),
  // binary garbage, and a line with no message.
  ASSERT_EQ(parsed.issues.size(), 4u);
  EXPECT_NE(parsed.issues[0].reason.find("no node id in hostname 'mgmt'"),
            std::string::npos);
  EXPECT_NE(parsed.issues[1].reason.find("unmapped template t="),
            std::string::npos);
  EXPECT_NE(parsed.issues[2].reason.find("bad timestamp"), std::string::npos);
  EXPECT_NE(parsed.issues[3].reason.find("missing message"),
            std::string::npos);
}

TEST(Adapter, SyslogMaskingNormalizesVolatileTokens) {
  EXPECT_EQ(trace::MaskSyslogMessage(
                "Out of memory: Kill process 4721 (fluent_mpi) score 905"),
            "Out of memory: Kill process # (fluent_mpi) score #");
  EXPECT_EQ(trace::MaskSyslogMessage("page fault at 0xDEADbeef ip 0x42"),
            "page fault at 0x# ip 0x#");
  EXPECT_EQ(trace::MaskSyslogMessage("read /var/log/messages failed"),
            "read PATH failed");
  EXPECT_EQ(trace::MaskSyslogMessage("session 0123456789abcdef closed"),
            "session # closed");
  // Short hex-looking words survive; whitespace collapses.
  EXPECT_EQ(trace::MaskSyslogMessage("  dead  beef   cafe "),
            "dead beef cafe");
}

TEST(Adapter, SyslogTemplateIdsStableAcrossRunsAndThreads) {
  // Two lines differing only in volatile tokens share one template id.
  const std::string a =
      trace::MaskSyslogMessage("I/O error on sda3, sector 123456");
  const std::string b =
      trace::MaskSyslogMessage("I/O error on sda7, sector 9");
  EXPECT_EQ(a, b);
  EXPECT_EQ(trace::SyslogTemplateId(a), trace::SyslogTemplateId(b));

  // Ids are pure content hashes: recomputing under concurrency changes
  // nothing (the stability contract behind "rejected with template id").
  const std::string payload = ReadWholeFile(SyslogFixture());
  const trace::LogAdapter* adapter = trace::FindAdapter("syslog");
  ASSERT_NE(adapter, nullptr);
  const auto parse_reasons = [&] {
    std::istringstream is(payload);
    std::vector<std::string> reasons;
    for (const auto& issue :
         trace::ParseLog(*adapter, is, trace::AdapterOptions{}).issues) {
      reasons.push_back(issue.reason);
    }
    return reasons;
  };
  const std::vector<std::string> baseline = parse_reasons();
  std::vector<std::vector<std::string>> from_threads(4);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < from_threads.size(); ++t) {
      threads.emplace_back(
          [&, t] { from_threads[t] = parse_reasons(); });
    }
    for (std::thread& th : threads) th.join();
  }
  for (const auto& reasons : from_threads) {
    EXPECT_EQ(reasons, baseline);
  }
}

TEST(Adapter, SyslogUserRulesOverrideBuiltins) {
  const std::string payload = ReadWholeFile(SyslogFixture());
  const trace::LogAdapter* adapter = trace::FindAdapter("syslog");
  ASSERT_NE(adapter, nullptr);

  trace::AdapterOptions options;
  options.syslog_rules =
      "# site-local rules\n"
      "cron => software/scheduler\n"
      "kernel panic => hardware/other_hardware\n";
  std::istringstream is(payload);
  const trace::ParseResult parsed = trace::ParseLog(*adapter, is, options);

  // The CRON template that the built-ins reject is now mapped...
  EXPECT_EQ(parsed.counters.records, 8u);
  EXPECT_EQ(parsed.counters.rejected, 3u);
  bool saw_cron_node = false;
  for (const FailureRecord& r : parsed.failures) {
    if (r.node.value == 100) {
      saw_cron_node = true;
      EXPECT_EQ(r.software, SoftwareComponent::kScheduler);
    }
    // ...and the user rule beats the built-in "kernel panic => os" rule.
    if (r.node.value == 7) {
      EXPECT_EQ(r.category, FailureCategory::kHardware);
      EXPECT_EQ(r.hardware, HardwareComponent::kOtherHardware);
    }
  }
  EXPECT_TRUE(saw_cron_node);

  // Malformed rules throw (naming the line) instead of silently
  // misclassifying.
  const auto reader_for = [&](const std::string& rules) {
    trace::AdapterOptions bad;
    bad.syslog_rules = rules;
    return adapter->MakeReader(bad);
  };
  EXPECT_THROW(reader_for("no arrow here"), std::runtime_error);
  EXPECT_THROW(reader_for("foo => not_a_category"), std::runtime_error);
  EXPECT_THROW(reader_for("foo => hardware/not_a_component"),
               std::runtime_error);
  EXPECT_THROW(reader_for("foo => network/pfs"), std::runtime_error);
}

TEST(Adapter, ParseCountsFlowIntoMetricsRegistry) {
  if (!obs::kEnabled) GTEST_SKIP() << "metrics disabled";
  const auto counter = [](const char* name) {
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::Global().Snapshot();
    const obs::MetricsSnapshot::CounterValue* c = snap.FindCounter(name);
    return c != nullptr ? c->value : 0;
  };
  const long long lines0 = counter("hpcfail_adapter_lines_total");
  const long long records0 = counter("hpcfail_adapter_records_total");
  const long long ignored0 = counter("hpcfail_adapter_ignored_lines_total");
  const long long rejected0 = counter("hpcfail_adapter_rejected_lines_total");

  std::ifstream is(BgqFixture(), std::ios::binary);
  ASSERT_TRUE(is.is_open());
  const trace::ParseResult parsed = trace::ParseLog(
      *trace::FindAdapter("bgq_ras"), is, trace::AdapterOptions{});

  EXPECT_EQ(counter("hpcfail_adapter_lines_total") - lines0,
            static_cast<long long>(parsed.counters.lines));
  EXPECT_EQ(counter("hpcfail_adapter_records_total") - records0,
            static_cast<long long>(parsed.counters.records));
  EXPECT_EQ(counter("hpcfail_adapter_ignored_lines_total") - ignored0,
            static_cast<long long>(parsed.counters.ignored));
  EXPECT_EQ(counter("hpcfail_adapter_rejected_lines_total") - rejected0,
            static_cast<long long>(parsed.counters.rejected));
}

// Fingerprints must separate formats (same bytes, different adapter =>
// different analysis) while staying stable for auto vs the resolved name.
TEST(Adapter, LogSourceFingerprintsNeverAliasFormats) {
  const std::string path = SyslogFixture();
  const auto fingerprint = [&](const char* format) {
    return engine::MakeLogSource(path, format, trace::AdapterOptions{}, 0)
        ->Fingerprint();
  };
  const auto syslog_fp = fingerprint("syslog");
  const auto bgq_fp = fingerprint("bgq_ras");
  const auto lanl_fp = fingerprint("lanl_csv");
  const auto auto_fp = fingerprint("auto");
  ASSERT_TRUE(syslog_fp.has_value());
  ASSERT_TRUE(bgq_fp.has_value());
  ASSERT_TRUE(lanl_fp.has_value());
  ASSERT_TRUE(auto_fp.has_value());
  std::set<std::uint64_t> distinct{*syslog_fp, *bgq_fp, *lanl_fp};
  EXPECT_EQ(distinct.size(), 3u) << "formats alias in the artifact cache";
  EXPECT_EQ(*auto_fp, *syslog_fp) << "auto must resolve to the sniffed name";

  // Adapter options are part of the key: changed options, changed key.
  trace::AdapterOptions options;
  options.syslog_base_year = 1999;
  const auto year_fp =
      engine::MakeLogSource(path, "syslog", options, 0)->Fingerprint();
  ASSERT_TRUE(year_fp.has_value());
  EXPECT_NE(*year_fp, *syslog_fp);

  // A missing file has no fingerprint (and so is never cached).
  EXPECT_FALSE(engine::MakeLogSource(DataPath("does_not_exist.log"),
                                     "syslog", trace::AdapterOptions{}, 0)
                   ->Fingerprint()
                   .has_value());
}

// The engine session layer end-to-end: FromLog over both new formats.
TEST(Adapter, SessionFromLogServesBothNewFormats) {
  engine::SessionOptions options;
  options.cache.enabled = false;
  const engine::AnalysisSession ras = engine::AnalysisSession::FromLog(
      BgqFixture(), "bgq_ras", trace::AdapterOptions{}, 0, options);
  EXPECT_EQ(ras.trace().num_failures(), 8);
  EXPECT_NE(ras.StatsJson().find("\"source\":\"log\""), std::string::npos);

  const engine::AnalysisSession sys = engine::AnalysisSession::FromLog(
      SyslogFixture(), "auto", trace::AdapterOptions{}, 0, options);
  EXPECT_EQ(sys.trace().num_failures(), 7);
  EXPECT_NE(sys.stats().label.find("format=syslog"), std::string::npos);
}

}  // namespace
}  // namespace hpcfail
