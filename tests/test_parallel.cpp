#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/window_analysis.h"
#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "synth/generate.h"

namespace hpcfail::core {
namespace {

// Restores the process default so tests cannot leak thread settings.
class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { SetDefaultThreadCount(0); }
};

TEST(ThreadConfig, DefaultIsHardwareAndSettable) {
  ThreadCountGuard guard;
  EXPECT_GE(HardwareThreadCount(), 1);
  EXPECT_EQ(DefaultThreadCount(), HardwareThreadCount());
  SetDefaultThreadCount(3);
  EXPECT_EQ(DefaultThreadCount(), 3);
  SetDefaultThreadCount(0);  // restore hardware default
  EXPECT_EQ(DefaultThreadCount(), HardwareThreadCount());
  SetDefaultThreadCount(-5);  // nonpositive also restores
  EXPECT_EQ(DefaultThreadCount(), HardwareThreadCount());
}

TEST(ThreadPool, RunsEveryTaskBeforeShutdown) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(pool.Submit([&done] { ++done; }));
    }
    // Destructor drains the queue and joins the workers.
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, MinimumOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  while (!ran.load()) std::this_thread::yield();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(kN, [&hits](std::size_t i) { ++hits[i]; }, threads);
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, EmptyAndSingleElement) {
  ParallelFor(0, [](std::size_t) { FAIL() << "body called for n=0"; }, 4);
  int calls = 0;
  ParallelFor(1, [&calls](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesExceptionsToCaller) {
  for (int threads : {1, 4}) {
    EXPECT_THROW(
        ParallelFor(
            100,
            [](std::size_t i) {
              if (i == 37) throw std::runtime_error("boom");
            },
            threads),
        std::runtime_error)
        << "threads " << threads;
  }
}

TEST(ParallelFor, NestedCallsRunSerially) {
  // A parallel region launched from inside another must not deadlock; inner
  // regions degrade to the serial path on pool workers.
  std::atomic<int> total{0};
  ParallelFor(8, [&total](std::size_t) {
    ParallelFor(8, [&total](std::size_t) { ++total; }, 4);
  }, 4);
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelReduce, OrderedFoldIsDeterministic) {
  // Floating-point summation order matters; the ordered fold must give the
  // bit-identical result for every thread count.
  std::vector<double> values(10000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  const auto sum_with = [&values](int threads) {
    return ParallelReduce(
        values.size(), 0.0, [&values](std::size_t i) { return values[i]; },
        [](double acc, double v) { return acc + v; }, threads);
  };
  const double serial = sum_with(1);
  for (int threads : {2, 4, 8}) {
    const double parallel = sum_with(threads);
    EXPECT_EQ(serial, parallel) << "threads " << threads;  // exact, not NEAR
  }
}

TEST(ParallelReduce, PropagatesTaskExceptions) {
  EXPECT_THROW(ParallelReduce(
                   10, 0,
                   [](std::size_t i) -> int {
                     if (i == 5) throw std::invalid_argument("bad shard");
                     return static_cast<int>(i);
                   },
                   [](int a, int b) { return a + b; }, 4),
               std::invalid_argument);
}

// ---- Serial vs parallel equality on a seeded trace: the determinism
// guarantee the analysis layer advertises.

class SerialParallelEquality : public ::testing::Test {
 protected:
  void TearDown() override { SetDefaultThreadCount(0); }

  static const Trace& SeededTrace() {
    static const Trace trace =
        synth::GenerateTrace(synth::LanlLikeScenario(0.1, kYear), 99);
    return trace;
  }
};

TEST_F(SerialParallelEquality, PairwiseMatrixAllCellsBitIdentical) {
  const EventIndex idx(SeededTrace());
  const WindowAnalyzer a(idx);
  SetDefaultThreadCount(1);
  const auto serial = a.PairwiseProbabilities(Scope::kSameNode, kWeek);
  SetDefaultThreadCount(4);
  const auto parallel = a.PairwiseProbabilities(Scope::kSameNode, kWeek);
  for (std::size_t x = 0; x < kNumFailureCategories; ++x) {
    for (std::size_t y = 0; y < kNumFailureCategories; ++y) {
      const ConditionalResult& s = serial[x][y];
      const ConditionalResult& p = parallel[x][y];
      ASSERT_EQ(s.conditional.successes, p.conditional.successes)
          << "cell " << x << "," << y;
      ASSERT_EQ(s.conditional.trials, p.conditional.trials);
      ASSERT_EQ(s.baseline.successes, p.baseline.successes);
      ASSERT_EQ(s.baseline.trials, p.baseline.trials);
      // Bit-identical doubles, not approximately equal.
      ASSERT_EQ(s.conditional.estimate, p.conditional.estimate);
      ASSERT_EQ(s.baseline.estimate, p.baseline.estimate);
      ASSERT_EQ(s.factor, p.factor);
      ASSERT_EQ(s.test.z, p.test.z);
      ASSERT_EQ(s.num_triggers, p.num_triggers);
    }
  }
}

TEST_F(SerialParallelEquality, ConditionalAndBaselineAcrossScopes) {
  const EventIndex idx(SeededTrace());
  const WindowAnalyzer a(idx);
  for (Scope scope :
       {Scope::kSameNode, Scope::kRackPeers, Scope::kSystemPeers}) {
    SetDefaultThreadCount(1);
    const auto serial = a.ConditionalProbability(
        EventFilter::Any(), EventFilter::Any(), scope, kWeek);
    const auto serial_base = a.BaselineProbability(EventFilter::Any(), kWeek);
    SetDefaultThreadCount(8);
    const auto parallel = a.ConditionalProbability(
        EventFilter::Any(), EventFilter::Any(), scope, kWeek);
    const auto parallel_base =
        a.BaselineProbability(EventFilter::Any(), kWeek);
    EXPECT_EQ(serial.successes, parallel.successes) << ToString(scope);
    EXPECT_EQ(serial.trials, parallel.trials) << ToString(scope);
    EXPECT_EQ(serial.estimate, parallel.estimate) << ToString(scope);
    EXPECT_EQ(serial_base.successes, parallel_base.successes);
    EXPECT_EQ(serial_base.trials, parallel_base.trials);
  }
}

TEST_F(SerialParallelEquality, MaintenanceAfterMatches) {
  const EventIndex idx(SeededTrace());
  const WindowAnalyzer a(idx);
  SetDefaultThreadCount(1);
  const auto serial = a.MaintenanceAfter(EventFilter::Any(), kWeek);
  SetDefaultThreadCount(4);
  const auto parallel = a.MaintenanceAfter(EventFilter::Any(), kWeek);
  EXPECT_EQ(serial.conditional.successes, parallel.conditional.successes);
  EXPECT_EQ(serial.conditional.trials, parallel.conditional.trials);
  EXPECT_EQ(serial.baseline.successes, parallel.baseline.successes);
  EXPECT_EQ(serial.baseline.trials, parallel.baseline.trials);
  EXPECT_EQ(serial.factor, parallel.factor);
}

TEST_F(SerialParallelEquality, BootstrapMatchesForEveryThreadCount) {
  std::vector<double> sample;
  stats::Rng data_rng(7);
  for (int i = 0; i < 500; ++i) sample.push_back(data_rng.Normal(10.0, 3.0));
  const auto stat = [](std::span<const double> xs) {
    return stats::Median(xs);
  };
  SetDefaultThreadCount(1);
  stats::Rng rng_serial(42);
  const auto serial = stats::BootstrapCi(sample, stat, rng_serial, 400);
  for (int threads : {2, 4, 8}) {
    SetDefaultThreadCount(threads);
    stats::Rng rng_parallel(42);
    const auto parallel = stats::BootstrapCi(sample, stat, rng_parallel, 400);
    EXPECT_EQ(serial.estimate, parallel.estimate) << "threads " << threads;
    EXPECT_EQ(serial.ci_low, parallel.ci_low) << "threads " << threads;
    EXPECT_EQ(serial.ci_high, parallel.ci_high) << "threads " << threads;
  }
}

TEST_F(SerialParallelEquality, GenerateTraceIdenticalAcrossThreadCounts) {
  const auto scenario = synth::LanlLikeScenario(0.1, kYear / 2);
  SetDefaultThreadCount(1);
  const Trace serial = synth::GenerateTrace(scenario, 321);
  SetDefaultThreadCount(4);
  const Trace parallel = synth::GenerateTrace(scenario, 321);
  ASSERT_EQ(serial.failures().size(), parallel.failures().size());
  EXPECT_EQ(serial.failures(), parallel.failures());
  EXPECT_EQ(serial.maintenance(), parallel.maintenance());
  ASSERT_EQ(serial.jobs().size(), parallel.jobs().size());
  EXPECT_EQ(serial.jobs(), parallel.jobs());
  EXPECT_EQ(serial.temperatures(), parallel.temperatures());
  EXPECT_EQ(serial.neutron_series(), parallel.neutron_series());
}

}  // namespace
}  // namespace hpcfail::core
