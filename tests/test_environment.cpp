#include "trace/environment.h"

#include <gtest/gtest.h>

namespace hpcfail {
namespace {

std::vector<TemperatureSample> Samples(NodeId node,
                                       std::initializer_list<double> temps) {
  std::vector<TemperatureSample> out;
  TimeSec t = 0;
  for (double c : temps) {
    out.push_back({SystemId{0}, node, t, c});
    t += kHour;
  }
  return out;
}

TEST(SummarizeTemperature, EmptyInput) {
  const TemperatureSummary s = SummarizeTemperature({}, NodeId{0});
  EXPECT_EQ(s.num_samples, 0);
  EXPECT_EQ(s.avg, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(SummarizeTemperature, BasicStatistics) {
  const auto samples = Samples(NodeId{0}, {20.0, 30.0, 40.0});
  const TemperatureSummary s = SummarizeTemperature(samples, NodeId{0});
  EXPECT_EQ(s.num_samples, 3);
  EXPECT_DOUBLE_EQ(s.avg, 30.0);
  EXPECT_DOUBLE_EQ(s.max, 40.0);
  // Population variance of {20,30,40} = 200/3.
  EXPECT_NEAR(s.variance, 200.0 / 3.0, 1e-9);
  EXPECT_EQ(s.num_high_temp, 0);  // 40.0 is not > 40.0
}

TEST(SummarizeTemperature, CountsHighTempExcursions) {
  const auto samples = Samples(NodeId{0}, {35.0, 41.0, 45.0, 39.9});
  const TemperatureSummary s = SummarizeTemperature(samples, NodeId{0});
  EXPECT_EQ(s.num_high_temp, 2);
}

TEST(SummarizeTemperature, IgnoresOtherNodes) {
  auto samples = Samples(NodeId{0}, {20.0, 22.0});
  auto other = Samples(NodeId{1}, {90.0, 95.0});
  samples.insert(samples.end(), other.begin(), other.end());
  const TemperatureSummary s = SummarizeTemperature(samples, NodeId{0});
  EXPECT_EQ(s.num_samples, 2);
  EXPECT_DOUBLE_EQ(s.avg, 21.0);
  EXPECT_DOUBLE_EQ(s.max, 22.0);
}

TEST(SummarizeTemperature, SingleSampleHasZeroVariance) {
  const auto samples = Samples(NodeId{0}, {25.0});
  const TemperatureSummary s = SummarizeTemperature(samples, NodeId{0});
  EXPECT_EQ(s.num_samples, 1);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 25.0);
}

TEST(SummarizeTemperature, NegativeTemperaturesHandled) {
  const auto samples = Samples(NodeId{0}, {-10.0, 10.0});
  const TemperatureSummary s = SummarizeTemperature(samples, NodeId{0});
  EXPECT_DOUBLE_EQ(s.avg, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.variance, 100.0);
}

TEST(HighTempThreshold, MatchesPaperTableI) {
  // Table I: num_hightemp counts samples exceeding 40C.
  EXPECT_DOUBLE_EQ(kHighTempThresholdC, 40.0);
}

}  // namespace
}  // namespace hpcfail
