#include "synth/cluster_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace hpcfail::synth {
namespace {

SystemScenario TestSystem(TimeSec duration = 365 * kDay) {
  SystemScenario s = Group1System("test", 32, duration);
  s.nodes_per_rack = 8;
  // x20 rates so short simulations produce enough events to assert on.
  for (double& r : s.base_rate_per_hour) r *= 20.0;
  return s;
}

ClusterSimResult RunSim(const SystemScenario& s, std::uint64_t seed) {
  const MachineLayout layout =
      MachineLayout::Grid(s.num_nodes, s.nodes_per_rack, s.racks_per_row);
  ClusterSimInput input;
  input.system = SystemId{0};
  stats::Rng rng(seed);
  return SimulateCluster(s, layout, input, rng);
}

TEST(ClusterSim, ProducesEvents) {
  const ClusterSimResult r = RunSim(TestSystem(), 1);
  EXPECT_GT(r.failures.size(), 100u);
}

TEST(ClusterSim, AllRecordsConsistentAndInWindow) {
  const SystemScenario s = TestSystem();
  const ClusterSimResult r = RunSim(s, 2);
  for (const FailureRecord& f : r.failures) {
    EXPECT_TRUE(f.consistent());
    EXPECT_GE(f.start, 0);
    EXPECT_LT(f.start, s.duration);
    EXPECT_GT(f.end, f.start);
    EXPECT_GE(f.node.value, 0);
    EXPECT_LT(f.node.value, s.num_nodes);
    EXPECT_EQ(f.system, SystemId{0});
  }
  for (const MaintenanceRecord& m : r.maintenance) {
    EXPECT_GE(m.start, 0);
    EXPECT_LT(m.start, s.duration);
    EXPECT_GE(m.end, m.start);
  }
}

TEST(ClusterSim, FailuresAreTimeSorted) {
  const ClusterSimResult r = RunSim(TestSystem(), 3);
  EXPECT_TRUE(std::is_sorted(
      r.failures.begin(), r.failures.end(),
      [](const FailureRecord& a, const FailureRecord& b) {
        return a.start < b.start;
      }));
}

TEST(ClusterSim, DeterministicPerSeed) {
  const SystemScenario s = TestSystem();
  const ClusterSimResult a = RunSim(s, 4);
  const ClusterSimResult b = RunSim(s, 4);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.maintenance, b.maintenance);
  EXPECT_EQ(a.chiller_events, b.chiller_events);
}

TEST(ClusterSim, DifferentSeedsDiffer) {
  const SystemScenario s = TestSystem();
  const ClusterSimResult a = RunSim(s, 5);
  const ClusterSimResult b = RunSim(s, 6);
  EXPECT_NE(a.failures.size(), b.failures.size());
}

TEST(ClusterSim, SubcategoriesMatchCategories) {
  const ClusterSimResult r = RunSim(TestSystem(), 7);
  int hw_with_component = 0;
  for (const FailureRecord& f : r.failures) {
    if (f.category == FailureCategory::kHardware) {
      EXPECT_TRUE(f.hardware.has_value());
      ++hw_with_component;
    }
    if (f.category == FailureCategory::kSoftware) {
      EXPECT_TRUE(f.software.has_value());
    }
    if (f.category == FailureCategory::kEnvironment) {
      EXPECT_TRUE(f.environment.has_value());
    }
  }
  EXPECT_GT(hw_with_component, 0);
}

TEST(ClusterSim, HardwareMixRoughlyHonored) {
  const SystemScenario s = TestSystem(3 * kYear);
  const ClusterSimResult r = RunSim(s, 8);
  std::map<HardwareComponent, int> counts;
  int hw_total = 0;
  for (const FailureRecord& f : r.failures) {
    if (f.hardware) {
      ++counts[*f.hardware];
      ++hw_total;
    }
  }
  ASSERT_GT(hw_total, 500);
  // CPU ~40% and memory ~20% of hardware failures (Section III.A.4). The
  // same-component cascade inheritance preserves the marginal mix.
  const double cpu_share =
      static_cast<double>(counts[HardwareComponent::kCpu]) / hw_total;
  const double mem_share =
      static_cast<double>(counts[HardwareComponent::kMemory]) / hw_total;
  EXPECT_NEAR(cpu_share, 0.40, 0.10);
  EXPECT_NEAR(mem_share, 0.20, 0.08);
}

TEST(ClusterSim, NodeZeroIsFailureProne) {
  const SystemScenario s = TestSystem(3 * kYear);
  const ClusterSimResult r = RunSim(s, 9);
  std::vector<int> per_node(static_cast<std::size_t>(s.num_nodes), 0);
  for (const FailureRecord& f : r.failures) {
    ++per_node[static_cast<std::size_t>(f.node.value)];
  }
  double mean_rest = 0.0;
  for (std::size_t n = 1; n < per_node.size(); ++n) mean_rest += per_node[n];
  mean_rest /= static_cast<double>(per_node.size() - 1);
  EXPECT_GT(per_node[0], 3.0 * mean_rest);
}

TEST(ClusterSim, SelfExcitationRaisesShortGapFrequency) {
  // Inter-failure gaps on the same node must be overdispersed relative to a
  // Poisson process: the fraction of gaps under 2 days should clearly exceed
  // the exponential prediction with the same mean.
  const SystemScenario s = TestSystem(3 * kYear);
  const ClusterSimResult r = RunSim(s, 10);
  std::vector<std::vector<TimeSec>> per_node(
      static_cast<std::size_t>(s.num_nodes));
  for (const FailureRecord& f : r.failures) {
    per_node[static_cast<std::size_t>(f.node.value)].push_back(f.start);
  }
  double short_gaps = 0, gaps = 0, total_gap = 0;
  for (const auto& times : per_node) {
    for (std::size_t i = 1; i < times.size(); ++i) {
      const TimeSec gap = times[i] - times[i - 1];
      ++gaps;
      total_gap += static_cast<double>(gap);
      if (gap < 2 * kDay) ++short_gaps;
    }
  }
  ASSERT_GT(gaps, 200);
  const double observed_short = short_gaps / gaps;
  const double mean_gap = total_gap / gaps;
  const double poisson_short =
      1.0 - std::exp(-2.0 * static_cast<double>(kDay) / mean_gap);
  EXPECT_GT(observed_short, 1.5 * poisson_short);
}

TEST(ClusterSim, FacilityOutagesHitMultipleNodesAtOnce) {
  SystemScenario s = TestSystem(3 * kYear);
  s.power_outage.events_per_year = 4.0;
  const ClusterSimResult r = RunSim(s, 11);
  // Group outage records within an 11-minute jitter window.
  std::vector<TimeSec> outage_times;
  for (const FailureRecord& f : r.failures) {
    if (f.environment == EnvironmentEvent::kPowerOutage) {
      outage_times.push_back(f.start);
    }
  }
  ASSERT_GT(outage_times.size(), 8u);
  std::sort(outage_times.begin(), outage_times.end());
  int best_burst = 1, current = 1;
  for (std::size_t i = 1; i < outage_times.size(); ++i) {
    if (outage_times[i] - outage_times[i - 1] <= 11 * kMinute) {
      best_burst = std::max(best_burst, ++current);
    } else {
      current = 1;
    }
  }
  EXPECT_GE(best_burst, s.power_outage.min_nodes_affected / 2);
}

TEST(ClusterSim, ChillerEventsAreReported) {
  SystemScenario s = TestSystem(3 * kYear);
  s.chiller_failure.events_per_year = 5.0;
  const ClusterSimResult r = RunSim(s, 12);
  EXPECT_GT(r.chiller_events.size(), 3u);
  EXPECT_TRUE(std::is_sorted(r.chiller_events.begin(),
                             r.chiller_events.end()));
}

TEST(ClusterSim, UsageMultiplierRaisesRates) {
  SystemScenario s = TestSystem(kYear);
  s.node0_rate_multiplier = {1, 1, 1, 1, 1, 1};  // isolate the usage effect
  const MachineLayout layout =
      MachineLayout::Grid(s.num_nodes, s.nodes_per_rack, s.racks_per_row);
  ClusterSimInput hot;
  hot.system = SystemId{0};
  hot.usage_multiplier.assign(static_cast<std::size_t>(s.num_nodes), 1.0);
  // Crank the first half of the nodes.
  for (int n = 0; n < s.num_nodes / 2; ++n) {
    hot.usage_multiplier[static_cast<std::size_t>(n)] = 3.0;
  }
  stats::Rng rng(13);
  const ClusterSimResult r = SimulateCluster(s, layout, hot, rng);
  long long first_half = 0, second_half = 0;
  for (const FailureRecord& f : r.failures) {
    (f.node.value < s.num_nodes / 2 ? first_half : second_half) += 1;
  }
  EXPECT_GT(first_half, 2 * second_half);
}

TEST(ClusterSim, ChurnTriggersProduceFailures) {
  SystemScenario s = TestSystem(kYear);
  for (double& r : s.base_rate_per_hour) r = 0.0;  // churn only
  s.power_outage.events_per_year = 0.0;
  s.power_spike.events_per_year = 0.0;
  s.ups_failure.events_per_year = 0.0;
  s.chiller_failure.events_per_year = 0.0;
  s.base_maintenance_per_hour = 0.0;
  s.workload.job_churn_hazard = 0.05;
  const MachineLayout layout =
      MachineLayout::Grid(s.num_nodes, s.nodes_per_rack, s.racks_per_row);
  ClusterSimInput input;
  input.system = SystemId{0};
  for (int i = 0; i < 2000; ++i) {
    input.churn.push_back({NodeId{i % s.num_nodes},
                           static_cast<TimeSec>(i) * kHour, 1.0});
  }
  stats::Rng rng(14);
  const ClusterSimResult r = SimulateCluster(s, layout, input, rng);
  // ~2000 * 0.05 = 100 direct churn failures plus their cascades.
  EXPECT_GT(r.failures.size(), 50u);
  EXPECT_LT(r.failures.size(), 400u);
}

TEST(ClusterSim, CpuFluxFactorTiltsCpuFailures) {
  SystemScenario s = TestSystem(kYear);
  const MachineLayout layout =
      MachineLayout::Grid(s.num_nodes, s.nodes_per_rack, s.racks_per_row);
  ClusterSimInput input;
  input.system = SystemId{0};
  // First half of the year: 3x CPU hazard; second half: 0.3x.
  input.cpu_flux_factor.assign(13, 0.3);
  for (int m = 0; m < 6; ++m) input.cpu_flux_factor[m] = 3.0;
  stats::Rng rng(15);
  const ClusterSimResult r = SimulateCluster(s, layout, input, rng);
  int cpu_first = 0, cpu_second = 0;
  for (const FailureRecord& f : r.failures) {
    if (f.hardware == HardwareComponent::kCpu) {
      (f.start < s.duration / 2 ? cpu_first : cpu_second) += 1;
    }
  }
  EXPECT_GT(cpu_first, 2 * cpu_second);
}

TEST(ClusterSim, ZeroRatesProduceNoFailures) {
  SystemScenario s = TestSystem(kYear);
  for (double& r : s.base_rate_per_hour) r = 0.0;
  s.power_outage.events_per_year = 0.0;
  s.power_spike.events_per_year = 0.0;
  s.ups_failure.events_per_year = 0.0;
  s.chiller_failure.events_per_year = 0.0;
  s.base_maintenance_per_hour = 0.0;
  const ClusterSimResult r = RunSim(s, 16);
  EXPECT_TRUE(r.failures.empty());
  EXPECT_TRUE(r.maintenance.empty());
}

TEST(ClusterSim, SingleNodeSystemWorks) {
  SystemScenario s = TestSystem(kYear);
  s.num_nodes = 1;
  s.nodes_per_rack = 1;
  const ClusterSimResult r = RunSim(s, 17);
  for (const FailureRecord& f : r.failures) {
    EXPECT_EQ(f.node, NodeId{0});
  }
}

}  // namespace
}  // namespace hpcfail::synth
