// Property/fuzz tests for the CSV failure reader. The reader's contract:
//
//   * it never crashes on corrupted input — it either parses or throws
//     csv::ParseError;
//   * it never silently drops a valid record — benign real-world dirt
//     (UTF-8 BOM, CRLF line endings, blank lines) parses to exactly the
//     records written, and every tolerated fixup / rejected row is counted
//     in the hpcfail_csv_* reader metrics.
//
// Corruptions are deterministic (seeded stats::Rng), so a failure here is
// reproducible from the iteration number alone.
#include "trace/csv.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "stats/rng.h"
#include "synth/generate.h"
#include "synth/scenario.h"

namespace {

using namespace hpcfail;

long long CounterValue(const char* name) {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  const obs::MetricsSnapshot::CounterValue* c = snap.FindCounter(name);
  return c != nullptr ? c->value : 0;
}

// Deltas of the reader counters around a block of parsing work.
struct CsvCounterDelta {
  long long lines, rows, blanks, errors, crlf, bom, records;

  static CsvCounterDelta Now() {
    return {CounterValue("hpcfail_csv_lines_total"),
            CounterValue("hpcfail_csv_rows_total"),
            CounterValue("hpcfail_csv_blank_lines_total"),
            CounterValue("hpcfail_csv_parse_errors_total"),
            CounterValue("hpcfail_csv_crlf_fixups_total"),
            CounterValue("hpcfail_csv_bom_fixups_total"),
            CounterValue("hpcfail_csv_failure_records_total")};
  }
  CsvCounterDelta Since(const CsvCounterDelta& start) const {
    return {lines - start.lines, rows - start.rows,     blanks - start.blanks,
            errors - start.errors, crlf - start.crlf,   bom - start.bom,
            records - start.records};
  }
};

// A small but structurally rich valid failures.csv payload.
std::string ValidFailuresCsv(std::vector<FailureRecord>* records_out) {
  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 11);
  std::vector<FailureRecord> records = trace.failures();
  records.resize(std::min<std::size_t>(records.size(), 200));
  std::ostringstream os;
  csv::WriteFailures(os, records);
  if (records_out != nullptr) *records_out = records;
  return os.str();
}

bool SameRecord(const FailureRecord& a, const FailureRecord& b) {
  return a.system == b.system && a.node == b.node && a.start == b.start &&
         a.end == b.end && a.category == b.category &&
         a.hardware == b.hardware && a.software == b.software &&
         a.environment == b.environment;
}

TEST(CsvFuzz, BenignDirtParsesEveryRecord) {
  std::vector<FailureRecord> expected;
  const std::string clean = ValidFailuresCsv(&expected);

  // BOM + CRLF on every line + interleaved blank lines: the ugliest file a
  // spreadsheet round-trip produces.
  std::string dirty = "\xEF\xBB\xBF";
  std::size_t data_lines = 0;
  std::istringstream lines(clean);
  std::string line;
  while (std::getline(lines, line)) {
    dirty += line + "\r\n";
    ++data_lines;
    if (data_lines % 7 == 0) dirty += "\r\n";  // blank line
  }
  const std::size_t blanks = data_lines / 7;

  const CsvCounterDelta before = CsvCounterDelta::Now();
  std::istringstream is(dirty);
  const std::vector<FailureRecord> parsed = csv::ReadFailures(is);

  ASSERT_EQ(parsed.size(), expected.size()) << "silently dropped a record";
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_TRUE(SameRecord(parsed[i], expected[i])) << "record " << i;
  }
  if (obs::kEnabled) {
    const CsvCounterDelta d = CsvCounterDelta::Now().Since(before);
    EXPECT_EQ(d.records, static_cast<long long>(expected.size()));
    EXPECT_EQ(d.rows, static_cast<long long>(expected.size()));
    EXPECT_EQ(d.lines, static_cast<long long>(data_lines + blanks));
    EXPECT_EQ(d.blanks, static_cast<long long>(blanks));
    EXPECT_EQ(d.crlf, static_cast<long long>(data_lines + blanks));
    EXPECT_EQ(d.bom, 1);
    EXPECT_EQ(d.errors, 0);
  }
}

TEST(CsvFuzz, OverlongFieldIsRejectedNotCrashed) {
  std::string payload = csv::FailuresHeader() + "\n";
  payload += "0,0,100,200," + std::string(100000, 'x') + ",\n";
  const CsvCounterDelta before = CsvCounterDelta::Now();
  std::istringstream is(payload);
  EXPECT_THROW(csv::ReadFailures(is), csv::ParseError);
  if (obs::kEnabled) {
    EXPECT_GE(CsvCounterDelta::Now().Since(before).errors, 1);
  }
}

TEST(CsvFuzz, RandomCorruptionsNeverCrashOrMiscount) {
  const std::string clean = ValidFailuresCsv(nullptr);
  stats::Rng rng(20260806);

  for (int iter = 0; iter < 300; ++iter) {
    std::string payload = clean;
    // 1-3 random corruptions per iteration.
    const int n_corruptions = 1 + static_cast<int>(rng.Index(3));
    for (int c = 0; c < n_corruptions; ++c) {
      switch (rng.Index(6)) {
        case 0:  // truncate at a random offset
          payload.resize(rng.Index(payload.size() + 1));
          break;
        case 1:  // stray NUL byte
          if (!payload.empty()) payload[rng.Index(payload.size())] = '\0';
          break;
        case 2:  // random byte flip
          if (!payload.empty()) {
            payload[rng.Index(payload.size())] =
                static_cast<char>(rng.Int(0, 255));
          }
          break;
        case 3: {  // overlong field injected mid-file
          const std::size_t at = rng.Index(payload.size() + 1);
          payload.insert(at, std::string(rng.Index(5000), 'z'));
          break;
        }
        case 4: {  // duplicated chunk (tears a row in two)
          const std::size_t at = rng.Index(payload.size() + 1);
          payload.insert(at, payload.substr(at / 2, rng.Index(64)));
          break;
        }
        case 5: {  // random newline insertion
          const std::size_t at = rng.Index(payload.size() + 1);
          payload.insert(at, rng.Bernoulli(0.5) ? "\n" : "\r\n");
          break;
        }
      }
    }

    const CsvCounterDelta before = CsvCounterDelta::Now();
    std::istringstream is(payload);
    bool threw = false;
    std::size_t parsed = 0;
    try {
      parsed = csv::ReadFailures(is).size();
    } catch (const csv::ParseError&) {
      threw = true;
    }
    if (!obs::kEnabled) continue;
    const CsvCounterDelta d = CsvCounterDelta::Now().Since(before);
    if (threw) {
      // A rejected file is never silent: the error was counted.
      EXPECT_GE(d.errors, 1) << "iteration " << iter;
    } else {
      // A parsed file accounts for every line: what was returned matches
      // what the reader metrics say it parsed, with nothing unaccounted.
      EXPECT_EQ(d.errors, 0) << "iteration " << iter;
      EXPECT_EQ(d.records, static_cast<long long>(parsed))
          << "iteration " << iter;
      EXPECT_EQ(d.rows, d.records) << "iteration " << iter;
      EXPECT_EQ(d.lines, 1 + d.rows + d.blanks) << "iteration " << iter;
    }
  }
}

TEST(CsvFuzz, TruncationAtEveryLineBoundaryParsesPrefix) {
  std::vector<FailureRecord> expected;
  const std::string clean = ValidFailuresCsv(&expected);
  // Cut the file after each complete line: every prefix is a valid file
  // holding exactly the first k records — none may be dropped.
  std::vector<std::size_t> boundaries;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (clean[i] == '\n') boundaries.push_back(i + 1);
  }
  ASSERT_EQ(boundaries.size(), expected.size() + 1);  // header + rows
  for (std::size_t k = 0; k < boundaries.size(); ++k) {
    std::istringstream is(clean.substr(0, boundaries[k]));
    const std::vector<FailureRecord> parsed = csv::ReadFailures(is);
    EXPECT_EQ(parsed.size(), k) << "prefix of " << boundaries[k] << " bytes";
  }
}

}  // namespace
