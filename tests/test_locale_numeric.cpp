// Numeric parsing must be locale-independent: a process running under a
// comma-decimal LC_NUMERIC (de_DE and friends) must parse "0.25" in CSV
// files, scenario configs and command-line flags exactly as the C locale
// does. These tests force a hostile locale two ways — a custom numpunct
// facet installed as the C++ global locale (always available), plus
// setlocale() with real comma-decimal locales when the host has them — and
// assert every double-parsing entry point is unaffected.
#include <gtest/gtest.h>

#include <clocale>
#include <filesystem>
#include <locale>
#include <sstream>
#include <string>
#include <vector>

#include "engine/arg_parser.h"
#include "synth/generate.h"
#include "synth/scenario.h"
#include "synth/scenario_config.h"
#include "trace/csv.h"
#include "trace/numeric.h"
#include "trace/parse_util.h"

namespace hpcfail {
namespace {

// numpunct facet that makes ',' the decimal separator — the behavior a
// de_DE.UTF-8 global locale would install, minus the OS dependency.
class CommaDecimal : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

// Installs the hostile locale for one test's lifetime: C++ global locale
// with the comma facet, and (when the host provides one) a real
// comma-decimal C locale for LC_NUMERIC so stod-style paths are stressed
// too. Restores both on destruction.
class HostileLocale {
 public:
  HostileLocale()
      : saved_cxx_(std::locale()),
        saved_c_(std::setlocale(LC_NUMERIC, nullptr)) {
    std::locale::global(std::locale(std::locale::classic(),
                                    new CommaDecimal));
    for (const char* name :
         {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR"}) {
      if (std::setlocale(LC_NUMERIC, name) != nullptr) {
        c_locale_applied_ = true;
        break;
      }
    }
  }
  ~HostileLocale() {
    std::setlocale(LC_NUMERIC, saved_c_.c_str());
    std::locale::global(saved_cxx_);
  }

  bool c_locale_applied() const { return c_locale_applied_; }

 private:
  std::locale saved_cxx_;
  std::string saved_c_;
  bool c_locale_applied_ = false;
};

TEST(LocaleNumeric, HostileLocaleActuallyChangesStreamParsing) {
  // Sanity: the facet really is hostile — an un-imbued stream under the
  // global locale stops a "0.25" parse at the '.'.
  HostileLocale hostile;
  std::istringstream is("0.25");
  double v = -1.0;
  is >> v;
  EXPECT_NE(v, 0.25) << "global locale not applied; test is vacuous";
}

TEST(LocaleNumeric, ParseDoubleTextIgnoresGlobalLocale) {
  HostileLocale hostile;
  EXPECT_EQ(ParseDoubleText("0.25"), 0.25);
  EXPECT_EQ(ParseDoubleText("-1.5e3"), -1500.0);
  EXPECT_EQ(ParseDoubleText("  +2.5"), 2.5);
  EXPECT_EQ(ParseDoubleText("1000000"), 1e6);
  // Comma decimals are rejected in every locale: trace files are specified
  // with '.' decimals, so "3,14" is a format error, not 3.14 (and not 3).
  EXPECT_FALSE(ParseDoubleText("3,14").has_value());
  EXPECT_FALSE(ParseDoubleText("1.234,5").has_value());
  EXPECT_FALSE(ParseDoubleText("").has_value());
  EXPECT_FALSE(ParseDoubleText("abc").has_value());
  EXPECT_FALSE(ParseDoubleText("1.5x").has_value());
  EXPECT_FALSE(ParseDoubleText("+-1").has_value());
}

TEST(LocaleNumeric, ArgParserDoubleIgnoresGlobalLocale) {
  HostileLocale hostile;
  double scale = 1.0;
  engine::ArgParser parser("test", "");
  parser.AddDouble("scale", &scale, "scale factor");
  const char* argv[] = {"test", "--scale", "0.25"};
  std::string error;
  ASSERT_TRUE(parser.TryParse(3, argv, &error)) << error;
  EXPECT_EQ(scale, 0.25);

  const char* argv_bad[] = {"test", "--scale", "0,25"};
  EXPECT_FALSE(parser.TryParse(3, argv_bad, &error));
}

TEST(LocaleNumeric, ScenarioConfigIgnoresGlobalLocale) {
  HostileLocale hostile;
  std::istringstream config(
      "duration_years = 0.5\n"
      "[system]\n"
      "preset = group1\n"
      "nodes = 8\n"
      "base_rate_scale = 0.25\n");
  const synth::Scenario sc = synth::LoadScenarioConfig(config);
  EXPECT_EQ(sc.duration, static_cast<TimeSec>(0.5 * kYear));

  std::istringstream comma("duration_years = 0,5\n[system]\npreset = group1\n");
  EXPECT_THROW(synth::LoadScenarioConfig(comma), synth::ConfigError);
}

TEST(LocaleNumeric, ParseUtilIgnoresGlobalLocale) {
  // The shared field/timestamp helpers behind the LANL importer, the CSV
  // reader, and every log-format adapter: all integer paths go through
  // from_chars and hand-rolled calendar math, so a comma-decimal locale
  // must change nothing.
  HostileLocale hostile;
  EXPECT_EQ(parse::ParseInt("12345"), 12345);
  EXPECT_EQ(parse::ParseInt("-7"), -7);
  EXPECT_FALSE(parse::ParseInt("1.234").has_value());
  EXPECT_FALSE(parse::ParseInt("1,234").has_value());
  EXPECT_FALSE(parse::ParseInt("").has_value());

  // 2004-06-14 03:12:45 UTC == 1087182765, in all three timestamp grammars.
  EXPECT_EQ(parse::ParseUsTimestamp("06/14/2004 03:12:45"), 1087182765);
  EXPECT_EQ(parse::ParseUsTimestamp("06/14/2004 03:12"), 1087182765 - 45);
  EXPECT_EQ(parse::ParseIsoTimestamp("2004-06-14 03:12:45"), 1087182765);
  EXPECT_EQ(parse::ParseIsoTimestamp("2004-06-14T03:12:45.250000"),
            1087182765);
  EXPECT_EQ(parse::ParseSyslogTimestamp("Jun 14 03:12:45", 2004),
            1087182765);
  EXPECT_FALSE(parse::ParseIsoTimestamp("2004-06-14 03:12:45.").has_value());
  EXPECT_FALSE(parse::ParseUsTimestamp("99/99/9999 00:00").has_value());
  EXPECT_FALSE(parse::ParseSyslogTimestamp("Xyz 14 03:12:45", 2004)
                   .has_value());

  // Field splitting is byte-oriented: grouping separators don't apply.
  const std::vector<std::string> fields =
      parse::SplitTrimmed("a, \"b\" ,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(LocaleNumeric, CsvRoundTripIgnoresGlobalLocale) {
  // Save a trace under the classic locale, then load it twice — once
  // normally, once under the hostile locale. Identical traces prove the
  // reader never consults the global locale.
  const std::string dir = ::testing::TempDir() + "/hpcfail_locale_csv";
  std::filesystem::remove_all(dir);
  const Trace made = synth::GenerateTrace(synth::TinyScenario(), 17);
  csv::SaveTrace(made, dir);

  const Trace classic = csv::LoadTrace(dir);
  Trace hostile_load;
  {
    HostileLocale hostile;
    hostile_load = csv::LoadTrace(dir);
  }
  EXPECT_EQ(hostile_load.failures(), classic.failures());
  EXPECT_EQ(hostile_load.temperatures().size(), classic.temperatures().size());
  for (std::size_t i = 0; i < classic.temperatures().size(); ++i) {
    EXPECT_EQ(hostile_load.temperatures()[i].celsius,
              classic.temperatures()[i].celsius)
        << "sample " << i;
  }
  ASSERT_EQ(hostile_load.neutron_series().size(),
            classic.neutron_series().size());
  for (std::size_t i = 0; i < classic.neutron_series().size(); ++i) {
    EXPECT_EQ(hostile_load.neutron_series()[i].counts_per_minute,
              classic.neutron_series()[i].counts_per_minute)
        << "sample " << i;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hpcfail
