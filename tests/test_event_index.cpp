#include "core/event_index.h"

#include <gtest/gtest.h>

#include "stats/rng.h"
#include "synth/generate.h"

namespace hpcfail::core {
namespace {

// A hand-built trace with known failures.
Trace HandTrace() {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sys0";
  c.num_nodes = 8;
  c.procs_per_node = 4;
  c.observed = {0, 100 * kDay};
  c.layout = MachineLayout::Grid(8, 4, 2);  // racks {0..3}, {4..7}
  t.AddSystem(c);
  SystemConfig d = c;
  d.id = SystemId{1};
  d.name = "sys1";
  t.AddSystem(d);

  // sys0: node 1 fails at day 10 (hw/cpu), day 12 (hw/memory);
  //        node 2 fails at day 11 (sw/dst); node 5 at day 11 (network).
  t.AddFailure(MakeHardwareFailure(SystemId{0}, NodeId{1}, 10 * kDay,
                                   10 * kDay + kHour, HardwareComponent::kCpu));
  t.AddFailure(MakeHardwareFailure(SystemId{0}, NodeId{1}, 12 * kDay,
                                   12 * kDay + kHour,
                                   HardwareComponent::kMemory));
  t.AddFailure(MakeSoftwareFailure(SystemId{0}, NodeId{2}, 11 * kDay,
                                   11 * kDay + kHour, SoftwareComponent::kDst));
  t.AddFailure(MakeFailure(SystemId{0}, NodeId{5}, 11 * kDay,
                           11 * kDay + kHour, FailureCategory::kNetwork));
  // sys1: one failure, should not leak into sys0 queries.
  t.AddFailure(MakeFailure(SystemId{1}, NodeId{0}, 10 * kDay,
                           10 * kDay + kHour, FailureCategory::kHuman));
  t.Finalize();
  return t;
}

TEST(EventIndex, IndexesAllSystemsByDefault) {
  const Trace t = HandTrace();
  const EventIndex idx(t);
  EXPECT_EQ(idx.systems().size(), 2u);
  EXPECT_EQ(idx.Count(EventFilter::Any()), 5);
}

TEST(EventIndex, RestrictsToRequestedSystems) {
  const Trace t = HandTrace();
  const std::vector<SystemId> only = {SystemId{0}};
  const EventIndex idx(t, only);
  EXPECT_EQ(idx.Count(EventFilter::Any()), 4);
  EXPECT_THROW(idx.failures_of(SystemId{1}), std::out_of_range);
}

TEST(EventIndex, CountAtNodeRespectsHalfOpenWindow) {
  const Trace t = HandTrace();
  const EventIndex idx(t);
  // Window (10d, 12d]: catches the day-12 failure, not the day-10 one.
  EXPECT_EQ(idx.CountAtNode(SystemId{0}, NodeId{1}, {10 * kDay, 12 * kDay},
                            EventFilter::Any()),
            1);
  // Window (9d, 10d]: catches the day-10 failure exactly at the boundary.
  EXPECT_EQ(idx.CountAtNode(SystemId{0}, NodeId{1}, {9 * kDay, 10 * kDay},
                            EventFilter::Any()),
            1);
  // Window (12d, 20d]: nothing.
  EXPECT_EQ(idx.CountAtNode(SystemId{0}, NodeId{1}, {12 * kDay, 20 * kDay},
                            EventFilter::Any()),
            0);
}

TEST(EventIndex, FiltersBySubcategory) {
  const Trace t = HandTrace();
  const EventIndex idx(t);
  EXPECT_EQ(idx.CountAtNode(SystemId{0}, NodeId{1}, {0, 50 * kDay},
                            EventFilter::Of(HardwareComponent::kMemory)),
            1);
  EXPECT_EQ(idx.CountAtNode(SystemId{0}, NodeId{1}, {0, 50 * kDay},
                            EventFilter::Of(HardwareComponent::kCpu)),
            1);
  EXPECT_EQ(idx.CountAtNode(SystemId{0}, NodeId{1}, {0, 50 * kDay},
                            EventFilter::Of(SoftwareComponent::kDst)),
            0);
}

TEST(EventIndex, RackPeersExcludeSelf) {
  const Trace t = HandTrace();
  const EventIndex idx(t);
  // Node 1's rack is {0,1,2,3}. Window (10d, 12d] contains node 2's failure
  // (same rack) and node 1's own day-12 failure (excluded: self).
  EXPECT_TRUE(idx.AnyAtRackPeers(SystemId{0}, NodeId{1},
                                 {10 * kDay, 12 * kDay}, EventFilter::Any()));
  // Node 5's rack is {4..7}: no peer failures there.
  EXPECT_FALSE(idx.AnyAtRackPeers(SystemId{0}, NodeId{5},
                                  {0, 50 * kDay}, EventFilter::Any()));
}

TEST(EventIndex, DistinctRackPeerCounting) {
  const Trace t = HandTrace();
  const EventIndex idx(t);
  int peers = 0;
  const int hit = idx.DistinctRackPeersWithEvent(
      SystemId{0}, NodeId{1}, {9 * kDay, 13 * kDay}, EventFilter::Any(),
      &peers);
  EXPECT_EQ(peers, 3);  // rack of 4 minus self
  EXPECT_EQ(hit, 1);    // only node 2
}

TEST(EventIndex, DistinctSystemPeerCounting) {
  const Trace t = HandTrace();
  const EventIndex idx(t);
  int peers = 0;
  const int hit = idx.DistinctSystemPeersWithEvent(
      SystemId{0}, NodeId{1}, {9 * kDay, 13 * kDay}, EventFilter::Any(),
      &peers);
  EXPECT_EQ(peers, 7);
  EXPECT_EQ(hit, 2);  // nodes 2 and 5
}

TEST(EventIndex, RepeatFailuresOnOneNodeCountOnceAsPeer) {
  const Trace t = HandTrace();
  const EventIndex idx(t);
  // From node 2's perspective: node 1 fails twice in (9d, 13d], node 5 once.
  int peers = 0;
  const int hit = idx.DistinctSystemPeersWithEvent(
      SystemId{0}, NodeId{2}, {9 * kDay, 13 * kDay}, EventFilter::Any(),
      &peers);
  EXPECT_EQ(hit, 2);  // node 1 (twice -> once) + node 5
}

TEST(EventIndex, NodeCounts) {
  const Trace t = HandTrace();
  const EventIndex idx(t);
  const std::vector<int> counts =
      idx.NodeCounts(SystemId{0}, EventFilter::Any());
  ASSERT_EQ(counts.size(), 8u);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[5], 1);
  EXPECT_EQ(counts[0], 0);
}

TEST(EventIndex, ForEachVisitsMatchesOnly) {
  const Trace t = HandTrace();
  const EventIndex idx(t);
  int visits = 0;
  idx.ForEach(EventFilter::Of(FailureCategory::kHardware),
              [&visits](SystemId sys, const FailureRecord& f) {
                EXPECT_EQ(sys, SystemId{0});
                EXPECT_EQ(f.category, FailureCategory::kHardware);
                ++visits;
              });
  EXPECT_EQ(visits, 2);
}

TEST(EventFilter, DescribeIsHumanReadable) {
  EXPECT_EQ(EventFilter::Any().Describe(), "any");
  EXPECT_EQ(EventFilter::Of(FailureCategory::kNetwork).Describe(), "network");
  EXPECT_EQ(EventFilter::Of(HardwareComponent::kFan).Describe(), "fan");
  EXPECT_EQ(EventFilter::Of(EnvironmentEvent::kUps).Describe(), "ups");
}

// Property: binary-searched window queries agree with a naive scan on a
// generated trace, across random windows.
TEST(EventIndexProperty, WindowQueriesMatchNaiveScan) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 3);
  const EventIndex idx(t);
  const SystemId sys = t.systems()[0].id;
  const auto failures = t.FailuresOfSystem(sys);
  stats::Rng rng(99);
  const EventFilter filters[] = {
      EventFilter::Any(), EventFilter::Of(FailureCategory::kHardware),
      EventFilter::Of(HardwareComponent::kMemory)};
  for (int rep = 0; rep < 200; ++rep) {
    const NodeId node{static_cast<int>(rng.Index(16))};
    const TimeSec begin = rng.Int(0, 180 * kDay);
    const TimeInterval w{begin, begin + rng.Int(kHour, 30 * kDay)};
    for (const EventFilter& f : filters) {
      int naive = 0;
      for (const FailureRecord& r : failures) {
        if (r.node == node && r.start > w.begin && r.start <= w.end &&
            f.Matches(r)) {
          ++naive;
        }
      }
      EXPECT_EQ(idx.CountAtNode(sys, node, w, f), naive);
    }
  }
}

}  // namespace
}  // namespace hpcfail::core
