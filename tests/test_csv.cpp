#include "trace/csv.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "synth/generate.h"

namespace hpcfail::csv {
namespace {

TEST(SplitLine, BasicSplitting) {
  EXPECT_EQ(SplitLine("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitLine(""), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitLine(","), (std::vector<std::string>{"", ""}));
}

TEST(Failures, RoundTrip) {
  std::vector<FailureRecord> in;
  in.push_back(MakeHardwareFailure(SystemId{1}, NodeId{2}, 100, 200,
                                   HardwareComponent::kMemory));
  in.push_back(MakeSoftwareFailure(SystemId{1}, NodeId{3}, 300, 400,
                                   SoftwareComponent::kDst));
  in.push_back(MakeEnvironmentFailure(SystemId{2}, NodeId{0}, 500, 600,
                                      EnvironmentEvent::kUps));
  in.push_back(
      MakeFailure(SystemId{2}, NodeId{1}, 700, 800, FailureCategory::kHuman));
  std::stringstream ss;
  WriteFailures(ss, in);
  const std::vector<FailureRecord> out = ReadFailures(ss);
  EXPECT_EQ(in, out);
}

TEST(Failures, CrlfInputImportsIdenticallyToLf) {
  // A Windows-edited trace used to fail with "bad header" (the '\r' glued to
  // the header) or leave '\r' on the last field of every row.
  std::vector<FailureRecord> in;
  in.push_back(MakeHardwareFailure(SystemId{1}, NodeId{2}, 100, 200,
                                   HardwareComponent::kMemory));
  in.push_back(
      MakeFailure(SystemId{2}, NodeId{1}, 700, 800, FailureCategory::kHuman));
  std::stringstream lf;
  WriteFailures(lf, in);
  // Rewrite with CRLF line endings.
  std::string text = lf.str();
  std::string crlf_text;
  for (char c : text) {
    if (c == '\n') crlf_text += '\r';
    crlf_text += c;
  }
  std::stringstream crlf(crlf_text);
  const std::vector<FailureRecord> from_crlf = ReadFailures(crlf);
  EXPECT_EQ(from_crlf, in);
}

TEST(Failures, Utf8BomInputImportsIdenticallyToPlain) {
  // Spreadsheet "CSV UTF-8" exports prefix a byte-order mark; glued to the
  // first header field it used to fail the header check just like CRLF did.
  std::vector<FailureRecord> in;
  in.push_back(MakeHardwareFailure(SystemId{1}, NodeId{2}, 100, 200,
                                   HardwareComponent::kMemory));
  in.push_back(
      MakeFailure(SystemId{2}, NodeId{1}, 700, 800, FailureCategory::kHuman));
  std::stringstream plain;
  WriteFailures(plain, in);
  std::stringstream bom("\xEF\xBB\xBF" + plain.str());
  EXPECT_EQ(ReadFailures(bom), in);
}

TEST(Failures, BomAndCrlfTogetherImportIdentically) {
  std::vector<FailureRecord> in;
  in.push_back(MakeSoftwareFailure(SystemId{3}, NodeId{0}, 10, 20,
                                   SoftwareComponent::kOs));
  std::stringstream lf;
  WriteFailures(lf, in);
  std::string crlf_text = "\xEF\xBB\xBF";
  for (char c : lf.str()) {
    if (c == '\n') crlf_text += '\r';
    crlf_text += c;
  }
  std::stringstream ss(crlf_text);
  EXPECT_EQ(ReadFailures(ss), in);
}

TEST(Failures, BomOnlyOnFirstLineIsStripped) {
  // A BOM sequence inside a data row is not whitespace — it must still be
  // rejected as a malformed field, not silently stripped.
  std::stringstream ss(
      "system,node,start,end,category,subcategory\n"
      "\xEF\xBB\xBF"
      "1,2,100,200,hardware,memory\n");
  EXPECT_THROW(ReadFailures(ss), ParseError);
}

TEST(StripLeadingBom, OnlyStripsExactPrefix) {
  std::string s = "\xEF\xBB\xBFsystem";
  StripLeadingBom(s);
  EXPECT_EQ(s, "system");
  std::string partial = "\xEF\xBBx";
  StripLeadingBom(partial);
  EXPECT_EQ(partial, "\xEF\xBBx");
  std::string empty;
  StripLeadingBom(empty);
  EXPECT_EQ(empty, "");
}

TEST(Failures, CrlfOnlyBlankLinesAreSkipped) {
  std::stringstream ss(
      "system,node,start,end,category,subcategory\r\n\r\n1,2,3,4,human,\r\n");
  EXPECT_EQ(ReadFailures(ss).size(), 1u);
}

TEST(Systems, CrlfPreservesTrailingStringField) {
  // The last field is the one that used to keep the stray '\r'; check a
  // stream whose last column is numeric and one mid-row string column.
  std::stringstream ss(
      "system,name,group,num_nodes,procs_per_node,observed_begin,"
      "observed_end\r\n0,alpha,smp,8,4,0,1000\r\n");
  const auto systems = ReadSystems(ss);
  ASSERT_EQ(systems.size(), 1u);
  EXPECT_EQ(systems[0].name, "alpha");
  EXPECT_EQ(systems[0].observed.end, 1000);
}

TEST(Failures, RejectsBadHeader) {
  std::stringstream ss("wrong,header\n");
  EXPECT_THROW(ReadFailures(ss), ParseError);
}

TEST(Failures, RejectsWrongFieldCount) {
  std::stringstream ss("system,node,start,end,category,subcategory\n1,2,3\n");
  try {
    ReadFailures(ss);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Failures, RejectsUnknownCategory) {
  std::stringstream ss(
      "system,node,start,end,category,subcategory\n1,2,3,4,gremlins,\n");
  EXPECT_THROW(ReadFailures(ss), ParseError);
}

TEST(Failures, RejectsSubcategoryOnPlainCategory) {
  std::stringstream ss(
      "system,node,start,end,category,subcategory\n1,2,3,4,human,cpu\n");
  EXPECT_THROW(ReadFailures(ss), ParseError);
}

TEST(Failures, RejectsNonNumericFields) {
  std::stringstream ss(
      "system,node,start,end,category,subcategory\n1,two,3,4,human,\n");
  EXPECT_THROW(ReadFailures(ss), ParseError);
}

TEST(Failures, SkipsEmptyLines) {
  std::stringstream ss(
      "system,node,start,end,category,subcategory\n\n1,2,3,4,human,\n\n");
  EXPECT_EQ(ReadFailures(ss).size(), 1u);
}

TEST(Failures, EmptyInputThrows) {
  std::stringstream ss;
  EXPECT_THROW(ReadFailures(ss), ParseError);
}

TEST(Maintenance, RoundTrip) {
  std::vector<MaintenanceRecord> in = {{SystemId{0}, NodeId{1}, 10, 20},
                                       {SystemId{1}, NodeId{2}, 30, 40}};
  std::stringstream ss;
  WriteMaintenance(ss, in);
  EXPECT_EQ(ReadMaintenance(ss), in);
}

TEST(Maintenance, RejectsNegativeWindow) {
  std::stringstream ss("system,node,start,end\n0,1,100,50\n");
  EXPECT_THROW(ReadMaintenance(ss), ParseError);
}

TEST(Jobs, RoundTrip) {
  std::vector<JobRecord> in;
  JobRecord j;
  j.id = JobId{7};
  j.system = SystemId{1};
  j.user = UserId{42};
  j.submit = 100;
  j.dispatch = 150;
  j.end = 500;
  j.procs = 8;
  j.nodes = {NodeId{3}, NodeId{5}};
  j.killed_by_node_failure = true;
  in.push_back(j);
  j.id = JobId{8};
  j.nodes = {NodeId{0}};
  j.killed_by_node_failure = false;
  in.push_back(j);
  std::stringstream ss;
  WriteJobs(ss, in);
  EXPECT_EQ(ReadJobs(ss), in);
}

TEST(Jobs, RejectsInconsistentRecord) {
  std::stringstream ss(
      "job,system,user,submit,dispatch,end,procs,nodes,killed_by_node_failure"
      "\n1,0,1,100,50,200,4,0;1,0\n");
  EXPECT_THROW(ReadJobs(ss), ParseError);
}

TEST(Temperatures, RoundTrip) {
  std::vector<TemperatureSample> in = {{SystemId{0}, NodeId{1}, 100, 25.5},
                                       {SystemId{0}, NodeId{2}, 200, -3.25}};
  std::stringstream ss;
  WriteTemperatures(ss, in);
  EXPECT_EQ(ReadTemperatures(ss), in);
}

TEST(Neutrons, RoundTrip) {
  std::vector<NeutronSample> in = {{0, 4000.5}, {kMonth, 4100.25}};
  std::stringstream ss;
  WriteNeutrons(ss, in);
  EXPECT_EQ(ReadNeutrons(ss), in);
}

TEST(Systems, RoundTrip) {
  SystemConfig c;
  c.id = SystemId{2};
  c.name = "system2";
  c.group = SystemGroup::kNuma;
  c.num_nodes = 32;
  c.procs_per_node = 128;
  c.observed = {0, kYear};
  std::stringstream ss;
  WriteSystems(ss, {c});
  const auto out = ReadSystems(ss);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, c.id);
  EXPECT_EQ(out[0].name, c.name);
  EXPECT_EQ(out[0].group, c.group);
  EXPECT_EQ(out[0].num_nodes, c.num_nodes);
  EXPECT_EQ(out[0].procs_per_node, c.procs_per_node);
  EXPECT_EQ(out[0].observed, c.observed);
}

TEST(Layout, RoundTrip) {
  const MachineLayout layout = MachineLayout::Grid(8, 4, 2);
  std::stringstream ss;
  WriteLayout(ss, SystemId{5}, layout);
  const auto rows = ReadLayout(ss);
  ASSERT_EQ(rows.size(), 8u);
  for (const auto& [sys, p] : rows) {
    EXPECT_EQ(sys, SystemId{5});
    EXPECT_EQ(layout.placement(p.node), p);
  }
}

TEST(TraceDirectory, SaveLoadRoundTrip) {
  const auto scenario = synth::TinyScenario(60 * kDay);
  const Trace in = synth::GenerateTrace(scenario, 7);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hpcfail_csv_test").string();
  SaveTrace(in, dir);
  const Trace out = LoadTrace(dir);
  EXPECT_EQ(in.failures(), out.failures());
  EXPECT_EQ(in.maintenance(), out.maintenance());
  EXPECT_EQ(in.jobs(), out.jobs());
  EXPECT_EQ(in.neutron_series(), out.neutron_series());
  ASSERT_EQ(in.systems().size(), out.systems().size());
  for (std::size_t i = 0; i < in.systems().size(); ++i) {
    EXPECT_EQ(in.systems()[i].name, out.systems()[i].name);
    EXPECT_EQ(in.systems()[i].layout.placements(),
              out.systems()[i].layout.placements());
  }
  // Temperatures round-trip through decimal formatting; spot-check counts
  // and one value rather than full bitwise equality.
  ASSERT_EQ(in.temperatures().size(), out.temperatures().size());
  if (!in.temperatures().empty()) {
    EXPECT_NEAR(in.temperatures()[0].celsius, out.temperatures()[0].celsius,
                1e-4);
  }
  std::filesystem::remove_all(dir);
}

TEST(TraceDirectory, LoadMissingDirectoryThrows) {
  EXPECT_THROW(LoadTrace("/nonexistent/hpcfail"), std::runtime_error);
}

TEST(TraceDirectory, CrlfDirectoryLoadsIdenticallyToLf) {
  // Rewrite every CSV of a saved trace with CRLF endings (as a Windows
  // editor would) and check the loaded trace matches the LF original.
  const auto scenario = synth::TinyScenario(60 * kDay);
  const Trace in = synth::GenerateTrace(scenario, 7);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hpcfail_csv_crlf_test")
          .string();
  SaveTrace(in, dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::string text;
    {
      std::ifstream is(entry.path(), std::ios::binary);
      std::stringstream buf;
      buf << is.rdbuf();
      text = buf.str();
    }
    std::string crlf;
    for (char c : text) {
      if (c == '\n') crlf += '\r';
      crlf += c;
    }
    std::ofstream os(entry.path(), std::ios::binary);
    os << crlf;
  }
  const Trace out = LoadTrace(dir);
  EXPECT_EQ(in.failures(), out.failures());
  EXPECT_EQ(in.maintenance(), out.maintenance());
  EXPECT_EQ(in.jobs(), out.jobs());
  EXPECT_EQ(in.neutron_series(), out.neutron_series());
  ASSERT_EQ(in.systems().size(), out.systems().size());
  for (std::size_t i = 0; i < in.systems().size(); ++i) {
    EXPECT_EQ(in.systems()[i].name, out.systems()[i].name);
    EXPECT_EQ(in.systems()[i].layout.placements(),
              out.systems()[i].layout.placements());
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hpcfail::csv
