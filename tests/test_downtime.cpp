#include "core/downtime.h"

#include <gtest/gtest.h>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

Trace HandTrace() {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sys";
  c.num_nodes = 4;
  c.procs_per_node = 4;
  c.observed = {0, 100 * kDay};
  t.AddSystem(c);
  // Node 0: 2h hardware outage; node 1: 6h software outage + 4h maintenance.
  t.AddFailure(MakeHardwareFailure(SystemId{0}, NodeId{0}, 10 * kDay,
                                   10 * kDay + 2 * kHour,
                                   HardwareComponent::kCpu));
  t.AddFailure(MakeSoftwareFailure(SystemId{0}, NodeId{1}, 20 * kDay,
                                   20 * kDay + 6 * kHour,
                                   SoftwareComponent::kOs));
  t.AddMaintenance({SystemId{0}, NodeId{1}, 30 * kDay, 30 * kDay + 4 * kHour});
  t.Finalize();
  return t;
}

TEST(Downtime, SummariesAreExact) {
  const Trace t = HandTrace();
  const EventIndex idx(t);
  const DowntimeAnalysis a = AnalyzeDowntime(idx, SystemId{0});
  EXPECT_EQ(a.overall.count, 2);
  EXPECT_DOUBLE_EQ(a.overall.mean_hours, 4.0);
  EXPECT_DOUBLE_EQ(a.overall.median_hours, 4.0);
  EXPECT_DOUBLE_EQ(a.overall.total_hours, 8.0);
  const auto hw = static_cast<std::size_t>(FailureCategory::kHardware);
  const auto sw = static_cast<std::size_t>(FailureCategory::kSoftware);
  EXPECT_EQ(a.by_category[hw].count, 1);
  EXPECT_DOUBLE_EQ(a.by_category[hw].mean_hours, 2.0);
  EXPECT_DOUBLE_EQ(a.by_category[sw].mean_hours, 6.0);
}

TEST(Downtime, AvailabilityIncludesMaintenance) {
  const Trace t = HandTrace();
  const EventIndex idx(t);
  const DowntimeAnalysis a = AnalyzeDowntime(idx, SystemId{0});
  // Total down: 2 + 6 + 4 = 12 hours over 4 nodes x 2400 hours.
  EXPECT_NEAR(a.availability, 1.0 - 12.0 / (4.0 * 2400.0), 1e-12);
  // Worst node is node 1 (10h down).
  EXPECT_EQ(a.worst_node, NodeId{1});
  EXPECT_NEAR(a.worst_node_availability, 1.0 - 10.0 / 2400.0, 1e-12);
}

TEST(Downtime, EmptySystem) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "idle";
  c.num_nodes = 2;
  c.procs_per_node = 4;
  c.observed = {0, kYear};
  t.AddSystem(c);
  t.Finalize();
  const EventIndex idx(t);
  const DowntimeAnalysis a = AnalyzeDowntime(idx, SystemId{0});
  EXPECT_EQ(a.overall.count, 0);
  EXPECT_DOUBLE_EQ(a.availability, 1.0);
}

TEST(Downtime, GeneratedTraceIsPlausible) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 9);
  const EventIndex idx(t);
  const DowntimeAnalysis a = AnalyzeDowntime(idx, t.systems()[0].id);
  EXPECT_GT(a.overall.count, 50);
  // Downtime medians around the configured 2h lognormal median.
  EXPECT_GT(a.overall.median_hours, 0.5);
  EXPECT_LT(a.overall.median_hours, 8.0);
  EXPECT_GT(a.availability, 0.8);
  EXPECT_LE(a.availability, 1.0);
  EXPECT_GE(a.overall.p90_hours, a.overall.median_hours);
}

}  // namespace
}  // namespace hpcfail::core
