#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("| 22"), std::string::npos);
  EXPECT_NE(out.find("+-"), std::string::npos);
}

TEST(Table, RejectsWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(FormatPercent, Formatting) {
  const stats::Proportion p = stats::WilsonProportion(72, 1000);
  EXPECT_EQ(FormatPercent(p), "7.20%");
  const std::string with_ci = FormatPercent(p, true);
  EXPECT_NE(with_ci.find('['), std::string::npos);
  EXPECT_EQ(FormatPercent(stats::WilsonProportion(0, 0)), "n/a");
}

TEST(FormatFactor, Formatting) {
  EXPECT_EQ(FormatFactor(14.26), "14.3x");
  EXPECT_EQ(FormatFactor(150.4), "150x");
  EXPECT_EQ(FormatFactor(std::numeric_limits<double>::quiet_NaN()), "n/a");
}

TEST(SignificanceMarker, Levels) {
  stats::TwoProportionTest t;
  EXPECT_EQ(SignificanceMarker(t), "");
  t.significant_95 = true;
  EXPECT_EQ(SignificanceMarker(t), "*");
  t.significant_99 = true;
  EXPECT_EQ(SignificanceMarker(t), "**");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(FormatDouble(1.23456, 3), "1.235");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(GroupSelection, SplitsByArchitecture) {
  const Trace t =
      synth::GenerateTrace(synth::LanlLikeScenario(0.05, 30 * kDay), 91);
  const auto g1 = SystemsOfGroup(t, SystemGroup::kSmp);
  const auto g2 = SystemsOfGroup(t, SystemGroup::kNuma);
  EXPECT_EQ(g1.size(), 7u);
  EXPECT_EQ(g2.size(), 3u);
}

TEST(GroupSelection, SystemsWithJobsAndTemperature) {
  const Trace t =
      synth::GenerateTrace(synth::LanlLikeScenario(0.05, 30 * kDay), 92);
  const auto with_jobs = SystemsWithJobs(t);
  EXPECT_EQ(with_jobs.size(), 2u);  // system8- and system20-like
  const auto with_temp = SystemsWithTemperature(t);
  EXPECT_EQ(with_temp.size(), 1u);  // system20-like
}

TEST(ShapeCheck, PrintsVerdict) {
  std::ostringstream os;
  PrintShapeCheck(os, "test factor", 12.5, "~10-20x", true);
  EXPECT_NE(os.str().find("[shape OK]"), std::string::npos);
  EXPECT_NE(os.str().find("12.5x"), std::string::npos);
  std::ostringstream os2;
  PrintShapeCheck(os2, "test factor", 0.5, "~10-20x", false);
  EXPECT_NE(os2.str().find("[shape MISS]"), std::string::npos);
}

}  // namespace
}  // namespace hpcfail::core
