#include "stats/correlation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.h"

namespace hpcfail::stats {
namespace {

TEST(Pearson, PerfectPositive) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  const CorrelationResult r = PearsonCorrelation(x, y);
  EXPECT_NEAR(r.r, 1.0, 1e-12);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_TRUE(r.significant_95);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y).r, -1.0, 1e-12);
}

TEST(Pearson, KnownValue) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 1, 4, 3, 5};
  // r = 0.8 for this classic example.
  EXPECT_NEAR(PearsonCorrelation(x, y).r, 0.8, 1e-12);
}

TEST(Pearson, ConstantInputGivesZero) {
  const std::vector<double> x = {3, 3, 3, 3};
  const std::vector<double> y = {1, 2, 3, 4};
  const CorrelationResult r = PearsonCorrelation(x, y);
  EXPECT_DOUBLE_EQ(r.r, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(Pearson, RejectsBadInput) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1, 2};
  EXPECT_THROW(PearsonCorrelation(x, y), std::invalid_argument);
  const std::vector<double> z = {1, 2, 3};
  EXPECT_THROW(PearsonCorrelation(x, z), std::invalid_argument);
}

TEST(Pearson, InvariantUnderAffineTransform) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(rng.Normal());
    y.push_back(0.5 * x.back() + rng.Normal());
  }
  const double r1 = PearsonCorrelation(x, y).r;
  std::vector<double> x2;
  for (double v : x) x2.push_back(3.0 * v - 7.0);
  EXPECT_NEAR(PearsonCorrelation(x2, y).r, r1, 1e-12);
}

TEST(Pearson, IndependentDataNotSignificant) {
  Rng rng(99);
  int significant = 0;
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<double> x, y;
    for (int i = 0; i < 40; ++i) {
      x.push_back(rng.Normal());
      y.push_back(rng.Normal());
    }
    if (PearsonCorrelation(x, y).significant_95) ++significant;
  }
  EXPECT_LT(significant, 25);  // ~5% expected
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // x^3
  EXPECT_NEAR(SpearmanCorrelation(x, y).r, 1.0, 1e-12);
  // Pearson is below 1 for the same data.
  EXPECT_LT(PearsonCorrelation(x, y).r, 1.0);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(SpearmanCorrelation(x, y).r, 1.0, 1e-12);
}

TEST(Autocorrelation, LagZeroIsOne) {
  const std::vector<double> x = {1, 3, 2, 5, 4, 6};
  const std::vector<double> acf = Autocorrelation(x, 2);
  ASSERT_EQ(acf.size(), 3u);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
}

TEST(Autocorrelation, AlternatingSeriesIsNegativeAtLagOne) {
  std::vector<double> x;
  for (int i = 0; i < 50; ++i) x.push_back(i % 2 == 0 ? 1.0 : -1.0);
  const std::vector<double> acf = Autocorrelation(x, 1);
  EXPECT_LT(acf[1], -0.9);
}

TEST(Autocorrelation, ConstantSeries) {
  const std::vector<double> x = {2, 2, 2, 2};
  const std::vector<double> acf = Autocorrelation(x, 2);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
  EXPECT_DOUBLE_EQ(acf[1], 0.0);
}

TEST(Autocorrelation, RejectsBadLag) {
  const std::vector<double> x = {1, 2, 3};
  EXPECT_THROW(Autocorrelation(x, 3), std::invalid_argument);
  EXPECT_THROW(Autocorrelation(x, -1), std::invalid_argument);
  EXPECT_THROW(Autocorrelation({}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hpcfail::stats
