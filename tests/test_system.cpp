#include "trace/system.h"

#include <gtest/gtest.h>

namespace hpcfail {
namespace {

SystemConfig SmallSystem(int id = 0, int nodes = 4) {
  SystemConfig c;
  c.id = SystemId{id};
  c.name = "sys" + std::to_string(id);
  c.group = SystemGroup::kSmp;
  c.num_nodes = nodes;
  c.procs_per_node = 4;
  c.observed = {0, 100 * kDay};
  return c;
}

TEST(SystemGroup, RoundTripsThroughStrings) {
  EXPECT_EQ(ParseSystemGroup(ToString(SystemGroup::kSmp)), SystemGroup::kSmp);
  EXPECT_EQ(ParseSystemGroup(ToString(SystemGroup::kNuma)),
            SystemGroup::kNuma);
  EXPECT_FALSE(ParseSystemGroup("cluster").has_value());
}

TEST(SystemConfig, NumProcs) {
  const SystemConfig c = SmallSystem(0, 8);
  EXPECT_EQ(c.num_procs(), 32);
}

TEST(Trace, AddSystemRejectsDuplicates) {
  Trace t;
  t.AddSystem(SmallSystem(0));
  EXPECT_THROW(t.AddSystem(SmallSystem(0)), std::invalid_argument);
}

TEST(Trace, AddSystemRejectsInvalidConfigs) {
  Trace t;
  SystemConfig bad = SmallSystem(0);
  bad.num_nodes = 0;
  EXPECT_THROW(t.AddSystem(bad), std::invalid_argument);
  bad = SmallSystem(1);
  bad.observed = {100, 50};
  EXPECT_THROW(t.AddSystem(bad), std::invalid_argument);
  bad = SmallSystem(2);
  bad.id = SystemId{};
  EXPECT_THROW(t.AddSystem(bad), std::invalid_argument);
}

TEST(Trace, AddFailureValidatesSystemAndNode) {
  Trace t;
  t.AddSystem(SmallSystem(0, 4));
  EXPECT_THROW(t.AddFailure(MakeFailure(SystemId{9}, NodeId{0}, 0, 1,
                                        FailureCategory::kHardware)),
               std::invalid_argument);
  EXPECT_THROW(t.AddFailure(MakeFailure(SystemId{0}, NodeId{4}, 0, 1,
                                        FailureCategory::kHardware)),
               std::invalid_argument);
  EXPECT_NO_THROW(t.AddFailure(MakeFailure(SystemId{0}, NodeId{3}, 0, 1,
                                           FailureCategory::kHardware)));
}

TEST(Trace, AddFailureRejectsInconsistentRecords) {
  Trace t;
  t.AddSystem(SmallSystem());
  FailureRecord r =
      MakeFailure(SystemId{0}, NodeId{0}, 0, 1, FailureCategory::kNetwork);
  r.hardware = HardwareComponent::kCpu;
  EXPECT_THROW(t.AddFailure(r), std::invalid_argument);
}

TEST(Trace, AccessorsThrowBeforeFinalize) {
  Trace t;
  t.AddSystem(SmallSystem());
  t.AddFailure(
      MakeFailure(SystemId{0}, NodeId{0}, 0, 1, FailureCategory::kHuman));
  EXPECT_THROW(t.failures(), std::logic_error);
  t.Finalize();
  EXPECT_NO_THROW(t.failures());
}

TEST(Trace, FinalizeSortsFailuresByTime) {
  Trace t;
  t.AddSystem(SmallSystem());
  t.AddFailure(
      MakeFailure(SystemId{0}, NodeId{1}, 500, 501, FailureCategory::kHuman));
  t.AddFailure(
      MakeFailure(SystemId{0}, NodeId{0}, 100, 101, FailureCategory::kHuman));
  t.AddFailure(
      MakeFailure(SystemId{0}, NodeId{2}, 300, 301, FailureCategory::kHuman));
  t.Finalize();
  const auto& f = t.failures();
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].start, 100);
  EXPECT_EQ(f[1].start, 300);
  EXPECT_EQ(f[2].start, 500);
}

TEST(Trace, FinalizeIsIdempotent) {
  Trace t;
  t.AddSystem(SmallSystem());
  t.Finalize();
  t.Finalize();
  EXPECT_TRUE(t.finalized());
}

TEST(Trace, MutationUnfinalizes) {
  Trace t;
  t.AddSystem(SmallSystem());
  t.Finalize();
  t.AddFailure(
      MakeFailure(SystemId{0}, NodeId{0}, 0, 1, FailureCategory::kHuman));
  EXPECT_FALSE(t.finalized());
}

TEST(Trace, FindSystemAndSystemAccessor) {
  Trace t;
  t.AddSystem(SmallSystem(3));
  EXPECT_NE(t.FindSystem(SystemId{3}), nullptr);
  EXPECT_EQ(t.FindSystem(SystemId{4}), nullptr);
  EXPECT_EQ(t.system(SystemId{3}).name, "sys3");
  EXPECT_THROW(t.system(SystemId{4}), std::out_of_range);
}

TEST(Trace, FailuresOfSystemFilters) {
  Trace t;
  t.AddSystem(SmallSystem(0));
  t.AddSystem(SmallSystem(1));
  t.AddFailure(
      MakeFailure(SystemId{0}, NodeId{0}, 10, 11, FailureCategory::kHuman));
  t.AddFailure(
      MakeFailure(SystemId{1}, NodeId{0}, 20, 21, FailureCategory::kHuman));
  t.AddFailure(
      MakeFailure(SystemId{1}, NodeId{1}, 30, 31, FailureCategory::kHuman));
  t.Finalize();
  EXPECT_EQ(t.FailuresOfSystem(SystemId{0}).size(), 1u);
  EXPECT_EQ(t.FailuresOfSystem(SystemId{1}).size(), 2u);
}

TEST(Trace, AddJobValidatesNodes) {
  Trace t;
  t.AddSystem(SmallSystem(0, 2));
  JobRecord j;
  j.id = JobId{0};
  j.system = SystemId{0};
  j.user = UserId{1};
  j.submit = 0;
  j.dispatch = 10;
  j.end = 20;
  j.procs = 4;
  j.nodes = {NodeId{0}, NodeId{5}};  // node 5 out of range
  EXPECT_THROW(t.AddJob(j), std::invalid_argument);
  j.nodes = {NodeId{0}, NodeId{1}};
  EXPECT_NO_THROW(t.AddJob(j));
}

TEST(Trace, AddJobRejectsInconsistentTimes) {
  Trace t;
  t.AddSystem(SmallSystem());
  JobRecord j;
  j.id = JobId{0};
  j.system = SystemId{0};
  j.user = UserId{1};
  j.submit = 100;
  j.dispatch = 50;  // dispatched before submit
  j.end = 200;
  j.procs = 4;
  j.nodes = {NodeId{0}};
  EXPECT_THROW(t.AddJob(j), std::invalid_argument);
}

TEST(Trace, JobsSortedByDispatch) {
  Trace t;
  t.AddSystem(SmallSystem());
  for (int i = 0; i < 3; ++i) {
    JobRecord j;
    j.id = JobId{i};
    j.system = SystemId{0};
    j.user = UserId{1};
    j.submit = (3 - i) * 100;
    j.dispatch = (3 - i) * 100 + 1;
    j.end = (3 - i) * 100 + 50;
    j.procs = 4;
    j.nodes = {NodeId{0}};
    t.AddJob(j);
  }
  t.Finalize();
  const auto& jobs = t.jobs();
  EXPECT_LT(jobs[0].dispatch, jobs[1].dispatch);
  EXPECT_LT(jobs[1].dispatch, jobs[2].dispatch);
}

TEST(Trace, MaintenanceRejectsNegativeDuration) {
  Trace t;
  t.AddSystem(SmallSystem());
  MaintenanceRecord m{SystemId{0}, NodeId{0}, 100, 50};
  EXPECT_THROW(t.AddMaintenance(m), std::invalid_argument);
}

TEST(Trace, NeutronSeriesSortedOnSet) {
  Trace t;
  t.SetNeutronSeries({{200, 4000.0}, {100, 3900.0}});
  const auto& s = t.neutron_series();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].time, 100);
  EXPECT_EQ(s[1].time, 200);
}

TEST(JobRecord, DerivedQuantities) {
  JobRecord j;
  j.submit = 100;
  j.dispatch = 160;
  j.end = 160 + kHour;
  j.procs = 8;
  j.nodes = {NodeId{0}, NodeId{1}};
  EXPECT_EQ(j.queue_delay(), 60);
  EXPECT_EQ(j.runtime(), kHour);
  EXPECT_DOUBLE_EQ(j.proc_seconds(), 8.0 * kHour);
  EXPECT_TRUE(j.consistent());
}

}  // namespace
}  // namespace hpcfail
