#include "synth/scenario.h"

#include <gtest/gtest.h>

namespace hpcfail::synth {
namespace {

TEST(Presets, AllValidate) {
  EXPECT_NO_THROW(Group1System("g1", 128).Validate());
  EXPECT_NO_THROW(Group2System("g2", 32).Validate());
  EXPECT_NO_THROW(System20Like().Validate());
  EXPECT_NO_THROW(System8Like().Validate());
  EXPECT_NO_THROW(LanlLikeScenario(1.0).Validate());
  EXPECT_NO_THROW(LanlLikeScenario(0.1).Validate());
  EXPECT_NO_THROW(TinyScenario().Validate());
}

TEST(Presets, GroupArchitecturesMatchPaper) {
  const SystemScenario g1 = Group1System("a", 128);
  EXPECT_EQ(g1.group, SystemGroup::kSmp);
  EXPECT_EQ(g1.procs_per_node, 4);  // 4-way SMP nodes
  const SystemScenario g2 = Group2System("b", 32);
  EXPECT_EQ(g2.group, SystemGroup::kNuma);
  EXPECT_EQ(g2.procs_per_node, 128);  // NUMA nodes with 128 processors
}

TEST(Presets, Group2RatesAreHigher) {
  const SystemScenario g1 = Group1System("a", 128);
  const SystemScenario g2 = Group2System("b", 32);
  double r1 = 0.0, r2 = 0.0;
  for (double r : g1.base_rate_per_hour) r1 += r;
  for (double r : g2.base_rate_per_hour) r2 += r;
  EXPECT_GT(r2, 5.0 * r1);
}

TEST(Presets, System20HasUsageAndTemperature) {
  const SystemScenario s = System20Like();
  EXPECT_TRUE(s.workload.enabled);
  EXPECT_TRUE(s.temperature.enabled);
  // Fig. 14: system 20's CPU failures show no flux coupling.
  EXPECT_DOUBLE_EQ(s.cpu_flux_exponent, 0.0);
}

TEST(Presets, Group1HasFluxCoupling) {
  EXPECT_GT(Group1System("a", 128).cpu_flux_exponent, 0.0);
}

TEST(Presets, LanlLikeHasTenSystems) {
  const Scenario sc = LanlLikeScenario(1.0);
  EXPECT_EQ(sc.systems.size(), 10u);
  int numa = 0;
  for (const SystemScenario& s : sc.systems) {
    if (s.group == SystemGroup::kNuma) ++numa;
  }
  EXPECT_EQ(numa, 3);  // three group-2 systems
}

TEST(Presets, ScaleShrinksNodeCounts) {
  const Scenario full = LanlLikeScenario(1.0);
  const Scenario half = LanlLikeScenario(0.5);
  for (std::size_t i = 0; i < full.systems.size(); ++i) {
    EXPECT_LE(half.systems[i].num_nodes, full.systems[i].num_nodes);
  }
}

TEST(Presets, ScaleRejectsOutOfRange) {
  EXPECT_THROW(LanlLikeScenario(0.0), std::invalid_argument);
  EXPECT_THROW(LanlLikeScenario(1.5), std::invalid_argument);
}

TEST(Presets, NodeZeroIsFailureProne) {
  const SystemScenario s = Group1System("a", 128);
  // env/net/sw multipliers dominate: the login-node effect of Section IV.
  const auto env = static_cast<std::size_t>(FailureCategory::kEnvironment);
  const auto net = static_cast<std::size_t>(FailureCategory::kNetwork);
  const auto hw = static_cast<std::size_t>(FailureCategory::kHardware);
  EXPECT_GT(s.node0_rate_multiplier[env], 100.0);
  EXPECT_GT(s.node0_rate_multiplier[net], 100.0);
  EXPECT_LT(s.node0_rate_multiplier[hw], 10.0);
}

TEST(Validate, RejectsNegativeRates) {
  SystemScenario s = Group1System("a", 16);
  s.base_rate_per_hour[0] = -1.0;
  EXPECT_THROW(s.Validate(), std::invalid_argument);
}

TEST(Validate, RejectsBadMix) {
  SystemScenario s = Group1System("a", 16);
  s.hardware_mix[0] += 0.5;  // no longer sums to 1
  EXPECT_THROW(s.Validate(), std::invalid_argument);
}

TEST(Validate, RejectsSupercriticalBranching) {
  SystemScenario s = Group1System("a", 16);
  for (auto& c : s.node_cascade) {
    for (double& v : c.children) v = 0.3;  // 1.8 total per trigger
  }
  EXPECT_THROW(s.Validate(), std::invalid_argument);
}

TEST(Validate, RejectsBadGeometry) {
  SystemScenario s = Group1System("a", 16);
  s.nodes_per_rack = 0;
  EXPECT_THROW(s.Validate(), std::invalid_argument);
}

TEST(Validate, RejectsBadFacilitySpec) {
  SystemScenario s = Group1System("a", 16);
  s.power_outage.frac_nodes_affected = 1.5;
  EXPECT_THROW(s.Validate(), std::invalid_argument);
}

TEST(Validate, RejectsBadWorkload) {
  SystemScenario s = System20Like(64);
  s.workload.num_users = 0;
  EXPECT_THROW(s.Validate(), std::invalid_argument);
}

TEST(Validate, RejectsNonPositiveDelay) {
  SystemScenario s = Group1System("a", 16);
  s.node_cascade[0].mean_delay = 0;
  EXPECT_THROW(s.Validate(), std::invalid_argument);
}

TEST(Validate, RejectsEmptyScenario) {
  Scenario sc;
  EXPECT_THROW(sc.Validate(), std::invalid_argument);
}

TEST(CascadeSpec, TotalChildren) {
  CascadeSpec c;
  c.children = {0.1, 0.2, 0.0, 0.0, 0.3, 0.0};
  EXPECT_NEAR(c.total_children(), 0.6, 1e-12);
}

}  // namespace
}  // namespace hpcfail::synth
