// Cross-module property tests: statistical guarantees (CI coverage of the
// GLM Wald intervals), equivalence of the indexed peer queries against
// naive scans, consistency of window probabilities across window lengths,
// and generator rate conformance.
#include <gtest/gtest.h>

#include <cmath>

#include "core/window_analysis.h"
#include "stats/glm.h"
#include "stats/rng.h"
#include "synth/generate.h"

namespace hpcfail {
namespace {

using namespace core;

TEST(GlmProperty, WaldIntervalCoverageNearNominal) {
  // 95% Wald intervals on the slope of a Poisson GLM should cover the true
  // slope ~95% of the time.
  stats::Rng rng(21);
  const double true_b1 = 0.6;
  int covered = 0;
  const int reps = 300;
  for (int r = 0; r < reps; ++r) {
    const int n = 400;
    stats::Matrix x(n, 1);
    std::vector<double> y(n);
    for (int i = 0; i < n; ++i) {
      const double xv = rng.Uniform(-1.0, 1.0);
      x(static_cast<std::size_t>(i), 0) = xv;
      y[static_cast<std::size_t>(i)] =
          rng.Poisson(std::exp(0.8 + true_b1 * xv));
    }
    const stats::GlmFit fit = stats::FitPoisson(x, y);
    const auto& c = fit.coefficients[1];
    if (std::abs(c.estimate - true_b1) <= 1.959964 * c.std_error) ++covered;
  }
  const double coverage = static_cast<double>(covered) / reps;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LT(coverage, 0.99);
}

TEST(IndexProperty, PeerQueriesMatchNaiveScan) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 31);
  const EventIndex idx(t);
  const SystemId sys = t.systems()[0].id;
  const SystemConfig& config = t.systems()[0];
  const auto failures = t.FailuresOfSystem(sys);
  stats::Rng rng(32);
  for (int rep = 0; rep < 100; ++rep) {
    const NodeId node{static_cast<int>(
        rng.Index(static_cast<std::size_t>(config.num_nodes)))};
    const TimeSec begin = rng.Int(0, 170 * kDay);
    const TimeInterval w{begin, begin + rng.Int(kHour, 20 * kDay)};
    const EventFilter filter =
        rep % 2 == 0 ? EventFilter::Any()
                     : EventFilter::Of(FailureCategory::kHardware);
    // Naive: distinct system peers with a matching event in the window.
    std::vector<int> sys_seen, rack_seen;
    const RackId rack = *config.layout.rack_of(node);
    for (const FailureRecord& f : failures) {
      if (f.node == node || f.start <= w.begin || f.start > w.end) continue;
      if (!filter.Matches(f)) continue;
      if (std::find(sys_seen.begin(), sys_seen.end(), f.node.value) ==
          sys_seen.end()) {
        sys_seen.push_back(f.node.value);
      }
      if (config.layout.rack_of(f.node) == rack &&
          std::find(rack_seen.begin(), rack_seen.end(), f.node.value) ==
              rack_seen.end()) {
        rack_seen.push_back(f.node.value);
      }
    }
    int peers = 0;
    EXPECT_EQ(idx.DistinctSystemPeersWithEvent(sys, node, w, filter, &peers),
              static_cast<int>(sys_seen.size()));
    EXPECT_EQ(peers, config.num_nodes - 1);
    EXPECT_EQ(idx.DistinctRackPeersWithEvent(sys, node, w, filter, &peers),
              static_cast<int>(rack_seen.size()));
  }
}

TEST(WindowProperty, BaselinesComposeAcrossWindowLengths) {
  // With independent days, P(week) = 1 - (1 - P(day))^7; positive
  // correlation makes the true weekly probability *smaller* than the
  // independent composition. Verify direction and rough magnitude.
  const Trace t = synth::GenerateTrace(synth::TinyScenario(2 * kYear), 33);
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  const double p_day =
      a.BaselineProbability(EventFilter::Any(), kDay).estimate;
  const double p_week =
      a.BaselineProbability(EventFilter::Any(), kWeek).estimate;
  const double independent = 1.0 - std::pow(1.0 - p_day, 7.0);
  EXPECT_LT(p_week, independent + 1e-9);
  EXPECT_GT(p_week, 0.3 * independent);
}

TEST(WindowProperty, ConditionalBoundsRespected) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 34);
  const EventIndex idx(t);
  const WindowAnalyzer a(idx);
  for (FailureCategory c : AllFailureCategories()) {
    for (Scope scope :
         {Scope::kSameNode, Scope::kRackPeers, Scope::kSystemPeers}) {
      const auto p = a.ConditionalProbability(EventFilter::Of(c),
                                              EventFilter::Any(), scope,
                                              kWeek);
      EXPECT_GE(p.successes, 0);
      EXPECT_LE(p.successes, p.trials);
      if (p.defined()) {
        EXPECT_GE(p.ci_low, 0.0);
        EXPECT_LE(p.ci_high, 1.0);
        EXPECT_LE(p.ci_low, p.estimate + 1e-12);
        EXPECT_GE(p.ci_high, p.estimate - 1e-12);
      }
    }
  }
}

TEST(GeneratorProperty, FacilityEventRatesConform) {
  // Counting outage *events* (bursts within the 10-minute jitter window)
  // over many years should match the configured Poisson rate, including the
  // ~1.5x repeat factor.
  synth::Scenario sc;
  sc.duration = 3 * kYear;
  auto sys = synth::Group1System("g", 64, 3 * kYear);
  sys.power_outage.events_per_year = 8.0;
  sc.systems.push_back(sys);
  double total_events = 0.0;
  const int seeds = 5;
  for (int seed = 0; seed < seeds; ++seed) {
    const Trace t =
        synth::GenerateTrace(sc, static_cast<std::uint64_t>(seed + 50));
    std::vector<TimeSec> times;
    for (const FailureRecord& f : t.failures()) {
      if (f.environment == EnvironmentEvent::kPowerOutage) {
        times.push_back(f.start);
      }
    }
    std::sort(times.begin(), times.end());
    int bursts = times.empty() ? 0 : 1;
    for (std::size_t i = 1; i < times.size(); ++i) {
      if (times[i] - times[i - 1] > 11 * kMinute) ++bursts;
    }
    total_events += bursts;
  }
  const double per_year = total_events / (seeds * 3.0);
  // Configured 8/year, repeats add ~50%, follow-up env children (inheriting
  // the outage label) add a little more; cascade-born records can also fall
  // outside the jitter window of their parent burst.
  EXPECT_GT(per_year, 6.0);
  EXPECT_LT(per_year, 26.0);
}

TEST(GeneratorProperty, SeedsProduceSimilarAggregateRates) {
  // Different seeds must agree on aggregate statistics within sampling
  // noise: no seed-dependent structural drift.
  synth::Scenario sc = synth::TinyScenario(kYear);
  std::vector<double> rates;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Trace t = synth::GenerateTrace(sc, seed);
    rates.push_back(static_cast<double>(t.num_failures()));
  }
  const double mean =
      (rates[0] + rates[1] + rates[2] + rates[3] + rates[4]) / 5.0;
  for (double r : rates) {
    EXPECT_GT(r, 0.5 * mean);
    EXPECT_LT(r, 1.7 * mean);
  }
}

}  // namespace
}  // namespace hpcfail
