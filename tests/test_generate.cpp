#include "synth/generate.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace hpcfail::synth {
namespace {

TEST(Generate, TinyScenarioProducesCompleteTrace) {
  const Trace t = GenerateTrace(TinyScenario(), 1);
  EXPECT_TRUE(t.finalized());
  ASSERT_EQ(t.systems().size(), 1u);
  EXPECT_GT(t.num_failures(), 100u);
  EXPECT_FALSE(t.jobs().empty());
  EXPECT_FALSE(t.temperatures().empty());
  EXPECT_FALSE(t.neutron_series().empty());
}

TEST(Generate, DeterministicPerSeed) {
  const Scenario sc = TinyScenario(90 * kDay);
  const Trace a = GenerateTrace(sc, 7);
  const Trace b = GenerateTrace(sc, 7);
  EXPECT_EQ(a.failures(), b.failures());
  EXPECT_EQ(a.jobs(), b.jobs());
  EXPECT_EQ(a.maintenance(), b.maintenance());
  EXPECT_EQ(a.neutron_series(), b.neutron_series());
}

TEST(Generate, DifferentSeedsDiffer) {
  const Scenario sc = TinyScenario(90 * kDay);
  const Trace a = GenerateTrace(sc, 1);
  const Trace b = GenerateTrace(sc, 2);
  EXPECT_NE(a.num_failures(), b.num_failures());
}

TEST(Generate, SystemIdsAreSequential) {
  const Scenario sc = LanlLikeScenario(0.05, 90 * kDay);
  const Trace t = GenerateTrace(sc, 3);
  ASSERT_EQ(t.systems().size(), sc.systems.size());
  for (std::size_t i = 0; i < t.systems().size(); ++i) {
    EXPECT_EQ(t.systems()[i].id, SystemId{static_cast<int>(i)});
    EXPECT_EQ(t.systems()[i].name, sc.systems[i].name);
  }
}

TEST(Generate, LayoutCoversAllNodes) {
  const Trace t = GenerateTrace(TinyScenario(), 4);
  const SystemConfig& s = t.systems()[0];
  EXPECT_EQ(s.layout.placements().size(),
            static_cast<std::size_t>(s.num_nodes));
}

TEST(Generate, KilledJobsAreExactlyThoseOverlappingFailures) {
  const Trace t = GenerateTrace(TinyScenario(), 5);
  // Recompute the flag independently and compare.
  int killed = 0;
  for (const JobRecord& j : t.jobs()) {
    bool overlaps = false;
    for (const FailureRecord& f : t.failures()) {
      if (f.system != j.system) continue;
      if (f.start < j.dispatch || f.start >= j.end) continue;
      if (std::find(j.nodes.begin(), j.nodes.end(), f.node) !=
          j.nodes.end()) {
        overlaps = true;
        break;
      }
    }
    EXPECT_EQ(j.killed_by_node_failure, overlaps) << "job " << j.id.value;
    killed += j.killed_by_node_failure ? 1 : 0;
  }
  // The tiny scenario's high failure rates guarantee some kills.
  EXPECT_GT(killed, 0);
}

TEST(Generate, JobIdsUniqueAcrossSystems) {
  Scenario sc;
  sc.duration = 90 * kDay;
  sc.systems.push_back(System8Like(16, 90 * kDay));
  sc.systems.push_back(System20Like(16, 90 * kDay));
  const Trace t = GenerateTrace(sc, 6);
  std::vector<int> ids;
  for (const JobRecord& j : t.jobs()) ids.push_back(j.id.value);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(Generate, NeutronSeriesSpansDuration) {
  const Scenario sc = TinyScenario(180 * kDay);
  const Trace t = GenerateTrace(sc, 7);
  ASSERT_FALSE(t.neutron_series().empty());
  EXPECT_EQ(t.neutron_series().front().time, 0);
  EXPECT_GE(t.neutron_series().back().time, 150 * kDay);
}

TEST(Generate, ValidatesScenario) {
  Scenario bad = TinyScenario();
  bad.systems[0].num_nodes = 0;
  EXPECT_THROW(GenerateTrace(bad, 1), std::invalid_argument);
}

TEST(Generate, TemperatureOnlyForEnabledSystems) {
  Scenario sc;
  sc.duration = 60 * kDay;
  sc.systems.push_back(Group1System("plain", 8, 60 * kDay));
  sc.systems.push_back(System20Like(8, 60 * kDay));
  const Trace t = GenerateTrace(sc, 8);
  bool plain_has_temp = false, s20_has_temp = false;
  for (const TemperatureSample& s : t.temperatures()) {
    if (s.system == SystemId{0}) plain_has_temp = true;
    if (s.system == SystemId{1}) s20_has_temp = true;
  }
  EXPECT_FALSE(plain_has_temp);
  EXPECT_TRUE(s20_has_temp);
}

}  // namespace
}  // namespace hpcfail::synth
