// engine::ArgParser is the shared flag surface for all 25 benches and both
// tools; these tests pin its contract, especially the deliberate behavior
// change from bench_common.h's old loop: unknown flags are hard errors
// (exit code 2), not silently ignored.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/arg_parser.h"
#include "engine/session.h"

namespace hpcfail::engine {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(ArgParser, ParsesAllKindsInBothValueForms) {
  bool flag = false;
  int i = 1;
  std::uint64_t u = 2;
  double d = 0.5;
  std::string s = "default";
  ArgParser p("prog");
  p.AddFlag("flag", &flag, "a flag");
  p.AddInt("int", &i, "an int");
  p.AddUint64("u64", &u, "a u64");
  p.AddDouble("dbl", &d, "a double");
  p.AddString("str", &s, "a string");

  const auto argv = Argv(
      {"--flag", "--int", "-3", "--u64=18446744073709551615", "--dbl=2.25",
       "--str", "hello"});
  std::string error;
  ASSERT_TRUE(p.TryParse(static_cast<int>(argv.size()), argv.data(), &error))
      << error;
  EXPECT_TRUE(flag);
  EXPECT_EQ(i, -3);
  EXPECT_EQ(u, 18446744073709551615ULL);
  EXPECT_EQ(d, 2.25);
  EXPECT_EQ(s, "hello");
}

TEST(ArgParser, DefaultsSurviveWhenNotPassed) {
  int i = 42;
  std::string s = "keep";
  ArgParser p("prog");
  p.AddInt("int", &i, "an int");
  p.AddString("str", &s, "a string");
  const auto argv = Argv({});
  std::string error;
  ASSERT_TRUE(p.TryParse(static_cast<int>(argv.size()), argv.data(), &error));
  EXPECT_EQ(i, 42);
  EXPECT_EQ(s, "keep");
}

TEST(ArgParser, UnknownFlagIsAnError) {
  int threads = 0;
  ArgParser p("prog");
  p.AddInt("threads", &threads, "worker threads");
  // The motivating typo: `--thread 8` used to silently run single-threaded.
  const auto argv = Argv({"--thread", "8"});
  std::string error;
  EXPECT_FALSE(p.TryParse(static_cast<int>(argv.size()), argv.data(), &error));
  EXPECT_NE(error.find("unknown argument '--thread'"), std::string::npos)
      << error;
}

TEST(ArgParser, MissingValueIsAnError) {
  int i = 0;
  ArgParser p("prog");
  p.AddInt("int", &i, "an int");
  const auto argv = Argv({"--int"});
  std::string error;
  EXPECT_FALSE(p.TryParse(static_cast<int>(argv.size()), argv.data(), &error));
  EXPECT_FALSE(error.empty());
}

TEST(ArgParser, MalformedNumbersAreErrors) {
  int i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  ArgParser p("prog");
  p.AddInt("int", &i, "an int");
  p.AddUint64("u64", &u, "a u64");
  p.AddDouble("dbl", &d, "a double");
  for (const char* bad :
       {"--int=abc", "--int=3.5", "--u64=-1", "--dbl=1.2.3", "--dbl="}) {
    const auto argv = Argv({bad});
    std::string error;
    EXPECT_FALSE(
        p.TryParse(static_cast<int>(argv.size()), argv.data(), &error))
        << bad << " should be rejected";
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ArgParser, PositionalsRejectedUnlessOptedIn) {
  ArgParser p("prog");
  const auto argv = Argv({"stray"});
  std::string error;
  EXPECT_FALSE(p.TryParse(static_cast<int>(argv.size()), argv.data(), &error));

  std::vector<std::string> pos;
  ArgParser q("prog");
  q.AllowPositionals(&pos);
  std::string error2;
  ASSERT_TRUE(
      q.TryParse(static_cast<int>(argv.size()), argv.data(), &error2));
  EXPECT_EQ(pos, std::vector<std::string>({"stray"}));
}

TEST(ArgParser, DoubleDashEndsFlagParsing) {
  bool flag = false;
  std::vector<std::string> pos;
  ArgParser p("prog");
  p.AddFlag("flag", &flag, "a flag");
  p.AllowPositionals(&pos);
  const auto argv = Argv({"--flag", "--", "--flag", "-x"});
  std::string error;
  ASSERT_TRUE(p.TryParse(static_cast<int>(argv.size()), argv.data(), &error))
      << error;
  EXPECT_TRUE(flag);
  EXPECT_EQ(pos, std::vector<std::string>({"--flag", "-x"}));
}

TEST(ArgParser, HelpIsRecordedNotAnError) {
  ArgParser p("prog", "does things");
  const auto argv = Argv({"--help"});
  std::string error;
  ASSERT_TRUE(p.TryParse(static_cast<int>(argv.size()), argv.data(), &error));
  EXPECT_TRUE(p.help_requested());
}

TEST(ArgParser, UsageListsEveryOptionWithDefaults) {
  int threads = 0;
  double scale = 0.25;
  ArgParser p("prog", "test program");
  p.AddInt("threads", &threads, "worker threads");
  p.AddDouble("scale", &scale, "scenario scale");
  const std::string usage = p.Usage();
  EXPECT_NE(usage.find("prog"), std::string::npos);
  EXPECT_NE(usage.find("--threads"), std::string::npos);
  EXPECT_NE(usage.find("--scale"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(ArgParser, UsageShowsDescriptionsAndDefaultValues) {
  int workers = 4;
  bool verbose = false;
  std::string out_path = "/tmp/x";
  ArgParser p("prog", "test program");
  p.AddInt("workers", &workers, "request worker threads");
  p.AddFlag("verbose", &verbose, "chatty logging");
  p.AddString("out", &out_path, "output path");
  const std::string usage = p.Usage();
  // Every option line carries its description AND its default.
  EXPECT_NE(usage.find("request worker threads (default: 4)"),
            std::string::npos);
  EXPECT_NE(usage.find("chatty logging (default: false)"), std::string::npos);
  EXPECT_NE(usage.find("output path (default: /tmp/x)"), std::string::npos);
  // Value-taking options advertise the value slot; flags do not.
  EXPECT_NE(usage.find("--workers <value>"), std::string::npos);
  EXPECT_EQ(usage.find("--verbose <value>"), std::string::npos);
}

TEST(ArgParser, UsageWrapsLongHelpTextWithHangingIndent) {
  std::uint64_t depth = 64;
  ArgParser p("prog");
  p.AddUint64("queue-depth", &depth,
              "bounded admission queue; beyond this connections are answered "
              "503 and closed instead of waiting without bound for a worker "
              "to free up");
  const std::string usage = p.Usage();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < usage.size()) {
    std::size_t end = usage.find('\n', start);
    if (end == std::string::npos) end = usage.size();
    EXPECT_LE(end - start, 79u) << "overlong line: '"
                                << usage.substr(start, end - start) << "'";
    ++lines;
    start = end + 1;
  }
  EXPECT_GE(lines, 4u) << "long help must wrap onto continuation lines";
  // Continuation lines are indented to the help column, so the wrapped
  // words never start at column zero.
  EXPECT_NE(usage.find("\n                          "), std::string::npos);
}

TEST(ArgParser, StandardOptionsWireIntoSessionOptions) {
  StandardOptions std_opts;
  ArgParser p("prog");
  AddStandardOptions(p, &std_opts);
  const auto argv = Argv(
      {"--threads", "3", "--seed", "99", "--cache-dir", "/tmp/c",
       "--no-cache", "--json"});
  std::string error;
  ASSERT_TRUE(p.TryParse(static_cast<int>(argv.size()), argv.data(), &error))
      << error;
  EXPECT_EQ(std_opts.threads, 3);
  EXPECT_EQ(std_opts.seed, 99u);
  EXPECT_TRUE(std_opts.json);

  const SessionOptions session = MakeSessionOptions(std_opts);
  EXPECT_EQ(session.cache.dir, "/tmp/c");
  EXPECT_FALSE(session.cache.enabled);
}

// ParseOrExit's contract is process-level; pin the exit code with a death
// test so a refactor cannot quietly go back to "ignore and continue".
TEST(ArgParserDeathTest, UnknownFlagExitsWithCode2) {
  const auto argv = Argv({"--bogus"});
  EXPECT_EXIT(
      {
        ArgParser p("prog");
        p.ParseOrExit(static_cast<int>(argv.size()), argv.data());
      },
      ::testing::ExitedWithCode(2), "unknown argument '--bogus'");
}

TEST(ArgParserDeathTest, UnknownFlagErrorPrintsUsage) {
  const auto argv = Argv({"--bogus"});
  EXPECT_EXIT(
      {
        ArgParser p("prog", "test program");
        p.ParseOrExit(static_cast<int>(argv.size()), argv.data());
      },
      ::testing::ExitedWithCode(2), "usage: prog");
}

TEST(ArgParserDeathTest, HelpExitsWithCode0) {
  const auto argv = Argv({"--help"});
  EXPECT_EXIT(
      {
        ArgParser p("prog", "test program");
        p.ParseOrExit(static_cast<int>(argv.size()), argv.data());
      },
      ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace hpcfail::engine
