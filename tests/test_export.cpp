#include "core/export.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

int CountLines(const std::string& s) {
  int n = 0;
  for (char c : s) n += c == '\n' ? 1 : 0;
  return n;
}

std::vector<std::string> SplitCsvRow(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, ',')) out.push_back(field);
  return out;
}

class ExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new Trace(synth::GenerateTrace(synth::TinyScenario(), 77));
    index_ = new EventIndex(*trace_);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete trace_;
    index_ = nullptr;
    trace_ = nullptr;
  }
  static Trace* trace_;
  static EventIndex* index_;
};
Trace* ExportTest::trace_ = nullptr;
EventIndex* ExportTest::index_ = nullptr;

TEST_F(ExportTest, TriggerSeriesHasOneRowPerCategory) {
  const WindowAnalyzer a(*index_);
  std::ostringstream os;
  ExportTriggerSeries(os, a, Scope::kSameNode, kWeek);
  const std::string out = os.str();
  EXPECT_EQ(CountLines(out), 1 + kNumFailureCategories);
  EXPECT_EQ(out.substr(0, 7), "trigger");
  // Every data row has 8 fields.
  std::stringstream ss(out);
  std::string line;
  std::getline(ss, line);  // header
  while (std::getline(ss, line)) {
    EXPECT_EQ(SplitCsvRow(line).size(), 8u) << line;
  }
}

TEST_F(ExportTest, TriggerSeriesValuesAreProbabilities) {
  const WindowAnalyzer a(*index_);
  std::ostringstream os;
  ExportTriggerSeries(os, a, Scope::kSameNode, kWeek);
  std::stringstream ss(os.str());
  std::string line;
  std::getline(ss, line);
  while (std::getline(ss, line)) {
    const auto f = SplitCsvRow(line);
    const double conditional = std::stod(f[1]);
    const double lo = std::stod(f[2]);
    const double hi = std::stod(f[3]);
    EXPECT_GE(conditional, 0.0);
    EXPECT_LE(conditional, 1.0);
    EXPECT_LE(lo, conditional + 1e-12);
    EXPECT_GE(hi, conditional - 1e-12);
  }
}

TEST_F(ExportTest, PairwiseSeriesShape) {
  const WindowAnalyzer a(*index_);
  std::ostringstream os;
  ExportPairwiseSeries(os, a, Scope::kSameNode, kWeek);
  EXPECT_EQ(CountLines(os.str()), 1 + kNumFailureCategories);
}

TEST_F(ExportTest, NodeCountsMatchIndex) {
  std::ostringstream os;
  ExportNodeCounts(os, *index_, trace_->systems()[0].id);
  std::stringstream ss(os.str());
  std::string line;
  std::getline(ss, line);
  long long total = 0;
  int rows = 0;
  while (std::getline(ss, line)) {
    total += std::stoll(SplitCsvRow(line)[1]);
    ++rows;
  }
  EXPECT_EQ(rows, trace_->systems()[0].num_nodes);
  EXPECT_EQ(total, static_cast<long long>(trace_->num_failures()));
}

TEST_F(ExportTest, ComponentImpactSeries) {
  const WindowAnalyzer a(*index_);
  const auto impacts = HardwareComponentImpact(
      a, PowerProblemFilter(PowerProblem::kPowerOutage));
  std::ostringstream os;
  ExportComponentImpact(os, impacts, "power_outage");
  EXPECT_EQ(CountLines(os.str()), 1 + kNumHardwareComponents);
  EXPECT_NE(os.str().find("power_outage,cpu,"), std::string::npos);
}

TEST_F(ExportTest, SpaceTimeSeries) {
  const auto points = PowerSpaceTime(*index_, trace_->systems()[0].id);
  std::ostringstream os;
  ExportSpaceTime(os, points);
  EXPECT_EQ(CountLines(os.str()), 1 + static_cast<int>(points.size()));
}

TEST_F(ExportTest, FluxSeries) {
  std::vector<MonthlyFluxPoint> series = {
      {0, 4000.0, 0.05, 2}, {1, 4100.0, 0.0, 0}};
  std::ostringstream os;
  ExportFluxSeries(os, series, "dram");
  const std::string out = os.str();
  EXPECT_EQ(CountLines(out), 3);
  EXPECT_NE(out.find("dram,0,4000"), std::string::npos);
}

TEST(WriteFile, CreatesParentDirectoriesAndWrites) {
  const auto dir = std::filesystem::temp_directory_path() / "hpcfail_export";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "a" / "b.csv").string();
  WriteFile(path, "x,y\n1,2\n");
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "x,y");
  std::filesystem::remove_all(dir);
}

TEST(WriteFile, ThrowsOnUnwritablePath) {
  EXPECT_THROW(WriteFile("/proc/hpcfail/nope.csv", "x"), std::exception);
}

}  // namespace
}  // namespace hpcfail::core
