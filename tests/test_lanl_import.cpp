#include "trace/lanl_import.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hpcfail::lanl {
namespace {

TEST(Timestamp, FourDigitYear) {
  // 01/01/1970 00:00 is the epoch.
  EXPECT_EQ(ParseLanlTimestamp("01/01/1970 00:00"), TimeSec{0});
  EXPECT_EQ(ParseLanlTimestamp("01/02/1970 00:00"), kDay);
  EXPECT_EQ(ParseLanlTimestamp("01/01/1970 01:30"), kHour + 30 * kMinute);
}

TEST(Timestamp, KnownDate) {
  // 03/01/1972 00:00: 1970 (365) + 1971 (365) + Jan (31) + Feb 1972 (29,
  // leap) = 790 days.
  EXPECT_EQ(ParseLanlTimestamp("03/01/1972 00:00"), 790 * kDay);
}

TEST(Timestamp, TwoDigitYearPivot) {
  EXPECT_EQ(ParseLanlTimestamp("01/01/96 00:00"),
            ParseLanlTimestamp("01/01/1996 00:00"));
  EXPECT_EQ(ParseLanlTimestamp("01/01/05 00:00"),
            ParseLanlTimestamp("01/01/2005 00:00"));
}

TEST(Timestamp, OptionalSeconds) {
  EXPECT_EQ(*ParseLanlTimestamp("01/01/1970 00:00:45"), TimeSec{45});
}

TEST(Timestamp, RejectsGarbage) {
  EXPECT_FALSE(ParseLanlTimestamp("").has_value());
  EXPECT_FALSE(ParseLanlTimestamp("yesterday").has_value());
  EXPECT_FALSE(ParseLanlTimestamp("13/01/2000 00:00").has_value());  // month
  EXPECT_FALSE(ParseLanlTimestamp("02/30/2001 00:00").has_value());  // day
  EXPECT_FALSE(ParseLanlTimestamp("01/01/2001 25:00").has_value());  // hour
  EXPECT_FALSE(ParseLanlTimestamp("01/01/2001").has_value());  // no time
}

TEST(Timestamp, LeapDayAccepted) {
  EXPECT_TRUE(ParseLanlTimestamp("02/29/2004 12:00").has_value());
  EXPECT_FALSE(ParseLanlTimestamp("02/29/2003 12:00").has_value());
}

TEST(CategoryMapping, KeywordsWork) {
  EXPECT_EQ(MapLanlCategory("Facilities"), FailureCategory::kEnvironment);
  EXPECT_EQ(MapLanlCategory("Environment"), FailureCategory::kEnvironment);
  EXPECT_EQ(MapLanlCategory("Hardware"), FailureCategory::kHardware);
  EXPECT_EQ(MapLanlCategory("Human Error"), FailureCategory::kHuman);
  EXPECT_EQ(MapLanlCategory("NETWORK"), FailureCategory::kNetwork);
  EXPECT_EQ(MapLanlCategory("Software"), FailureCategory::kSoftware);
  EXPECT_EQ(MapLanlCategory("Undetermined"),
            FailureCategory::kUndetermined);
  EXPECT_FALSE(MapLanlCategory("gremlins").has_value());
  EXPECT_FALSE(MapLanlCategory("").has_value());
}

TEST(SubcategoryMapping, Hardware) {
  EXPECT_EQ(MapLanlHardware("Memory Dimm"), HardwareComponent::kMemory);
  EXPECT_EQ(MapLanlHardware("CPU"), HardwareComponent::kCpu);
  EXPECT_EQ(MapLanlHardware("Node Board"), HardwareComponent::kNodeBoard);
  EXPECT_EQ(MapLanlHardware("Power Supply"),
            HardwareComponent::kPowerSupply);
  EXPECT_EQ(MapLanlHardware("Fan Assembly"), HardwareComponent::kFan);
  EXPECT_EQ(MapLanlHardware("mystery widget"),
            HardwareComponent::kOtherHardware);
}

TEST(SubcategoryMapping, SoftwareAndEnvironment) {
  EXPECT_EQ(MapLanlSoftware("Distributed Storage"), SoftwareComponent::kDst);
  EXPECT_EQ(MapLanlSoftware("Parallel File System"),
            SoftwareComponent::kPfs);
  EXPECT_EQ(MapLanlSoftware("Kernel panic"), SoftwareComponent::kOs);
  EXPECT_EQ(MapLanlEnvironment("Power Outage"),
            EnvironmentEvent::kPowerOutage);
  EXPECT_EQ(MapLanlEnvironment("Power Spike"),
            EnvironmentEvent::kPowerSpike);
  EXPECT_EQ(MapLanlEnvironment("UPS"), EnvironmentEvent::kUps);
  EXPECT_EQ(MapLanlEnvironment("Chiller down"), EnvironmentEvent::kChiller);
  EXPECT_EQ(MapLanlEnvironment("flood"),
            EnvironmentEvent::kOtherEnvironment);
}

TEST(Import, ParsesWellFormedLog) {
  std::stringstream log(
      "system,node,started,fixed,cause,detail\n"
      "20,0,06/10/2003 14:30,06/10/2003 16:00,Hardware,Memory Dimm\n"
      "20,12,06/11/2003 09:00,06/11/2003 09:45,Facilities,Power Outage\n"
      "20,3,06/12/2003 01:00,06/12/2003 02:00,Software,Distributed Storage\n");
  const ImportResult r = ImportFailures(log, {});
  ASSERT_EQ(r.failures.size(), 3u);
  EXPECT_TRUE(r.skipped.empty());
  EXPECT_EQ(r.failures[0].system, SystemId{20});
  EXPECT_EQ(r.failures[0].node, NodeId{0});
  EXPECT_EQ(r.failures[0].category, FailureCategory::kHardware);
  EXPECT_EQ(r.failures[0].hardware, HardwareComponent::kMemory);
  EXPECT_EQ(r.failures[0].downtime(), TimeSec{90 * kMinute});
  EXPECT_EQ(r.failures[1].environment, EnvironmentEvent::kPowerOutage);
  EXPECT_EQ(r.failures[2].software, SoftwareComponent::kDst);
  EXPECT_TRUE(r.failures[0].consistent());
}

TEST(Import, SkipsMalformedRowsWithReasons) {
  std::stringstream log(
      "system,node,started,fixed,cause,detail\n"
      "20,0,06/10/2003 14:30,06/10/2003 16:00,Hardware,CPU\n"
      "20,abc,06/10/2003 14:30,06/10/2003 16:00,Hardware,CPU\n"
      "20,1,garbage,06/10/2003 16:00,Hardware,CPU\n"
      "20,2,06/10/2003 14:30,06/10/2003 12:00,Hardware,CPU\n"
      "20,3,06/10/2003 14:30,06/10/2003 16:00,Gremlins,CPU\n"
      "short,row\n");
  const ImportResult r = ImportFailures(log, {});
  EXPECT_EQ(r.failures.size(), 1u);
  ASSERT_EQ(r.skipped.size(), 5u);
  EXPECT_EQ(r.skipped[0].line, 3u);
  EXPECT_EQ(r.skipped[0].reason, "bad system/node id");
  EXPECT_EQ(r.skipped[1].reason, "bad start timestamp");
  EXPECT_EQ(r.skipped[2].reason, "end before start");
  EXPECT_EQ(r.skipped[3].reason, "unrecognized root-cause category");
  EXPECT_EQ(r.skipped[4].reason, "too few columns");
}

TEST(Import, MissingEndBecomesZeroDowntime) {
  std::stringstream log(
      "system,node,started,fixed,cause,detail\n"
      "5,7,01/02/2000 08:00,,Network,\n");
  const ImportResult r = ImportFailures(log, {});
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].downtime(), TimeSec{0});
  EXPECT_EQ(r.failures[0].category, FailureCategory::kNetwork);
}

TEST(Import, CustomColumnMapping) {
  // Detail column before the cause column, extra leading column.
  std::stringstream log(
      "x,system,node,started,fixed,detail,cause\n"
      "ignored,2,5,03/04/2001 10:00,03/04/2001 11:00,Fan,Hardware\n");
  ImportConfig cfg;
  cfg.col_system = 1;
  cfg.col_node = 2;
  cfg.col_start = 3;
  cfg.col_end = 4;
  cfg.col_subcategory = 5;
  cfg.col_category = 6;
  const ImportResult r = ImportFailures(log, cfg);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].hardware, HardwareComponent::kFan);
}

TEST(Import, QuotedAndPaddedFieldsAreTrimmed) {
  std::stringstream log(
      "system,node,started,fixed,cause,detail\n"
      " 20 , 0 ,\"06/10/2003 14:30\",\"06/10/2003 16:00\", Hardware , \"CPU\"\n");
  const ImportResult r = ImportFailures(log, {});
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].hardware, HardwareComponent::kCpu);
}

TEST(Import, NoHeaderMode) {
  std::stringstream log("20,0,06/10/2003 14:30,06/10/2003 16:00,Hardware,CPU\n");
  ImportConfig cfg;
  cfg.has_header = false;
  const ImportResult r = ImportFailures(log, cfg);
  EXPECT_EQ(r.failures.size(), 1u);
}

TEST(Assemble, CountsDroppedOutOfRangeRecords) {
  // Records at node >= nodes_per_system used to vanish silently; now they
  // are counted so the caller can report them.
  ImportResult imported;
  for (int node : {0, 1, 7, 120, 300}) {
    FailureRecord r;
    r.system = SystemId{3};
    r.node = NodeId{node};
    r.start = node * kDay;
    r.end = r.start + kHour;
    r.category = FailureCategory::kHardware;
    imported.failures.push_back(r);
  }
  const AssembleResult out = AssembleTrace(imported, /*nodes_per_system=*/8);
  EXPECT_EQ(out.dropped_out_of_range, 2);  // nodes 120 and 300
  EXPECT_EQ(out.trace.num_failures(), 3u);
  EXPECT_EQ(out.trace.system(SystemId{3}).num_nodes, 8);
}

TEST(Assemble, AutoSizesSystemsFromMaxNodeId) {
  ImportResult imported;
  const auto add = [&imported](int sys, int node, TimeSec start) {
    FailureRecord r;
    r.system = SystemId{sys};
    r.node = NodeId{node};
    r.start = start;
    r.end = start + kHour;
    r.category = FailureCategory::kSoftware;
    imported.failures.push_back(r);
  };
  add(0, 12, kDay);
  add(0, 3, 2 * kDay);
  add(5, 0, 3 * kDay);
  // nodes_per_system <= 0: size each system from its own log; drop nothing.
  const AssembleResult out = AssembleTrace(imported, 0);
  EXPECT_EQ(out.dropped_out_of_range, 0);
  EXPECT_EQ(out.trace.num_failures(), 3u);
  EXPECT_EQ(out.trace.system(SystemId{0}).num_nodes, 13);  // max id 12
  EXPECT_EQ(out.trace.system(SystemId{5}).num_nodes, 1);
}

TEST(Assemble, ObservationSpansTheLog) {
  ImportResult imported;
  FailureRecord r;
  r.system = SystemId{0};
  r.node = NodeId{0};
  r.start = 10 * kDay;
  r.end = 10 * kDay + 2 * kHour;
  r.category = FailureCategory::kNetwork;
  imported.failures.push_back(r);
  const AssembleResult out = AssembleTrace(imported, 0);
  const SystemConfig& c = out.trace.system(SystemId{0});
  EXPECT_EQ(c.observed.begin, 10 * kDay);
  EXPECT_EQ(c.observed.end, 11 * kDay + 2 * kHour);  // +1 day slack
}

}  // namespace
}  // namespace hpcfail::lanl
