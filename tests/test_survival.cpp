#include "stats/survival.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/survival_analysis.h"
#include "core/window_analysis.h"
#include "stats/rng.h"
#include "synth/generate.h"

namespace hpcfail::stats {
namespace {

TEST(KaplanMeier, TextbookExample) {
  // Events at 1, 2; censored at 1.5; event at 3.
  //   t=1: S = 3/4; t=2: at risk 2 (after censoring), S = 3/4 * 1/2 = 3/8;
  //   t=3: at risk 1, S = 0.
  std::vector<SurvivalObservation> obs = {
      {1.0, true}, {1.5, false}, {2.0, true}, {3.0, true}};
  const KaplanMeier km(obs);
  EXPECT_DOUBLE_EQ(km.Survival(0.5), 1.0);
  EXPECT_DOUBLE_EQ(km.Survival(1.0), 0.75);
  EXPECT_DOUBLE_EQ(km.Survival(1.9), 0.75);
  EXPECT_DOUBLE_EQ(km.Survival(2.0), 0.375);
  EXPECT_DOUBLE_EQ(km.Survival(3.0), 0.0);
  EXPECT_EQ(km.num_events(), 3u);
  EXPECT_DOUBLE_EQ(km.MedianSurvival(), 2.0);
}

TEST(KaplanMeier, NoCensoringMatchesEmpiricalCdf) {
  std::vector<SurvivalObservation> obs;
  for (int i = 1; i <= 10; ++i) {
    obs.push_back({static_cast<double>(i), true});
  }
  const KaplanMeier km(obs);
  EXPECT_NEAR(km.Survival(5.0), 0.5, 1e-12);
  EXPECT_NEAR(km.Survival(9.0), 0.1, 1e-12);
}

TEST(KaplanMeier, AllCensoredStaysAtOne) {
  std::vector<SurvivalObservation> obs = {{1.0, false}, {2.0, false}};
  const KaplanMeier km(obs);
  EXPECT_DOUBLE_EQ(km.Survival(100.0), 1.0);
  EXPECT_TRUE(std::isinf(km.MedianSurvival()));
  EXPECT_EQ(km.num_events(), 0u);
}

TEST(KaplanMeier, TiedEventTimesHandled) {
  std::vector<SurvivalObservation> obs = {
      {1.0, true}, {1.0, true}, {2.0, true}, {2.0, false}};
  const KaplanMeier km(obs);
  // t=1: 4 at risk, 2 events -> S = 0.5; t=2: 2 at risk, 1 event -> 0.25.
  EXPECT_DOUBLE_EQ(km.Survival(1.0), 0.5);
  EXPECT_DOUBLE_EQ(km.Survival(2.0), 0.25);
}

TEST(KaplanMeier, RecoversExponentialSurvival) {
  Rng rng(41);
  std::vector<SurvivalObservation> obs;
  const double rate = 0.5;
  for (int i = 0; i < 4000; ++i) {
    const double t = rng.Exponential(rate);
    // Censor at 5.0 (administrative end of study).
    obs.push_back(t < 5.0 ? SurvivalObservation{t, true}
                          : SurvivalObservation{5.0, false});
  }
  const KaplanMeier km(obs);
  for (double t : {0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(km.Survival(t), std::exp(-rate * t), 0.03) << t;
  }
}

TEST(KaplanMeier, GreenwoodErrorsShrinkWithSampleSize) {
  Rng rng(42);
  auto make = [&rng](int n) {
    std::vector<SurvivalObservation> obs;
    for (int i = 0; i < n; ++i) obs.push_back({rng.Exponential(1.0), true});
    return KaplanMeier(obs);
  };
  const KaplanMeier small = make(50);
  const KaplanMeier large = make(5000);
  // Compare SE near the median.
  auto se_near_median = [](const KaplanMeier& km) {
    double best = 1.0;
    for (const SurvivalPoint& p : km.curve()) {
      if (p.survival <= 0.5) return p.std_error;
      best = p.std_error;
    }
    return best;
  };
  EXPECT_GT(se_near_median(small), 3.0 * se_near_median(large));
}

TEST(KaplanMeier, RejectsBadInput) {
  EXPECT_THROW(KaplanMeier({}), std::invalid_argument);
  EXPECT_THROW(KaplanMeier({{-1.0, true}}), std::invalid_argument);
}

TEST(LogRank, IdenticalGroupsNotSignificant) {
  Rng rng(43);
  std::vector<SurvivalObservation> g1, g2;
  for (int i = 0; i < 300; ++i) {
    g1.push_back({rng.Exponential(1.0), true});
    g2.push_back({rng.Exponential(1.0), true});
  }
  const LogRankResult r = LogRankTest(g1, g2);
  EXPECT_FALSE(r.significant_99);
}

TEST(LogRank, DifferentHazardsDetected) {
  Rng rng(44);
  std::vector<SurvivalObservation> fast, slow;
  for (int i = 0; i < 300; ++i) {
    fast.push_back({rng.Exponential(2.0), true});
    slow.push_back({rng.Exponential(0.5), true});
  }
  const LogRankResult r = LogRankTest(fast, slow);
  EXPECT_TRUE(r.significant_99);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(LogRank, RejectsEmptyGroups) {
  std::vector<SurvivalObservation> g = {{1.0, true}};
  EXPECT_THROW(LogRankTest(g, {}), std::invalid_argument);
}

}  // namespace
}  // namespace hpcfail::stats

namespace hpcfail::core {
namespace {

TEST(TimeToNextFailure, MatchesWindowAnalyzerApproximately) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(2 * kYear), 45);
  const EventIndex idx(t);
  const SurvivalAnalysis sa = AnalyzeTimeToNextFailure(idx);
  const WindowAnalyzer wa(idx);
  for (FailureCategory c : AllFailureCategories()) {
    const TriggerSurvival& ts =
        sa.by_trigger[static_cast<std::size_t>(c)];
    if (ts.observations.size() < 100) continue;
    const auto window = wa.ConditionalProbability(
        EventFilter::Of(c), EventFilter::Any(), Scope::kSameNode, kWeek);
    // KM handles censoring that the window analyzer drops, so the values
    // agree only approximately.
    EXPECT_NEAR(ts.failure_within_week, window.estimate, 0.12)
        << ToString(c);
  }
}

TEST(TimeToNextFailure, EnvironmentTriggersShortenSurvival) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(2 * kYear), 46);
  const EventIndex idx(t);
  const SurvivalAnalysis sa = AnalyzeTimeToNextFailure(idx);
  const auto& env =
      sa.by_trigger[static_cast<std::size_t>(FailureCategory::kEnvironment)];
  const auto& hw =
      sa.by_trigger[static_cast<std::size_t>(FailureCategory::kHardware)];
  ASSERT_GE(env.observations.size(), 3u);
  ASSERT_GE(hw.observations.size(), 3u);
  EXPECT_GT(env.failure_within_week, hw.failure_within_week);
  EXPECT_TRUE(sa.env_vs_hw.significant_99);
}

TEST(TimeToNextFailure, CensoredTailsHandled) {
  // Last failures of each node are censored, never events.
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sys";
  c.num_nodes = 2;
  c.procs_per_node = 4;
  c.observed = {0, 100 * kDay};
  t.AddSystem(c);
  t.AddFailure(MakeFailure(SystemId{0}, NodeId{0}, 10 * kDay,
                           10 * kDay + kHour, FailureCategory::kHardware));
  t.AddFailure(MakeFailure(SystemId{0}, NodeId{0}, 20 * kDay,
                           20 * kDay + kHour, FailureCategory::kHardware));
  t.Finalize();
  const EventIndex idx(t);
  const SurvivalAnalysis sa = AnalyzeTimeToNextFailure(idx);
  const auto& hw =
      sa.by_trigger[static_cast<std::size_t>(FailureCategory::kHardware)];
  ASSERT_EQ(hw.observations.size(), 2u);
  // One observed gap (10 days), one censored tail (80 days).
  int events = 0;
  for (const auto& o : hw.observations) events += o.event ? 1 : 0;
  EXPECT_EQ(events, 1);
}

}  // namespace
}  // namespace hpcfail::core
