#include "trace/failure.h"

#include <gtest/gtest.h>

namespace hpcfail {
namespace {

TEST(FailureCategory, RoundTripsThroughStrings) {
  for (FailureCategory c : AllFailureCategories()) {
    const auto parsed = ParseFailureCategory(ToString(c));
    ASSERT_TRUE(parsed.has_value()) << ToString(c);
    EXPECT_EQ(*parsed, c);
  }
}

TEST(HardwareComponent, RoundTripsThroughStrings) {
  for (HardwareComponent c : AllHardwareComponents()) {
    const auto parsed = ParseHardwareComponent(ToString(c));
    ASSERT_TRUE(parsed.has_value()) << ToString(c);
    EXPECT_EQ(*parsed, c);
  }
}

TEST(SoftwareComponent, RoundTripsThroughStrings) {
  for (SoftwareComponent c : AllSoftwareComponents()) {
    const auto parsed = ParseSoftwareComponent(ToString(c));
    ASSERT_TRUE(parsed.has_value()) << ToString(c);
    EXPECT_EQ(*parsed, c);
  }
}

TEST(EnvironmentEvent, RoundTripsThroughStrings) {
  for (EnvironmentEvent c : AllEnvironmentEvents()) {
    const auto parsed = ParseEnvironmentEvent(ToString(c));
    ASSERT_TRUE(parsed.has_value()) << ToString(c);
    EXPECT_EQ(*parsed, c);
  }
}

TEST(EnumParsing, RejectsUnknownNames) {
  EXPECT_FALSE(ParseFailureCategory("bogus").has_value());
  EXPECT_FALSE(ParseHardwareComponent("HW").has_value());
  EXPECT_FALSE(ParseSoftwareComponent("").has_value());
  EXPECT_FALSE(ParseEnvironmentEvent("power").has_value());
}

TEST(EnumParsing, IsCaseSensitive) {
  EXPECT_FALSE(ParseFailureCategory("Hardware").has_value());
  EXPECT_TRUE(ParseFailureCategory("hardware").has_value());
}

TEST(AllEnumerators, CountsMatchConstants) {
  EXPECT_EQ(AllFailureCategories().size(),
            static_cast<std::size_t>(kNumFailureCategories));
  EXPECT_EQ(AllHardwareComponents().size(),
            static_cast<std::size_t>(kNumHardwareComponents));
  EXPECT_EQ(AllSoftwareComponents().size(),
            static_cast<std::size_t>(kNumSoftwareComponents));
  EXPECT_EQ(AllEnvironmentEvents().size(),
            static_cast<std::size_t>(kNumEnvironmentEvents));
}

TEST(MakeHardwareFailure, ProducesConsistentRecord) {
  const FailureRecord r = MakeHardwareFailure(
      SystemId{1}, NodeId{2}, 100, 200, HardwareComponent::kMemory);
  EXPECT_TRUE(r.consistent());
  EXPECT_EQ(r.category, FailureCategory::kHardware);
  EXPECT_EQ(r.hardware, HardwareComponent::kMemory);
  EXPECT_FALSE(r.software.has_value());
  EXPECT_FALSE(r.environment.has_value());
  EXPECT_EQ(r.downtime(), 100);
}

TEST(MakeSoftwareFailure, ProducesConsistentRecord) {
  const FailureRecord r = MakeSoftwareFailure(SystemId{0}, NodeId{0}, 0, 60,
                                              SoftwareComponent::kPfs);
  EXPECT_TRUE(r.consistent());
  EXPECT_EQ(r.category, FailureCategory::kSoftware);
  EXPECT_EQ(r.software, SoftwareComponent::kPfs);
}

TEST(MakeEnvironmentFailure, ProducesConsistentRecord) {
  const FailureRecord r = MakeEnvironmentFailure(
      SystemId{0}, NodeId{3}, 10, 20, EnvironmentEvent::kPowerOutage);
  EXPECT_TRUE(r.consistent());
  EXPECT_EQ(r.category, FailureCategory::kEnvironment);
  EXPECT_EQ(r.environment, EnvironmentEvent::kPowerOutage);
}

TEST(MakeFailure, PlainCategoriesHaveNoSubcategory) {
  const FailureRecord r =
      MakeFailure(SystemId{0}, NodeId{1}, 5, 6, FailureCategory::kNetwork);
  EXPECT_TRUE(r.consistent());
  EXPECT_FALSE(r.hardware || r.software || r.environment);
}

TEST(FailureRecord, InconsistentWhenSubcategoryMismatchesCategory) {
  FailureRecord r =
      MakeFailure(SystemId{0}, NodeId{1}, 5, 6, FailureCategory::kNetwork);
  r.hardware = HardwareComponent::kCpu;
  EXPECT_FALSE(r.consistent());
}

TEST(FailureRecord, InconsistentWhenNegativeDowntime) {
  FailureRecord r =
      MakeFailure(SystemId{0}, NodeId{1}, 10, 5, FailureCategory::kHuman);
  EXPECT_FALSE(r.consistent());
}

TEST(FailureRecord, SoftwareSubcategoryOnHardwareIsInconsistent) {
  FailureRecord r = MakeHardwareFailure(SystemId{0}, NodeId{0}, 0, 1,
                                        HardwareComponent::kCpu);
  r.software = SoftwareComponent::kOs;
  EXPECT_FALSE(r.consistent());
}

}  // namespace
}  // namespace hpcfail
