#include "stats/rng.h"

#include <gtest/gtest.h>

namespace hpcfail::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(5.0, 10.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 10.0);
  }
}

TEST(Rng, IndexInRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(10), 10u);
  }
  EXPECT_THROW(rng.Index(0), std::invalid_argument);
}

TEST(Rng, IntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.Int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, PoissonMean) {
  Rng rng(12);
  long long sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.Poisson(3.5);
  EXPECT_NEAR(static_cast<double>(sum) / 20000.0, 3.5, 0.1);
}

TEST(Rng, ParetoIsHeavyTailedAboveMinimum) {
  Rng rng(13);
  double max_seen = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.Pareto(1.0, 1.2);
    EXPECT_GE(v, 1.0);
    max_seen = std::max(max_seen, v);
  }
  // Heavy tail: some samples far above the minimum.
  EXPECT_GT(max_seen, 20.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(14);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(42);
  b.Fork();
  int same = 0;
  Rng fresh(42);
  Rng fresh_child = fresh.Fork();
  for (int i = 0; i < 100; ++i) {
    const double x = child.Uniform();
    const double y = fresh_child.Uniform();
    if (x == y) ++same;
  }
  EXPECT_EQ(same, 100);  // deterministic fork
}

}  // namespace
}  // namespace hpcfail::stats
