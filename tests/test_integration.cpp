// End-to-end integration: generate a LANL-like trace and verify that every
// analysis rediscovers the structure the generator injected — the full
// pipeline the benches run, at reduced scale.
#include <gtest/gtest.h>

#include "core/cosmic_analysis.h"
#include "core/joint_regression.h"
#include "core/node_skew.h"
#include "core/power_analysis.h"
#include "core/report.h"
#include "core/temperature_analysis.h"
#include "core/usage_analysis.h"
#include "core/user_analysis.h"
#include "core/window_analysis.h"
#include "synth/generate.h"

namespace hpcfail::core {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new Trace(
        synth::GenerateTrace(synth::LanlLikeScenario(0.25, 2 * kYear), 2013));
    g1_ = new EventIndex(*trace_, SystemsOfGroup(*trace_, SystemGroup::kSmp));
    g2_ = new EventIndex(*trace_, SystemsOfGroup(*trace_, SystemGroup::kNuma));
  }
  static void TearDownTestSuite() {
    delete g1_;
    delete g2_;
    delete trace_;
    g1_ = g2_ = nullptr;
    trace_ = nullptr;
  }

  static Trace* trace_;
  static EventIndex* g1_;
  static EventIndex* g2_;
};

Trace* IntegrationTest::trace_ = nullptr;
EventIndex* IntegrationTest::g1_ = nullptr;
EventIndex* IntegrationTest::g2_ = nullptr;

TEST_F(IntegrationTest, UnconditionalDailyProbabilitiesMatchPaperOrder) {
  const WindowAnalyzer a1(*g1_), a2(*g2_);
  const auto b1 = a1.BaselineProbability(EventFilter::Any(), kDay);
  const auto b2 = a2.BaselineProbability(EventFilter::Any(), kDay);
  // Paper: 0.31% (group 1) and 4.6% (group 2).
  EXPECT_GT(b1.estimate, 0.001);
  EXPECT_LT(b1.estimate, 0.008);
  EXPECT_GT(b2.estimate, 0.02);
  EXPECT_LT(b2.estimate, 0.09);
}

TEST_F(IntegrationTest, SameNodeCorrelationSignificant) {
  for (const EventIndex* idx : {g1_, g2_}) {
    const WindowAnalyzer a(*idx);
    const auto day =
        a.Compare(EventFilter::Any(), EventFilter::Any(), Scope::kSameNode,
                  kDay);
    EXPECT_GT(day.factor, 3.0);
    EXPECT_TRUE(day.test.significant_99);
  }
}

TEST_F(IntegrationTest, EnvironmentAndNetworkAreStrongestTriggers) {
  // Fig. 1a: env/net triggers beat the hardware trigger in group 1.
  const WindowAnalyzer a(*g1_);
  const auto env = a.Compare(EventFilter::Of(FailureCategory::kEnvironment),
                             EventFilter::Any(), Scope::kSameNode, kWeek);
  const auto net = a.Compare(EventFilter::Of(FailureCategory::kNetwork),
                             EventFilter::Any(), Scope::kSameNode, kWeek);
  const auto hw = a.Compare(EventFilter::Of(FailureCategory::kHardware),
                            EventFilter::Any(), Scope::kSameNode, kWeek);
  EXPECT_GT(env.factor, hw.factor);
  EXPECT_GT(net.factor, hw.factor);
  // Paper: 30-50% chance of failure in the week after env/net failures.
  EXPECT_GT(env.conditional.estimate, 0.25);
}

TEST_F(IntegrationTest, SameTypeFollowUpStrongerThanAnyType) {
  // Fig. 1b: same-type follow-up factors dwarf any-type factors.
  const WindowAnalyzer a(*g1_);
  for (FailureCategory c : {FailureCategory::kEnvironment,
                            FailureCategory::kNetwork,
                            FailureCategory::kSoftware}) {
    const auto same = a.Compare(EventFilter::Of(c), EventFilter::Of(c),
                                Scope::kSameNode, kWeek);
    const auto baseline_factor =
        a.Compare(EventFilter::Any(), EventFilter::Of(c), Scope::kSameNode,
                  kWeek);
    EXPECT_GT(same.factor, baseline_factor.factor)
        << "category " << ToString(c);
  }
}

TEST_F(IntegrationTest, MemoryBegetsMemory) {
  // Section III.A.4: the weekly memory-after-memory probability is tens of
  // times the random-week probability.
  const WindowAnalyzer a(*g1_);
  const auto mem = a.Compare(EventFilter::Of(HardwareComponent::kMemory),
                             EventFilter::Of(HardwareComponent::kMemory),
                             Scope::kSameNode, kWeek);
  EXPECT_GT(mem.factor, 10.0);
  EXPECT_TRUE(mem.test.significant_99);
}

TEST_F(IntegrationTest, RackCorrelationWeakerThanNodeStrongerThanBaseline) {
  const WindowAnalyzer a(*g1_);
  const auto node = a.Compare(EventFilter::Any(), EventFilter::Any(),
                              Scope::kSameNode, kDay);
  const auto rack = a.Compare(EventFilter::Any(), EventFilter::Any(),
                              Scope::kRackPeers, kDay);
  EXPECT_GT(rack.factor, 1.2);
  EXPECT_LT(rack.factor, node.factor);
}

TEST_F(IntegrationTest, SystemCorrelationWeakest) {
  const WindowAnalyzer a(*g1_);
  const auto rack = a.Compare(EventFilter::Any(), EventFilter::Any(),
                              Scope::kRackPeers, kWeek);
  const auto sys = a.Compare(EventFilter::Any(), EventFilter::Any(),
                             Scope::kSystemPeers, kWeek);
  EXPECT_GT(sys.factor, 1.0);
  EXPECT_LT(sys.factor, rack.factor);
}

TEST_F(IntegrationTest, NodeZeroSkewAcrossBigSystems) {
  // Fig. 4: node 0 tops every large group-1 system, and equal rates are
  // rejected even after removing it.
  for (const SystemConfig& s : trace_->systems()) {
    if (s.group != SystemGroup::kSmp || s.num_nodes < 100) continue;
    const NodeSkewSummary skew = AnalyzeNodeSkew(*g1_, s.id);
    EXPECT_EQ(skew.most_failing_node, NodeId{0}) << s.name;
    EXPECT_GT(skew.max_over_mean, 5.0) << s.name;
    EXPECT_TRUE(skew.equal_rates_test.significant_99) << s.name;
    EXPECT_TRUE(skew.equal_rates_test_excl_top.significant_99) << s.name;
  }
}

TEST_F(IntegrationTest, ProneNodeShiftsToSoftwareDominance) {
  // Fig. 5: hardware dominates the rest; software/network/env dominate
  // node 0.
  for (const SystemConfig& s : trace_->systems()) {
    if (s.name != "system20") continue;
    const BreakdownComparison b = CompareBreakdown(*g1_, s.id, NodeId{0});
    const auto hw = static_cast<std::size_t>(FailureCategory::kHardware);
    const auto sw = static_cast<std::size_t>(FailureCategory::kSoftware);
    EXPECT_GT(b.rest_percent[hw], b.rest_percent[sw]);
    EXPECT_GT(b.node_percent[sw] + b.node_percent[static_cast<std::size_t>(
                                       FailureCategory::kNetwork)],
              b.node_percent[hw]);
  }
}

TEST_F(IntegrationTest, PowerEventsRaiseHardwareAndSoftwareFailures) {
  const WindowAnalyzer a(*g1_);
  const auto hw_rows =
      PowerImpactOn(a, EventFilter::Of(FailureCategory::kHardware));
  const auto sw_rows =
      PowerImpactOn(a, EventFilter::Of(FailureCategory::kSoftware));
  for (const auto& rows : {hw_rows, sw_rows}) {
    for (const PowerImpactRow& r : rows) {
      if (r.month.num_triggers < 10) continue;
      EXPECT_GT(r.month.factor, 1.5) << ToString(r.problem);
    }
  }
}

TEST_F(IntegrationTest, EnvBreakdownDominatedByPower) {
  const EnvironmentBreakdown b = BreakdownEnvironment(*g1_);
  ASSERT_GT(b.total, 100);
  const double outage =
      b.percent[static_cast<std::size_t>(EnvironmentEvent::kPowerOutage)];
  // Fig. 9: outages are the single largest subcategory (49%).
  for (std::size_t i = 0; i < b.percent.size(); ++i) {
    if (i == static_cast<std::size_t>(EnvironmentEvent::kPowerOutage)) {
      continue;
    }
    EXPECT_GE(outage, b.percent[i]);
  }
}

TEST_F(IntegrationTest, UsageCorrelatesWithFailures) {
  for (SystemId sys : SystemsWithJobs(*trace_)) {
    const UsageAnalysis u = AnalyzeUsage(*g1_, sys);
    EXPECT_GT(u.jobs_vs_failures.r, 0.05);
    EXPECT_LT(u.jobs_vs_failures_excl_top.r, u.jobs_vs_failures.r);
  }
}

TEST_F(IntegrationTest, UserFailureRatesHeterogeneous) {
  for (SystemId sys : SystemsWithJobs(*trace_)) {
    const UserAnalysis u = AnalyzeUsers(*trace_, sys, 50);
    EXPECT_TRUE(u.rate_heterogeneity.significant_99);
  }
}

TEST_F(IntegrationTest, TemperatureInsignificantButFanFailuresMatter) {
  const auto temp_systems = SystemsWithTemperature(*trace_);
  ASSERT_FALSE(temp_systems.empty());
  const auto regs = RegressFailuresOnTemperature(*g1_, temp_systems[0]);
  for (const TemperatureRegression& r : regs) {
    if (r.covariate == "avg_temp" && r.target == "hardware") {
      EXPECT_GT(r.negbin_p, 0.01);
    }
  }
  const WindowAnalyzer a(*g1_);
  const auto cooling = CoolingFailureImpact(a);
  EXPECT_GT(cooling[0].month.factor, 2.0);  // fans
}

TEST_F(IntegrationTest, CosmicCouplingOnlyWhereInjected) {
  // Group-1 systems except system20 carry the CPU-flux coupling.
  for (const SystemConfig& s : trace_->systems()) {
    if (s.name == "system18") {
      const CosmicAnalysis c = AnalyzeCosmic(*g1_, s.id);
      EXPECT_GT(c.cpu_corr.r, 0.0);
    }
  }
}

TEST_F(IntegrationTest, JointRegressionFindsUsageSignificant) {
  const auto temp_systems = SystemsWithTemperature(*trace_);
  ASSERT_FALSE(temp_systems.empty());
  const JointRegression jr =
      FitJointRegression(*g1_, temp_systems[0], NodeId{0});
  EXPECT_LT(jr.negative_binomial.coefficient("num_jobs").p_value, 0.05);
  EXPECT_GT(jr.negative_binomial.coefficient("PIR").p_value, 0.01);
}

}  // namespace
}  // namespace hpcfail::core
