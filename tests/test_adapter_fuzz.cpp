// Property/fuzz tests for the format-adapter layer, extending the
// test_csv_fuzz contract to every registered adapter:
//
//   * ParseLog never crashes on corrupted input — it returns (with rejects
//     counted) or throws std::runtime_error (a kFatal format mismatch);
//   * every consumed line is accounted: lines == records + ignored +
//     rejected, both in the returned counters and in the global
//     hpcfail_adapter_* metrics — malformed, truncated, or binary input is
//     rejected with counters, never silently dropped;
//   * truncation at any line boundary parses a clean prefix.
//
// Corruptions are deterministic (seeded stats::Rng), so a failure here is
// reproducible from the adapter name and iteration number alone.
#include "trace/adapter.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "stats/rng.h"

namespace hpcfail {
namespace {

long long CounterValue(const char* name) {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  const obs::MetricsSnapshot::CounterValue* c = snap.FindCounter(name);
  return c != nullptr ? c->value : 0;
}

struct AdapterCounterDelta {
  long long lines, records, ignored, rejected;

  static AdapterCounterDelta Now() {
    return {CounterValue("hpcfail_adapter_lines_total"),
            CounterValue("hpcfail_adapter_records_total"),
            CounterValue("hpcfail_adapter_ignored_lines_total"),
            CounterValue("hpcfail_adapter_rejected_lines_total")};
  }
  AdapterCounterDelta Since(const AdapterCounterDelta& start) const {
    return {lines - start.lines, records - start.records,
            ignored - start.ignored, rejected - start.rejected};
  }
};

std::string ReadFixture(const char* name) {
  std::ifstream is(std::string(HPCFAIL_TEST_DATA_DIR) + "/" + name,
                   std::ios::binary);
  EXPECT_TRUE(is.is_open()) << name;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// A clean seed payload per adapter, from the checked-in fixtures (plus a
// hand-rolled one for the two CSV formats).
std::string CleanPayload(std::string_view adapter) {
  if (adapter == "hpcfail_csv") {
    return "system,node,start,end,category,subcategory\n"
           "0,0,100,200,hardware,cpu\n"
           "0,1,300,400,software,os\n"
           "1,0,500,500,undetermined,\n";
  }
  if (adapter == "lanl_csv") {
    return "system,node,started,fixed,cause,detail\n"
           "2,0,06/14/2004 03:12,06/14/2004 05:00,Hardware,Memory Dimm\n"
           "2,1,06/15/2004 10:00,06/15/2004 11:30,Software,OS\n"
           "3,2,07/01/2004 12:00,07/01/2004 12:45,Network,\n";
  }
  if (adapter == "bgq_ras") return ReadFixture("bgq_ras_sample.csv");
  return ReadFixture("syslog_sample.log");
}

// One ParseLog run with full accounting checks. Returns true if it threw.
bool ParseAndCheckAccounting(const trace::LogAdapter& adapter,
                             const std::string& payload,
                             const std::string& context) {
  const AdapterCounterDelta before = AdapterCounterDelta::Now();
  std::istringstream is(payload);
  bool threw = false;
  trace::ParseResult parsed;
  try {
    parsed = trace::ParseLog(adapter, is, trace::AdapterOptions{});
  } catch (const std::runtime_error&) {
    threw = true;  // kFatal: the payload cannot be this format — fine.
  }
  if (!threw) {
    EXPECT_EQ(parsed.counters.lines, parsed.counters.records +
                                         parsed.counters.ignored +
                                         parsed.counters.rejected)
        << context << ": a consumed line went unaccounted";
    EXPECT_EQ(parsed.failures.size(), parsed.counters.records) << context;
    // issues is capped, but never beyond what was rejected.
    EXPECT_LE(parsed.issues.size(),
              static_cast<std::size_t>(parsed.counters.rejected))
        << context;
  }
  if (obs::kEnabled) {
    const AdapterCounterDelta d = AdapterCounterDelta::Now().Since(before);
    EXPECT_EQ(d.lines, d.records + d.ignored + d.rejected)
        << context << ": metrics do not account every line";
    if (!threw) {
      EXPECT_EQ(d.records, static_cast<long long>(parsed.failures.size()))
          << context;
    }
  }
  return threw;
}

TEST(AdapterFuzz, CleanPayloadsParseWithFullAccounting) {
  for (const trace::LogAdapter* adapter : trace::Registry()) {
    const bool threw =
        ParseAndCheckAccounting(*adapter, CleanPayload(adapter->name()),
                                std::string(adapter->name()) + "/clean");
    EXPECT_FALSE(threw) << adapter->name();
  }
}

TEST(AdapterFuzz, RandomCorruptionsNeverCrashOrMiscount) {
  stats::Rng rng(20260809);
  for (const trace::LogAdapter* adapter : trace::Registry()) {
    const std::string clean = CleanPayload(adapter->name());
    for (int iter = 0; iter < 150; ++iter) {
      std::string payload = clean;
      const int n_corruptions = 1 + static_cast<int>(rng.Index(3));
      for (int c = 0; c < n_corruptions; ++c) {
        switch (rng.Index(6)) {
          case 0:  // truncate at a random offset
            payload.resize(rng.Index(payload.size() + 1));
            break;
          case 1:  // stray NUL byte
            if (!payload.empty()) payload[rng.Index(payload.size())] = '\0';
            break;
          case 2:  // random byte flip
            if (!payload.empty()) {
              payload[rng.Index(payload.size())] =
                  static_cast<char>(rng.Int(0, 255));
            }
            break;
          case 3: {  // overlong field injected mid-file
            const std::size_t at = rng.Index(payload.size() + 1);
            payload.insert(at, std::string(rng.Index(5000), 'z'));
            break;
          }
          case 4: {  // duplicated chunk (tears a line in two)
            const std::size_t at = rng.Index(payload.size() + 1);
            payload.insert(at, payload.substr(at / 2, rng.Index(64)));
            break;
          }
          case 5: {  // random newline insertion
            const std::size_t at = rng.Index(payload.size() + 1);
            payload.insert(at, rng.Bernoulli(0.5) ? "\n" : "\r\n");
            break;
          }
        }
      }
      ParseAndCheckAccounting(*adapter, payload,
                              std::string(adapter->name()) + "/iter " +
                                  std::to_string(iter));
    }
  }
}

TEST(AdapterFuzz, PureBinaryGarbageIsRejectedWithCounters) {
  stats::Rng rng(424242);
  std::string garbage;
  for (int i = 0; i < 4096; ++i) {
    garbage.push_back(static_cast<char>(rng.Int(0, 255)));
  }
  for (const trace::LogAdapter* adapter : trace::Registry()) {
    ParseAndCheckAccounting(*adapter, garbage,
                            std::string(adapter->name()) + "/garbage");
    // And garbage must not sniff as any format.
    EXPECT_LE(adapter->SniffScore(garbage), 0) << adapter->name();
  }
}

TEST(AdapterFuzz, TruncationAtEveryLineBoundaryParsesPrefix) {
  for (const trace::LogAdapter* adapter : trace::Registry()) {
    const std::string clean = CleanPayload(adapter->name());
    std::vector<std::size_t> boundaries;
    for (std::size_t i = 0; i < clean.size(); ++i) {
      if (clean[i] == '\n') boundaries.push_back(i + 1);
    }
    std::size_t prev_records = 0;
    for (const std::size_t at : boundaries) {
      std::istringstream is(clean.substr(0, at));
      const trace::ParseResult parsed =
          trace::ParseLog(*adapter, is, trace::AdapterOptions{});
      EXPECT_GE(parsed.failures.size(), prev_records)
          << adapter->name() << ": a longer prefix lost records (cut at "
          << at << ")";
      prev_records = parsed.failures.size();
    }
  }
}

}  // namespace
}  // namespace hpcfail
