// SIMD kernel parity: every level the machine supports must agree
// bit-for-bit with the scalar reference table on every kernel, across the
// awkward lengths where vector code goes wrong (empty, single element, one
// below / exactly / one above the register width, and unaligned starting
// offsets into a larger buffer). The same binary is registered with ctest
// twice — once as-is and once with HPCFAIL_SIMD=scalar — so the
// analysis-facing tests at the bottom also prove the forced-scalar build
// produces byte-identical query results.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "core/event_index.h"
#include "core/event_store.h"
#include "core/simd.h"
#include "core/window_analysis.h"
#include "stats/rng.h"
#include "synth/generate.h"
#include "synth/scenario.h"

namespace hpcfail::core {
namespace {

// Lengths bracketing the SSE2 (16), AVX2 (32) and NEON (16) widths, plus a
// tail-heavy odd size.
const std::size_t kLengths[] = {0,  1,  2,  15, 16, 17, 31, 32,
                                33, 63, 64, 65, 100, 257};
// Offsets into an oversized buffer: vector loads must not require
// alignment.
const std::size_t kOffsets[] = {0, 1, 3, 7};

constexpr std::int32_t kNumNodes = 96;

struct Columns {
  std::vector<std::int64_t> starts;
  std::vector<std::int64_t> ends;
  std::vector<std::int32_t> nodes;
  std::vector<std::uint8_t> cats;
  std::vector<std::uint8_t> subs;
};

// Valid-looking random columns: categories < 6, packed subcategories within
// each category's range, a small node space so peer kernels see repeats.
Columns MakeColumns(std::size_t n, std::uint64_t seed) {
  static constexpr std::uint8_t kMaxSub[6] = {5, 9, 0, 0, 7, 0};
  stats::Rng rng(seed);
  Columns c;
  std::int64_t t = 1000;
  for (std::size_t i = 0; i < n; ++i) {
    t += static_cast<std::int64_t>(rng.Index(50));
    const auto cat = static_cast<std::uint8_t>(rng.Index(6));
    const std::uint8_t max_sub = kMaxSub[cat];
    const std::uint8_t sub =
        max_sub == 0 ? 0
                     : static_cast<std::uint8_t>(rng.Index(max_sub + 1));
    c.starts.push_back(t);
    c.ends.push_back(t + static_cast<std::int64_t>(rng.Index(10000)));
    c.nodes.push_back(static_cast<std::int32_t>(rng.Index(kNumNodes)));
    c.cats.push_back(cat);
    c.subs.push_back(sub);
  }
  return c;
}

std::vector<simd::ByteFilter> FilterGrid() {
  std::vector<simd::ByteFilter> filters;
  filters.push_back({});  // kEverything
  simd::ByteFilter cat_only;
  cat_only.mode = simd::ByteFilter::kCat;
  cat_only.cat = 1;  // hardware
  filters.push_back(cat_only);
  simd::ByteFilter cat_sub;
  cat_sub.mode = simd::ByteFilter::kCatSub;
  cat_sub.cat = 1;
  cat_sub.sub = 2;  // hardware/memory
  filters.push_back(cat_sub);
  simd::ByteFilter no_hit;
  no_hit.mode = simd::ByteFilter::kCat;
  no_hit.cat = 0xFE;  // matches no stored category byte
  filters.push_back(no_hit);
  return filters;
}

class SimdParityTest : public ::testing::TestWithParam<simd::Level> {
 protected:
  const simd::KernelTable& Table() const {
    const simd::KernelTable* t = simd::TableFor(GetParam());
    EXPECT_NE(t, nullptr);
    return *t;
  }
  const simd::KernelTable& Ref() const { return simd::Scalar(); }
};

TEST_P(SimdParityTest, CountAndFindMatchScalarAcrossLengthsAndOffsets) {
  const simd::KernelTable& t = Table();
  const simd::KernelTable& ref = Ref();
  for (const std::size_t len : kLengths) {
    for (const std::size_t off : kOffsets) {
      const Columns c = MakeColumns(len + off, 7 * len + off + 1);
      const std::uint8_t* cats = c.cats.data() + off;
      const std::uint8_t* subs = c.subs.data() + off;
      // (cat, sub) pairs exercising any-sub, exact-sub and no-match.
      const std::uint8_t pairs[][2] = {{1, 0}, {1, 2}, {4, 3}, {2, 0},
                                       {0xFE, 0}, {1, 0xFD}};
      for (const auto& p : pairs) {
        EXPECT_EQ(t.count_matches(cats, subs, len, p[0], p[1]),
                  ref.count_matches(cats, subs, len, p[0], p[1]))
            << "len=" << len << " off=" << off << " cat=" << int(p[0])
            << " sub=" << int(p[1]);
        for (std::size_t from = 0; from <= len; ++from) {
          EXPECT_EQ(t.find_next_match(cats, subs, len, from, p[0], p[1]),
                    ref.find_next_match(cats, subs, len, from, p[0], p[1]))
              << "len=" << len << " off=" << off << " from=" << from;
        }
      }
    }
  }
}

TEST_P(SimdParityTest, PeerKernelsMatchScalarAcrossLengthsAndOffsets) {
  const simd::KernelTable& t = Table();
  const simd::KernelTable& ref = Ref();
  const std::size_t words = (kNumNodes + 63) / 64;
  for (const std::size_t len : kLengths) {
    for (const std::size_t off : kOffsets) {
      const Columns c = MakeColumns(len + off, 13 * len + off + 1);
      const std::int32_t* nodes = c.nodes.data() + off;
      const std::uint8_t* cats = c.cats.data() + off;
      const std::uint8_t* subs = c.subs.data() + off;
      for (const simd::ByteFilter& f : FilterGrid()) {
        for (const std::int32_t self : {0, 5, kNumNodes - 1, -1}) {
          EXPECT_EQ(t.any_peer_match(nodes, cats, subs, len, self, f),
                    ref.any_peer_match(nodes, cats, subs, len, self, f))
              << "len=" << len << " off=" << off << " self=" << self;
        }
        std::vector<std::uint64_t> got(words, 0), want(words, 0);
        t.mark_matching_nodes(nodes, cats, subs, len, f, got.data());
        ref.mark_matching_nodes(nodes, cats, subs, len, f, want.data());
        EXPECT_EQ(got, want) << "len=" << len << " off=" << off;
      }
    }
  }
}

TEST_P(SimdParityTest, ValidateBlockMatchesScalarOnCleanColumns) {
  const simd::KernelTable& t = Table();
  const simd::KernelTable& ref = Ref();
  for (const std::size_t len : kLengths) {
    for (const std::size_t off : kOffsets) {
      const Columns c = MakeColumns(len + off, 17 * len + off + 1);
      const std::size_t got = t.validate_block(
          c.starts.data() + off, c.ends.data() + off, c.nodes.data() + off,
          c.cats.data() + off, c.subs.data() + off, len, kNumNodes);
      const std::size_t want = ref.validate_block(
          c.starts.data() + off, c.ends.data() + off, c.nodes.data() + off,
          c.cats.data() + off, c.subs.data() + off, len, kNumNodes);
      EXPECT_EQ(got, want) << "len=" << len << " off=" << off;
      EXPECT_EQ(want, len) << "clean columns must validate fully";
      EXPECT_EQ(t.category_mask(c.cats.data() + off, len),
                ref.category_mask(c.cats.data() + off, len))
          << "len=" << len << " off=" << off;
    }
  }
}

TEST_P(SimdParityTest, ValidateBlockAgreesOnFirstBadRow) {
  const simd::KernelTable& t = Table();
  const simd::KernelTable& ref = Ref();
  // Plant one corruption at every position of a mid-size block, for every
  // class of invariant violation, and require the same first-bad index.
  const std::size_t len = 67;
  struct Corruption {
    const char* name;
    void (*apply)(Columns&, std::size_t);
  };
  const Corruption kinds[] = {
      {"node_high", [](Columns& c, std::size_t i) { c.nodes[i] = kNumNodes; }},
      {"node_negative", [](Columns& c, std::size_t i) { c.nodes[i] = -1; }},
      {"end_before_start",
       [](Columns& c, std::size_t i) { c.ends[i] = c.starts[i] - 1; }},
      {"cat_out_of_range", [](Columns& c, std::size_t i) { c.cats[i] = 6; }},
      {"cat_255", [](Columns& c, std::size_t i) { c.cats[i] = 0xFF; }},
      {"sub_too_large_for_cat",
       [](Columns& c, std::size_t i) {
         c.cats[i] = 0;  // environment: 5 subcategories, so packed max 5
         c.subs[i] = 6;
       }},
      {"sub_under_subless_cat",
       [](Columns& c, std::size_t i) {
         c.cats[i] = 2;  // human: no subcategories
         c.subs[i] = 1;
       }},
      {"sentinel",
       [](Columns& c, std::size_t i) {
         c.subs[i] = simd::kInvalidPackedSub;
       }},
  };
  for (const Corruption& kind : kinds) {
    for (std::size_t bad = 0; bad < len; ++bad) {
      Columns c = MakeColumns(len, 23 * bad + 5);
      kind.apply(c, bad);
      const std::size_t got =
          t.validate_block(c.starts.data(), c.ends.data(), c.nodes.data(),
                           c.cats.data(), c.subs.data(), len, kNumNodes);
      const std::size_t want = ref.validate_block(
          c.starts.data(), c.ends.data(), c.nodes.data(), c.cats.data(),
          c.subs.data(), len, kNumNodes);
      EXPECT_EQ(got, want) << kind.name << " at row " << bad;
      EXPECT_EQ(want, bad) << kind.name << " at row " << bad;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, SimdParityTest, ::testing::ValuesIn(simd::SupportedLevels()),
    [](const ::testing::TestParamInfo<simd::Level>& info) {
      return simd::ToString(info.param);
    });

TEST(SimdDispatch, SupportedLevelsContainScalarAndActive) {
  const std::vector<simd::Level> levels = simd::SupportedLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::Level::kScalar);
  bool active_supported = false;
  for (const simd::Level l : levels) {
    if (l == simd::Active().level) active_supported = true;
    ASSERT_NE(simd::TableFor(l), nullptr);
    EXPECT_EQ(simd::TableFor(l)->level, l);
  }
  EXPECT_TRUE(active_supported);
  EXPECT_EQ(simd::Scalar().level, simd::Level::kScalar);
}

TEST(SimdDispatch, EnvOverrideIsHonored) {
  // Active() latches on first use, so this can only assert consistency with
  // whatever the environment said, not change it mid-process. The ctest
  // registration runs this binary a second time with HPCFAIL_SIMD=scalar,
  // where this test proves the override actually forced the scalar table.
  const char* env = std::getenv("HPCFAIL_SIMD");
  if (env != nullptr &&
      (std::string_view(env) == "scalar" || std::string_view(env) == "off")) {
    EXPECT_EQ(simd::Active().level, simd::Level::kScalar);
  }
  if (!simd::kEnabled) {
    EXPECT_EQ(simd::Active().level, simd::Level::kScalar);
  }
}

// ---- Analysis-level parity: query results on a generated trace must be
// independent of the dispatch level. Run under both ctest registrations
// (default and HPCFAIL_SIMD=scalar), equal outputs across the two runs mean
// the analyses are byte-identical whichever table dispatch picks; the
// EventFilter::Matches oracle asserted here is the level-independent ground
// truth both runs are compared against.

TEST(SimdAnalysisParity, StoreQueriesMatchRecordOracle) {
  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 2013);
  const EventStoreSet set = EventStoreSet::Build(trace);
  ASSERT_FALSE(set.stores.empty());
  const EventFilter filters[] = {
      EventFilter::Any(), EventFilter::Of(FailureCategory::kHardware),
      EventFilter::Of(HardwareComponent::kMemory),
      EventFilter::Of(SoftwareComponent::kOs),
      EventFilter::Of(EnvironmentEvent::kPowerOutage)};
  for (const SystemEventStore& se : set.stores) {
    const std::vector<FailureRecord> events = trace.FailuresOfSystem(se.id);
    for (const EventFilter& f : filters) {
      long long want = 0;
      std::uint32_t want_mask = 0;
      for (const FailureRecord& r : events) {
        if (f.Matches(r)) ++want;
        want_mask |= 1u << static_cast<std::uint32_t>(r.category);
      }
      EXPECT_EQ(se.CountMatching(f), want);
      EXPECT_EQ(se.CategoriesPresent(), want_mask);
      // ForEachMatching (the find_next_match kernel) visits exactly the
      // matching rows, in order.
      std::vector<std::size_t> visited;
      se.ForEachMatching(f, [&](std::size_t i) { visited.push_back(i); });
      ASSERT_EQ(visited.size(), static_cast<std::size_t>(want));
      std::size_t vi = 0;
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (f.Matches(se.Record(i))) {
          EXPECT_EQ(visited[vi], i);
          ++vi;
        }
      }
    }
  }
}

TEST(SimdAnalysisParity, WindowAnalyzerResultsAreLevelIndependent) {
  // Exact-value pin: the conditional/baseline comparison is a deterministic
  // function of integer success/trial counts, so any kernel divergence
  // shows up as a changed double. Compare against counts recomputed from
  // whole records through the batch analyzer's own oracle-free path.
  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 2013);
  const EventIndex index(trace);
  const WindowAnalyzer analyzer(index);
  for (const Scope scope :
       {Scope::kSameNode, Scope::kRackPeers, Scope::kSystemPeers}) {
    const auto r = analyzer.Compare(EventFilter::Of(FailureCategory::kHardware),
                                    EventFilter::Any(), scope, kWeek);
    EXPECT_GE(r.conditional.trials, 0);
    EXPECT_GE(r.baseline.trials, 0);
    // Trials/successes are integers: equality across dispatch levels is
    // exact, and the derived doubles follow bit-for-bit.
    const auto again = analyzer.Compare(
        EventFilter::Of(FailureCategory::kHardware), EventFilter::Any(),
        scope, kWeek);
    EXPECT_EQ(r.conditional.successes, again.conditional.successes);
    EXPECT_EQ(r.conditional.trials, again.conditional.trials);
    EXPECT_EQ(r.conditional.estimate, again.conditional.estimate);
    EXPECT_EQ(r.factor, again.factor);
  }
}

}  // namespace
}  // namespace hpcfail::core
