// End-to-end tests for serve::Server over real sockets: both wire syntaxes,
// byte-parity with the engine renderer, per-request deadlines (504),
// admission control under overload (bounded queue, explicit 503 shedding,
// never a hang), and graceful drain (in-flight requests finish, threads
// join, the process state is reusable).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/report_render.h"
#include "engine/session.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "synth/scenario.h"

namespace hpcfail::serve {
namespace {

// ---- Raw test client ------------------------------------------------------

class TestClient {
 public:
  explicit TestClient(int port, int recv_timeout_ms = 5000) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  bool Send(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  // Reads until EOF or the receive timeout (returns what arrived).
  std::string ReadAll() {
    std::string all;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      all.append(chunk, static_cast<std::size_t>(n));
    }
    return all;
  }

  // Reads exactly one line-protocol frame: "OK <n>\n" + n bytes, or an
  // "ERR ...\n" line. Empty string on timeout/EOF.
  std::string ReadFrame() {
    std::string header;
    if (!ReadLine(&header)) return {};
    if (header.rfind("ERR", 0) == 0) return header + "\n";
    if (header.rfind("OK ", 0) != 0) return header + "\n";
    const std::size_t want = std::stoul(header.substr(3));
    std::string payload;
    while (payload.size() < want) {
      if (buffer_.empty() && !Fill()) break;
      const std::size_t take =
          std::min(want - payload.size(), buffer_.size());
      payload.append(buffer_, 0, take);
      buffer_.erase(0, take);
    }
    return header + "\n" + payload;
  }

 private:
  bool Fill() {
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
  }
  bool ReadLine(std::string* line) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      if (!Fill()) return false;
    }
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

ServerConfig TestConfig() {
  ServerConfig config;
  config.port = 0;
  config.workers = 2;
  config.session.cache.enabled = false;  // hermetic: no artifact-cache I/O
  return config;
}

std::string HttpBody(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string{} : response.substr(at + 4);
}

// The query every test uses: small enough to build in well under a second.
constexpr char kQuery[] = "scale=0.05 years=0.5 seed=11";

TEST(ServeServer, LineProtocolBasics) {
  Server server(TestConfig());
  server.Start();
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("PING\nHEALTH\nQUIT\n"));
  EXPECT_EQ(client.ReadFrame(), "OK 5\npong\n");
  EXPECT_EQ(client.ReadFrame(), "OK 3\nok\n");
  EXPECT_EQ(client.ReadFrame(), "OK 4\nbye\n");
  server.Shutdown();
}

TEST(ServeServer, HttpHealthzAndMetrics) {
  Server server(TestConfig());
  server.Start();
  {
    TestClient client(server.port());
    ASSERT_TRUE(client.Send("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"));
    const std::string response = client.ReadAll();
    EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_EQ(HttpBody(response), "ok\n");
  }
  {
    TestClient client(server.port());
    ASSERT_TRUE(client.Send("GET /metrics HTTP/1.1\r\n\r\n"));
    const std::string response = client.ReadAll();
    EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(HttpBody(response).find("hpcfail_serve_requests_total"),
              std::string::npos);
  }
  server.Shutdown();
}

TEST(ServeServer, ReportBytesMatchEngineRenderer) {
  Server server(TestConfig());
  server.Start();

  // What the CLI would print for the same scenario + seed.
  engine::SessionOptions options;
  options.cache.enabled = false;
  const auto session = engine::AnalysisSession::FromScenario(
      synth::LanlLikeScenario(0.05, kYear / 2), 11, options);
  std::ostringstream expected;
  engine::RenderReport(session, expected);

  TestClient line_client(server.port(), /*recv_timeout_ms=*/20000);
  ASSERT_TRUE(line_client.Send(std::string("REPORT ") + kQuery + "\n"));
  const std::string frame = line_client.ReadFrame();
  const std::string header =
      "OK " + std::to_string(expected.str().size()) + "\n";
  ASSERT_EQ(frame.substr(0, header.size()), header);
  EXPECT_EQ(frame.substr(header.size()), expected.str());

  TestClient http_client(server.port(), /*recv_timeout_ms=*/20000);
  ASSERT_TRUE(http_client.Send(
      "GET /report?scale=0.05&years=0.5&seed=11 HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(HttpBody(http_client.ReadAll()), expected.str());

  // Both went through one pooled session: a build, then a hit.
  const auto stats = server.pool().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  server.Shutdown();
}

TEST(ServeServer, TableSectionsConcatenateToFullReport) {
  Server server(TestConfig());
  server.Start();
  std::string concatenated;
  for (const char* name :
       {"overview", "correlations", "persystem", "environment", "usage"}) {
    TestClient client(server.port(), /*recv_timeout_ms=*/20000);
    ASSERT_TRUE(client.Send(std::string("TABLE ") + name + " " + kQuery +
                            "\n"));
    const std::string frame = client.ReadFrame();
    ASSERT_EQ(frame.rfind("OK ", 0), 0u) << name << ": " << frame;
    concatenated += frame.substr(frame.find('\n') + 1);
  }
  TestClient client(server.port(), /*recv_timeout_ms=*/20000);
  ASSERT_TRUE(client.Send(std::string("REPORT ") + kQuery + "\n"));
  const std::string full = client.ReadFrame();
  EXPECT_EQ(full.substr(full.find('\n') + 1), concatenated);
  server.Shutdown();
}

TEST(ServeServer, ShardedReportBytesMatchMonolithic) {
  Server server(TestConfig());
  server.Start();

  // The monolithic bytes (what the CLI and the plain REPORT print).
  engine::SessionOptions options;
  options.cache.enabled = false;
  const auto session = engine::AnalysisSession::FromScenario(
      synth::LanlLikeScenario(0.05, kYear / 2), 11, options);
  std::ostringstream expected;
  engine::RenderReport(session, expected);

  // Line protocol, sharded through a (30-day x 2-system) grid.
  TestClient line_client(server.port(), /*recv_timeout_ms=*/20000);
  ASSERT_TRUE(line_client.Send(std::string("REPORT sharded=1 ") + kQuery +
                               " window_days=30 block_systems=2\n"));
  const std::string frame = line_client.ReadFrame();
  const std::string header =
      "OK " + std::to_string(expected.str().size()) + "\n";
  ASSERT_EQ(frame.substr(0, header.size()), header) << frame.substr(0, 120);
  EXPECT_EQ(frame.substr(header.size()), expected.str());

  // HTTP, same grid: byte-identical again.
  TestClient http_client(server.port(), /*recv_timeout_ms=*/20000);
  ASSERT_TRUE(http_client.Send(
      "GET /report?scale=0.05&years=0.5&seed=11&sharded=1&window_days=30"
      "&block_systems=2 HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(HttpBody(http_client.ReadAll()), expected.str());

  // One pooled SessionSet served both: a build, then a hit.
  const auto stats = server.pool().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);

  // A sharded TABLE section is byte-identical to the monolithic section.
  std::ostringstream overview;
  engine::RenderOverview(session, overview);
  TestClient table_client(server.port(), /*recv_timeout_ms=*/20000);
  ASSERT_TRUE(table_client.Send(std::string("TABLE overview sharded=1 ") +
                                kQuery +
                                " window_days=30 block_systems=2\n"));
  const std::string table_frame = table_client.ReadFrame();
  ASSERT_EQ(table_frame.rfind("OK ", 0), 0u) << table_frame.substr(0, 120);
  EXPECT_EQ(table_frame.substr(table_frame.find('\n') + 1), overview.str());
  server.Shutdown();
}

TEST(ServeServer, ShardsEndpointAndPerShardStats) {
  Server server(TestConfig());
  server.Start();

  // SHARDS returns the whole grid's stats JSON.
  TestClient client(server.port(), /*recv_timeout_ms=*/20000);
  ASSERT_TRUE(client.Send(std::string("SHARDS ") + kQuery +
                          " window_days=30 block_systems=2\n"));
  const std::string frame = client.ReadFrame();
  ASSERT_EQ(frame.rfind("OK ", 0), 0u) << frame.substr(0, 120);
  const std::string body = frame.substr(frame.find('\n') + 1);
  for (const char* key : {"\"num_shards\":", "\"shards\":", "\"builds\":"}) {
    EXPECT_NE(body.find(key), std::string::npos) << key << " missing";
  }

  // STATS shard=0:0 returns that shard's JSON (building it on demand).
  ASSERT_TRUE(client.Send(std::string("STATS shard=0:0 ") + kQuery +
                          " window_days=30 block_systems=2\n"));
  const std::string shard_frame = client.ReadFrame();
  ASSERT_EQ(shard_frame.rfind("OK ", 0), 0u) << shard_frame.substr(0, 120);
  EXPECT_NE(shard_frame.find("\"key\":\"0:0\""), std::string::npos);

  // Outside the grid -> 404; malformed key -> 400; shard= on REPORT -> 400.
  ASSERT_TRUE(client.Send(std::string("STATS shard=99:99 ") + kQuery +
                          " window_days=30 block_systems=2\n"));
  EXPECT_EQ(client.ReadFrame().rfind("ERR 404", 0), 0u);
  ASSERT_TRUE(client.Send(std::string("STATS shard=bogus ") + kQuery + "\n"));
  EXPECT_EQ(client.ReadFrame().rfind("ERR 400", 0), 0u);
  ASSERT_TRUE(client.Send(std::string("REPORT shard=0:0 ") + kQuery + "\n"));
  EXPECT_EQ(client.ReadFrame().rfind("ERR 400", 0), 0u);

  // window_days so small the grid would explode -> 400, not an OOM.
  ASSERT_TRUE(client.Send(std::string("SHARDS ") + kQuery +
                          " window_days=0.0001\n"));
  EXPECT_EQ(client.ReadFrame().rfind("ERR 400", 0), 0u);

  // HTTP /shards works too.
  TestClient http(server.port(), /*recv_timeout_ms=*/20000);
  ASSERT_TRUE(http.Send(
      "GET /shards?scale=0.05&years=0.5&seed=11&window_days=30"
      "&block_systems=2 HTTP/1.1\r\n\r\n"));
  const std::string response = http.ReadAll();
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(HttpBody(response).find("\"num_shards\":"), std::string::npos);
  server.Shutdown();
}

// Concurrent sharded requests against one server: the pool must coalesce
// them onto ONE SessionSet build, and concurrent merged-report renders and
// shard-stats queries over that shared set must be race-free (this test is
// in scripts/ci.sh's TSan set).
TEST(ServeServer, ConcurrentShardedRequestsShareOnePooledSet) {
  Server server(TestConfig());  // never started: pure dispatch, no sockets
  constexpr int kThreads = 6;
  std::vector<std::string> bodies(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      Request request;
      request.params["scale"] = "0.05";
      request.params["years"] = "0.5";
      request.params["seed"] = "11";
      request.params["window_days"] = "30";
      request.params["block_systems"] = "2";
      switch (i % 3) {
        case 0:
          request.verb = Verb::kReport;
          request.params["sharded"] = "1";
          break;
        case 1:
          request.verb = Verb::kShards;
          break;
        default:
          request.verb = Verb::kStats;
          request.params["shard"] = "0:0";
          break;
      }
      bodies[static_cast<std::size_t>(i)] = server.HandleRequest(request);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(bodies[static_cast<std::size_t>(i)].rfind("OK ", 0), 0u)
        << "request " << i << ": "
        << bodies[static_cast<std::size_t>(i)].substr(0, 120);
  }
  // All six requests shared one pooled SessionSet.
  const auto stats = server.pool().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.build_waits,
            static_cast<std::uint64_t>(kThreads - 1));

  // The sharded REPORT bodies are identical to each other.
  const std::string& first = bodies[0];
  EXPECT_EQ(bodies[3], first);
}

TEST(ServeServer, ErrorMapping) {
  Server server(TestConfig());
  server.Start();
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send("NOPE\n"));
  EXPECT_EQ(client.ReadFrame().rfind("ERR 400", 0), 0u);

  ASSERT_TRUE(client.Send("TABLE nosuch scale=0.05 years=0.5\n"));
  const std::string not_found = client.ReadFrame();
  EXPECT_EQ(not_found.rfind("ERR 404", 0), 0u);
  EXPECT_NE(not_found.find("overview"), std::string::npos)
      << "404 should list known tables: " << not_found;

  ASSERT_TRUE(client.Send("REPORT scale=-1\n"));
  EXPECT_EQ(client.ReadFrame().rfind("ERR 400", 0), 0u);

  ASSERT_TRUE(client.Send("REPORT scale=abc\n"));
  EXPECT_EQ(client.ReadFrame().rfind("ERR 400", 0), 0u);

  // Test endpoints default OFF.
  ASSERT_TRUE(client.Send("SLEEP ms=1\n"));
  EXPECT_EQ(client.ReadFrame().rfind("ERR 404", 0), 0u);

  TestClient http(server.port());
  ASSERT_TRUE(http.Send("GET /nosuch HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(http.ReadAll().rfind("HTTP/1.1 404", 0), 0u);
  server.Shutdown();
}

TEST(ServeServer, StalledHttpHeadersTimeOutAndFreeTheWorker) {
  ServerConfig config = TestConfig();
  config.workers = 1;
  config.idle_timeout_ms = 300;
  Server server(config);
  server.Start();

  // Request line but never the terminating blank line: the worker must
  // give up after the idle budget instead of spinning on it forever.
  TestClient stalled(server.port(), /*recv_timeout_ms=*/10000);
  ASSERT_TRUE(stalled.connected());
  ASSERT_TRUE(stalled.Send("GET /healthz HTTP/1.1\r\nHost: t\r\n"));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(stalled.ReadAll(), "") << "half-sent request must get no reply";
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(seconds, 5.0) << "close must come from the idle budget, not "
                             "the client's receive timeout";

  // The single worker is free again: a well-formed request is answered.
  TestClient ok(server.port(), /*recv_timeout_ms=*/10000);
  ASSERT_TRUE(ok.Send("GET /healthz HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(ok.ReadAll().rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  server.Shutdown();
}

TEST(ServeServer, IdleBudgetMeasuresIdlenessNotConnectionLifetime) {
  ServerConfig config = TestConfig();
  config.idle_timeout_ms = 800;
  Server server(config);
  server.Start();
  TestClient client(server.port(), /*recv_timeout_ms=*/10000);
  ASSERT_TRUE(client.connected());

  // Stay active well past the idle budget: every ping must be answered.
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::milliseconds(2000)) {
    ASSERT_TRUE(client.Send("PING\n"));
    ASSERT_EQ(client.ReadFrame(), "OK 5\npong\n");
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Now go silent: the idle budget closes the connection (EOF).
  EXPECT_EQ(client.ReadFrame(), "");
  server.Shutdown();
}

TEST(ServeServer, DeadlineExpiryAnswers504) {
  ServerConfig config = TestConfig();
  config.enable_test_endpoints = true;
  Server server(config);
  server.Start();
  TestClient client(server.port());
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(client.Send("SLEEP ms=5000 deadline_ms=50\n"));
  const std::string frame = client.ReadFrame();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(frame.rfind("ERR 504", 0), 0u) << frame;
  EXPECT_LT(seconds, 2.0) << "deadline must cut the request short";
  server.Shutdown();
}

TEST(ServeServer, OverloadShedsWith503AndDrainsCleanly) {
  ServerConfig config = TestConfig();
  config.workers = 1;
  config.queue_depth = 1;
  config.enable_test_endpoints = true;
  Server server(config);
  server.Start();

  // Occupy the single worker: a long sleep cut short by its own deadline,
  // so the busy window is wide enough to survive scheduler noise on a
  // loaded 1-core box yet the test still finishes promptly. The sleeper's
  // 504 answer is irrelevant here; QUIT releases the worker afterwards.
  TestClient busy(server.port(), /*recv_timeout_ms=*/10000);
  ASSERT_TRUE(busy.Send("SLEEP ms=60000 deadline_ms=5000\nQUIT\n"));
  // Deterministic settle: wait until the worker has provably picked the
  // sleeper up (inflight gauge reads 1), so the queue is empty again.
  // (With obs compiled out the gauge stays 0 and this degrades to a
  // bounded wait; the wide busy window still covers that case.)
  auto& inflight_gauge =
      obs::MetricsRegistry::Global().GetGauge("hpcfail_serve_inflight");
  const auto settle_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (inflight_gauge.Value() < 1.0 &&
         std::chrono::steady_clock::now() < settle_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // One connection fits the queue; everything beyond must be shed with an
  // explicit 503 — promptly, not after the sleeper finishes.
  std::vector<std::unique_ptr<TestClient>> extras;
  int queued = 0;
  int shed = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 6; ++i) {
    // Generous timeout: under TSan the queued client's answer can take
    // seconds to arrive. "Never a hang" is still proven — every read is
    // bounded and every connection must produce a frame.
    auto client = std::make_unique<TestClient>(server.port(),
                                               /*recv_timeout_ms=*/10000);
    ASSERT_TRUE(client->connected());
    // QUIT after the ping: a queued connection would otherwise hold the
    // single worker after being answered (line protocol persists until
    // EOF/idle), starving any later queued client.
    ASSERT_TRUE(client->Send("PING\nQUIT\n"));
    extras.push_back(std::move(client));
  }
  for (auto& client : extras) {
    const std::string frame = client->ReadFrame();
    if (frame.rfind("ERR 503", 0) == 0) {
      ++shed;
    } else if (frame == "OK 5\npong\n") {
      ++queued;
    } else {
      ADD_FAILURE() << "unexpected frame: '" << frame << "'";
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(shed, 4) << "queue_depth=1 must shed most of 6 connections";
  EXPECT_LE(queued, 2);
  EXPECT_EQ(shed + queued, 6) << "no connection may hang unanswered";
  EXPECT_LT(seconds, 30.0);

  // The sleeper got both answers (the sleep was cut by its deadline);
  // its QUIT freed the worker.
  EXPECT_EQ(busy.ReadFrame().rfind("ERR 504", 0), 0u);
  EXPECT_EQ(busy.ReadFrame(), "OK 4\nbye\n");
  // Closing the extra clients returns the worker to the pool (EOF).
  extras.clear();

  // Graceful drain: a request in flight when Shutdown starts still gets
  // its answer before the server finishes draining.
  TestClient inflight(server.port(), /*recv_timeout_ms=*/10000);
  ASSERT_TRUE(inflight.Send("SLEEP ms=400\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::atomic<bool> drained{false};
  std::thread drainer([&] {
    server.Shutdown();
    drained.store(true);
  });
  const std::string inflight_frame = inflight.ReadFrame();
  EXPECT_EQ(inflight_frame.rfind("OK ", 0), 0u)
      << "in-flight request must finish during drain: '" << inflight_frame
      << "'";
  drainer.join();
  EXPECT_TRUE(drained.load());
  EXPECT_FALSE(server.running());

  // Post-drain connections are refused (nothing listens anymore).
  TestClient late(server.port());
  if (late.connected()) {
    ASSERT_TRUE(late.Send("PING\n"));
    EXPECT_EQ(late.ReadFrame(), "");
  }
}

TEST(ServeServer, ShutdownIsIdempotentAndDestructorSafe) {
  auto server = std::make_unique<Server>(TestConfig());
  server->Start();
  server->Shutdown();
  server->Shutdown();  // no-op
  server.reset();      // destructor after explicit shutdown: fine

  Server abandoned(TestConfig());
  abandoned.Start();
  // Destructor alone must drain too.
}

TEST(ServeServer, HandleRequestDispatchWithoutSockets) {
  Server server(TestConfig());  // never started: pure dispatch
  Request ping;
  ping.verb = Verb::kPing;
  EXPECT_EQ(server.HandleRequest(ping), "OK 5\npong\n");

  Request metrics;
  metrics.verb = Verb::kMetrics;
  metrics.http = true;
  EXPECT_EQ(server.HandleRequest(metrics).rfind("HTTP/1.1 200", 0), 0u);

  Request bad_table;
  bad_table.verb = Verb::kTable;
  bad_table.target = "nosuch";
  bad_table.params["scale"] = "0.05";
  bad_table.params["years"] = "0.5";
  EXPECT_EQ(server.HandleRequest(bad_table).rfind("ERR 404", 0), 0u);
}

TEST(ServeServer, FormatsVerbAndLogQueries) {
  ServerConfig config = TestConfig();
  ServeLogSpec ras;
  ras.path = std::string(HPCFAIL_TEST_DATA_DIR) + "/bgq_ras_sample.csv";
  config.logs["ras"] = ras;  // format stays "auto": sniffed on first use
  ServeLogSpec messages;
  messages.path = std::string(HPCFAIL_TEST_DATA_DIR) + "/syslog_sample.log";
  messages.format = "syslog";
  config.logs["messages"] = messages;
  Server server(config);  // never started: pure dispatch

  // FORMATS lists the adapter registry and the configured logs.
  Request formats;
  formats.verb = Verb::kFormats;
  const std::string listing = server.HandleRequest(formats);
  ASSERT_EQ(listing.rfind("OK ", 0), 0u) << listing.substr(0, 120);
  for (const char* needle :
       {"\"hpcfail_csv\"", "\"lanl_csv\"", "\"bgq_ras\"", "\"syslog\"",
        "\"ras\"", "\"messages\""}) {
    EXPECT_NE(listing.find(needle), std::string::npos) << needle;
  }

  // STATS log=ras builds a session from the fixture (8 RAS records) and
  // surfaces the resolved format in the session label.
  Request stats;
  stats.verb = Verb::kStats;
  stats.params["log"] = "ras";
  const std::string stats_frame = server.HandleRequest(stats);
  ASSERT_EQ(stats_frame.rfind("OK ", 0), 0u) << stats_frame.substr(0, 120);
  EXPECT_NE(stats_frame.find("\"num_failures\":8"), std::string::npos)
      << stats_frame;
  EXPECT_NE(stats_frame.find("format=bgq_ras"), std::string::npos)
      << stats_frame;

  // REPORT log=messages is byte-identical to the CLI's --log rendering.
  engine::SessionOptions options;
  options.cache.enabled = false;
  const auto session = engine::AnalysisSession::FromLog(
      messages.path, "syslog", {}, 0, options);
  std::ostringstream expected;
  engine::RenderReport(session, expected);
  Request report;
  report.verb = Verb::kReport;
  report.params["log"] = "messages";
  const std::string frame = server.HandleRequest(report);
  const std::string header =
      "OK " + std::to_string(expected.str().size()) + "\n";
  ASSERT_EQ(frame.substr(0, header.size()), header) << frame.substr(0, 120);
  EXPECT_EQ(frame.substr(header.size()), expected.str());

  // format= must name the log's actual format: match passes, mismatch and
  // unknown formats answer 400 (listing what is known), format= without
  // log= is meaningless, unknown logs answer 404 naming the configured
  // ones, and log= queries cannot be sharded.
  Request match = report;
  match.params["format"] = "syslog";
  EXPECT_EQ(server.HandleRequest(match).substr(0, header.size()), header);
  Request mismatch = report;
  mismatch.params["format"] = "bgq_ras";
  const std::string mismatch_frame = server.HandleRequest(mismatch);
  EXPECT_EQ(mismatch_frame.rfind("ERR 400", 0), 0u) << mismatch_frame;
  EXPECT_NE(mismatch_frame.find("syslog"), std::string::npos)
      << mismatch_frame;
  Request unknown_format = report;
  unknown_format.params["format"] = "nope";
  const std::string uf = server.HandleRequest(unknown_format);
  EXPECT_EQ(uf.rfind("ERR 400", 0), 0u) << uf;
  EXPECT_NE(uf.find("lanl_csv"), std::string::npos)
      << "400 should list known formats: " << uf;
  Request format_only;
  format_only.verb = Verb::kStats;
  format_only.params["format"] = "syslog";
  EXPECT_EQ(server.HandleRequest(format_only).rfind("ERR 400", 0), 0u);
  Request unknown_log;
  unknown_log.verb = Verb::kStats;
  unknown_log.params["log"] = "nope";
  const std::string ul = server.HandleRequest(unknown_log);
  EXPECT_EQ(ul.rfind("ERR 404", 0), 0u) << ul;
  EXPECT_NE(ul.find("messages"), std::string::npos)
      << "404 should list configured logs: " << ul;
  Request sharded_log = report;
  sharded_log.params["sharded"] = "1";
  EXPECT_EQ(server.HandleRequest(sharded_log).rfind("ERR 400", 0), 0u);
}

TEST(ServeServer, HttpFormatsRouteServesJson) {
  ServerConfig config = TestConfig();
  ServeLogSpec messages;
  messages.path = std::string(HPCFAIL_TEST_DATA_DIR) + "/syslog_sample.log";
  messages.format = "syslog";
  config.logs["messages"] = messages;
  Server server(config);
  server.Start();

  TestClient client(server.port());
  ASSERT_TRUE(client.Send("GET /formats HTTP/1.1\r\n\r\n"));
  const std::string response = client.ReadAll();
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const std::string body = HttpBody(response);
  EXPECT_NE(body.find("\"formats\":"), std::string::npos);
  EXPECT_NE(body.find("\"logs\":"), std::string::npos);
  EXPECT_NE(body.find("\"messages\""), std::string::npos);

  // And a format=-qualified HTTP log query end-to-end.
  TestClient query(server.port(), /*recv_timeout_ms=*/20000);
  ASSERT_TRUE(query.Send(
      "GET /stats?log=messages&format=syslog HTTP/1.1\r\n\r\n"));
  const std::string stats_response = query.ReadAll();
  EXPECT_EQ(stats_response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(HttpBody(stats_response).find("\"num_failures\":7"),
            std::string::npos);
  server.Shutdown();
}

}  // namespace
}  // namespace hpcfail::serve
