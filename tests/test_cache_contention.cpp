// Cache write-path hardening under real contention: multiple processes and
// threads hammering one artifact key must never expose a torn entry to a
// reader. The unique-temp-name + flush-check + atomic-rename store means a
// reader sees either no entry or one complete, checksum-valid entry; the
// corrupt-entry diagnostic appearing here at all is a regression.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/trace_cache.h"

namespace hpcfail::engine {
namespace {

class CacheContentionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/hpcfail_contend_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  CacheConfig Config() const {
    CacheConfig c;
    c.dir = dir_;
    return c;
  }

  std::string dir_;
};

constexpr std::uint64_t kKey = 0xc0ffee0123456789ULL;

std::string WriterPayload(char fill) { return std::string(32 * 1024, fill); }

// Counts leftover temp files in the cache directory.
int CountTmpFiles(const std::string& dir) {
  int n = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->path().filename().string().find(".tmp.") != std::string::npos) {
      ++n;
    }
  }
  return n;
}

TEST_F(CacheContentionTest, TwoProcessesStormOneKeyWithoutTornReads) {
  constexpr int kStoresPerChild = 60;
  const std::string payloads[2] = {WriterPayload('A'), WriterPayload('B')};

  // Two child processes repeatedly store the same key with different (but
  // individually valid) bodies. Without per-process temp names both would
  // write `<entry>.tmp` and the parent could observe an interleaved file
  // promoted by a torn rename.
  pid_t children[2] = {0, 0};
  for (int c = 0; c < 2; ++c) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: plain exits only — no gtest assertions in the forked copy.
      ArtifactCache cache(Config());
      for (int i = 0; i < kStoresPerChild; ++i) {
        std::string diag;
        if (!cache.StoreBody(ArtifactKind::kIndex, kKey,
                             payloads[static_cast<std::size_t>(c)], &diag)) {
          _exit(2);
        }
      }
      _exit(0);
    }
    children[c] = pid;
  }

  // Parent: read the key continuously while the writers race. Every load
  // must be a clean miss ("no cache entry", before the first store lands)
  // or a complete payload from exactly one writer.
  ArtifactCache cache(Config());
  int hits = 0;
  bool done[2] = {false, false};
  int status[2] = {0, 0};
  while (!done[0] || !done[1]) {
    for (int c = 0; c < 2; ++c) {
      if (!done[c] &&
          waitpid(children[c], &status[c], WNOHANG) == children[c]) {
        done[c] = true;
      }
    }
    std::string diag;
    const std::optional<std::string> body =
        cache.TryLoadBody(ArtifactKind::kIndex, kKey, &diag);
    if (body.has_value()) {
      ++hits;
      EXPECT_TRUE(*body == payloads[0] || *body == payloads[1])
          << "reader observed a torn entry (" << body->size() << " bytes)";
    } else {
      EXPECT_EQ(diag, "no cache entry")
          << "reader observed an unusable entry mid-race: " << diag;
    }
  }
  for (int c = 0; c < 2; ++c) {
    ASSERT_TRUE(WIFEXITED(status[c]));
    EXPECT_EQ(WEXITSTATUS(status[c]), 0) << "writer " << c << " failed";
  }

  // After the dust settles: one valid entry, no temp residue.
  std::string diag;
  const std::optional<std::string> final_body =
      cache.TryLoadBody(ArtifactKind::kIndex, kKey, &diag);
  ASSERT_TRUE(final_body.has_value()) << diag;
  EXPECT_TRUE(*final_body == payloads[0] || *final_body == payloads[1]);
  EXPECT_GT(hits, 0) << "race window never exercised a hit";
  EXPECT_EQ(CountTmpFiles(dir_), 0);
}

TEST_F(CacheContentionTest, ThreadedWritersAndReadersStayConsistent) {
  constexpr int kWriters = 4;
  constexpr int kStoresPerWriter = 40;
  std::vector<std::string> payloads;
  for (int w = 0; w < kWriters; ++w) {
    payloads.push_back(WriterPayload(static_cast<char>('a' + w)));
  }

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      ArtifactCache cache(Config());
      for (int i = 0; i < kStoresPerWriter; ++i) {
        std::string diag;
        if (!cache.StoreBody(ArtifactKind::kBootstrap, kKey,
                             payloads[static_cast<std::size_t>(w)], &diag)) {
          ++failures;
        }
      }
    });
  }
  std::thread reader([&] {
    ArtifactCache cache(Config());
    while (!stop.load()) {
      std::string diag;
      const std::optional<std::string> body =
          cache.TryLoadBody(ArtifactKind::kBootstrap, kKey, &diag);
      if (body.has_value()) {
        bool known = false;
        for (const std::string& p : payloads) known = known || *body == p;
        if (!known) ++failures;
      } else if (diag != "no cache entry") {
        ++failures;
      }
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(CountTmpFiles(dir_), 0);
  ArtifactCache cache(Config());
  std::string diag;
  const std::optional<std::string> final_body =
      cache.TryLoadBody(ArtifactKind::kBootstrap, kKey, &diag);
  ASSERT_TRUE(final_body.has_value()) << diag;
  bool known = false;
  for (const std::string& p : payloads) known = known || *final_body == p;
  EXPECT_TRUE(known) << "final entry matches no writer's payload";
}

}  // namespace
}  // namespace hpcfail::engine
