#include "stats/anova.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace hpcfail::stats {
namespace {

TEST(SaturatedVsCommonRate, EqualRatesNotSignificant) {
  Rng rng(11);
  std::vector<double> counts, exposures;
  for (int i = 0; i < 30; ++i) {
    const double e = rng.Uniform(10.0, 100.0);
    exposures.push_back(e);
    counts.push_back(rng.Poisson(0.2 * e));
  }
  const LikelihoodRatioResult r =
      PoissonSaturatedVsCommonRate(counts, exposures);
  EXPECT_DOUBLE_EQ(r.df, 29.0);
  EXPECT_FALSE(r.significant_99);
}

TEST(SaturatedVsCommonRate, HeterogeneousRatesDetected) {
  // The Section-VI situation: users with genuinely different failure rates.
  Rng rng(12);
  std::vector<double> counts, exposures;
  for (int i = 0; i < 30; ++i) {
    const double e = rng.Uniform(10.0, 100.0);
    const double rate = i % 2 == 0 ? 0.05 : 0.5;
    exposures.push_back(e);
    counts.push_back(rng.Poisson(rate * e));
  }
  const LikelihoodRatioResult r =
      PoissonSaturatedVsCommonRate(counts, exposures);
  EXPECT_TRUE(r.significant_99);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(SaturatedVsCommonRate, PerfectlyCommonDataGivesZeroStatistic) {
  const std::vector<double> counts = {10, 20, 40};
  const std::vector<double> exposures = {1, 2, 4};
  const LikelihoodRatioResult r =
      PoissonSaturatedVsCommonRate(counts, exposures);
  EXPECT_NEAR(r.statistic, 0.0, 1e-9);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(SaturatedVsCommonRate, SkipsZeroExposureGroups) {
  const std::vector<double> counts = {10, 0, 20};
  const std::vector<double> exposures = {1, 0, 2};
  const LikelihoodRatioResult r =
      PoissonSaturatedVsCommonRate(counts, exposures);
  EXPECT_DOUBLE_EQ(r.df, 1.0);
}

TEST(SaturatedVsCommonRate, RejectsBadInput) {
  EXPECT_THROW(
      PoissonSaturatedVsCommonRate(std::vector<double>{1},
                                   std::vector<double>{1, 2}),
      std::invalid_argument);
  EXPECT_THROW(PoissonSaturatedVsCommonRate(std::vector<double>{1, -2},
                                            std::vector<double>{1, 2}),
               std::invalid_argument);
  // Events with zero exposure are contradictory.
  EXPECT_THROW(PoissonSaturatedVsCommonRate(std::vector<double>{1, 2},
                                            std::vector<double>{0, 2}),
               std::invalid_argument);
}

TEST(LikelihoodRatioTest, NestedModelComparison) {
  Rng rng(13);
  const int n = 1000;
  Matrix x2(n, 2);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    const double a = rng.Uniform(-1, 1);
    const double b = rng.Uniform(-1, 1);
    x2(static_cast<std::size_t>(i), 0) = a;
    x2(static_cast<std::size_t>(i), 1) = b;
    y[static_cast<std::size_t>(i)] = rng.Poisson(std::exp(0.5 + 0.8 * a));
  }
  Matrix x1(n, 1);
  for (int i = 0; i < n; ++i) {
    x1(static_cast<std::size_t>(i), 0) = x2(static_cast<std::size_t>(i), 0);
  }
  const GlmFit full = FitPoisson(x2, y);
  const GlmFit reduced = FitPoisson(x1, y);
  const LikelihoodRatioResult r = LikelihoodRatioTest(full, reduced);
  EXPECT_DOUBLE_EQ(r.df, 1.0);
  // The dropped covariate is pure noise: not significant.
  EXPECT_FALSE(r.significant_99);

  // Dropping the real covariate is significant.
  Matrix xb(n, 1);
  for (int i = 0; i < n; ++i) {
    xb(static_cast<std::size_t>(i), 0) = x2(static_cast<std::size_t>(i), 1);
  }
  const GlmFit reduced_wrong = FitPoisson(xb, y);
  const LikelihoodRatioResult r2 = LikelihoodRatioTest(full, reduced_wrong);
  EXPECT_TRUE(r2.significant_99);
}

TEST(LikelihoodRatioTest, RejectsMismatchedModels) {
  Rng rng(14);
  Matrix x(10, 1);
  std::vector<double> y(10, 1.0);
  for (int i = 0; i < 10; ++i) {
    x(static_cast<std::size_t>(i), 0) = rng.Normal();
  }
  const GlmFit pois = FitPoisson(x, y);
  const GlmFit nb = FitNegativeBinomial(x, y);
  EXPECT_THROW(LikelihoodRatioTest(pois, nb), std::invalid_argument);
}

}  // namespace
}  // namespace hpcfail::stats
