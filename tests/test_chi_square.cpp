#include "stats/chi_square.h"

#include <gtest/gtest.h>

#include <vector>

namespace hpcfail::stats {
namespace {

TEST(GoodnessOfFit, KnownStatistic) {
  // Observed {10, 20, 30}, expected {20, 20, 20}:
  // chi2 = 100/20 + 0 + 100/20 = 10, df = 2, p ~ 0.0067.
  const std::vector<double> obs = {10, 20, 30};
  const std::vector<double> exp = {20, 20, 20};
  const ChiSquareResult r = ChiSquareGoodnessOfFit(obs, exp);
  EXPECT_NEAR(r.statistic, 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.df, 2.0);
  EXPECT_NEAR(r.p_value, 0.006738, 1e-5);
  EXPECT_TRUE(r.significant_99);
}

TEST(GoodnessOfFit, PerfectFit) {
  const std::vector<double> obs = {5, 5, 5};
  const ChiSquareResult r = ChiSquareGoodnessOfFit(obs, obs);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
  EXPECT_FALSE(r.significant_99);
}

TEST(GoodnessOfFit, SkipsZeroExpectationCells) {
  const std::vector<double> obs = {10, 0, 10};
  const std::vector<double> exp = {10, 0, 10};
  const ChiSquareResult r = ChiSquareGoodnessOfFit(obs, exp);
  EXPECT_DOUBLE_EQ(r.df, 1.0);  // only 2 usable cells
}

TEST(GoodnessOfFit, RejectsEventsInImpossibleCell) {
  const std::vector<double> obs = {10, 5};
  const std::vector<double> exp = {10, 0};
  EXPECT_THROW(ChiSquareGoodnessOfFit(obs, exp), std::invalid_argument);
}

TEST(GoodnessOfFit, RejectsSizeMismatch) {
  const std::vector<double> obs = {1, 2};
  const std::vector<double> exp = {1, 2, 3};
  EXPECT_THROW(ChiSquareGoodnessOfFit(obs, exp), std::invalid_argument);
}

TEST(EqualRates, UniformCountsNotSignificant) {
  const std::vector<double> counts = {48, 52, 50, 49, 51};
  const ChiSquareResult r = ChiSquareEqualRates(counts);
  EXPECT_FALSE(r.significant_99);
  EXPECT_GT(r.p_value, 0.5);
}

TEST(EqualRates, OneHotNodeIsDetected) {
  // The Fig. 4 situation: one node with 30x the failures of the rest.
  std::vector<double> counts(100, 3.0);
  counts[0] = 90.0;
  const ChiSquareResult r = ChiSquareEqualRates(counts);
  EXPECT_TRUE(r.significant_99);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(EqualRates, ExposureWeighting) {
  // Rates equal once exposure is accounted for: not significant.
  const std::vector<double> counts = {10, 20, 40};
  const std::vector<double> exposures = {1.0, 2.0, 4.0};
  const ChiSquareResult r = ChiSquareEqualRates(counts, exposures);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_FALSE(r.significant_99);
}

TEST(EqualRates, ZeroExposureGroupsSkipped) {
  const std::vector<double> counts = {10, 0, 12};
  const std::vector<double> exposures = {1.0, 0.0, 1.0};
  const ChiSquareResult r = ChiSquareEqualRates(counts, exposures);
  EXPECT_DOUBLE_EQ(r.df, 1.0);
}

TEST(EqualRates, RejectsAllZeroExposure) {
  const std::vector<double> counts = {0, 0};
  const std::vector<double> exposures = {0.0, 0.0};
  EXPECT_THROW(ChiSquareEqualRates(counts, exposures), std::invalid_argument);
}

TEST(EqualRates, RejectsNegativeInput) {
  const std::vector<double> counts = {-1, 5};
  EXPECT_THROW(ChiSquareEqualRates(counts), std::invalid_argument);
}

}  // namespace
}  // namespace hpcfail::stats
