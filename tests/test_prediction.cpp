#include "core/prediction.h"

#include <gtest/gtest.h>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

// Train and evaluate on independently seeded traces of the same scenario.
struct Split {
  Trace train_trace;
  Trace eval_trace;
};

Split MakeSplit() {
  synth::Scenario sc;
  sc.duration = 2 * kYear;
  auto sys = synth::Group1System("g", 96, 2 * kYear);
  for (double& r : sys.base_rate_per_hour) r *= 4.0;
  sc.systems.push_back(sys);
  return {synth::GenerateTrace(sc, 100), synth::GenerateTrace(sc, 200)};
}

TEST(Predictor, LearnsElevatedConditionals) {
  const Split s = MakeSplit();
  const EventIndex train(s.train_trace);
  const FailurePredictor p(train, {});
  EXPECT_GT(p.baseline(), 0.0);
  for (FailureCategory c : AllFailureCategories()) {
    EXPECT_GE(p.conditional(c), p.baseline()) << ToString(c);
  }
  // The paper's ordering: env/net conditionals above hardware's.
  EXPECT_GT(p.conditional(FailureCategory::kEnvironment),
            p.conditional(FailureCategory::kHardware));
}

TEST(Predictor, ScoreUsesMemoryWindow) {
  const Split s = MakeSplit();
  const EventIndex train(s.train_trace);
  PredictorConfig cfg;
  cfg.memory = kWeek;
  const FailurePredictor p(train, cfg);
  const double recent = p.Score(FailureCategory::kNetwork, 10 * kDay,
                                11 * kDay);
  const double stale = p.Score(FailureCategory::kNetwork, 10 * kDay,
                               30 * kDay);
  const double never = p.Score(std::nullopt, std::nullopt, 30 * kDay);
  EXPECT_GT(recent, stale);
  EXPECT_DOUBLE_EQ(stale, p.baseline());
  EXPECT_DOUBLE_EQ(never, p.baseline());
}

TEST(Predictor, EvaluationCountsAreConsistent) {
  const Split s = MakeSplit();
  const EventIndex train(s.train_trace);
  const EventIndex eval(s.eval_trace);
  const FailurePredictor p(train, {});
  const PredictionEvaluation e =
      EvaluatePredictor(p, eval, p.baseline() * 2.0);
  const long long slots = e.true_positives + e.false_positives +
                          e.false_negatives + e.true_negatives;
  EXPECT_GT(slots, 0);
  EXPECT_GE(e.precision, 0.0);
  EXPECT_LE(e.precision, 1.0);
  EXPECT_GE(e.recall, 0.0);
  EXPECT_LE(e.recall, 1.0);
}

TEST(Predictor, AlarmsBeatRandomGuessing) {
  // Precision of alarms must exceed the base failure rate: the whole point
  // of Section III is that recent failures predict imminent ones.
  const Split s = MakeSplit();
  const EventIndex train(s.train_trace);
  const EventIndex eval(s.eval_trace);
  const FailurePredictor p(train, {});
  const PredictionEvaluation e =
      EvaluatePredictor(p, eval, p.baseline() * 2.0);
  const double base_rate =
      static_cast<double>(e.true_positives + e.false_negatives) /
      static_cast<double>(e.true_positives + e.false_positives +
                          e.false_negatives + e.true_negatives);
  EXPECT_GT(e.precision, 2.0 * base_rate);
  EXPECT_GT(e.recall, 0.05);
}

TEST(Predictor, TypeAwareBeatsTypeBlindAtSameAlarmBudget) {
  // The Section-XI ablation: consider root causes and precision improves.
  // At thresholds that alarm only on the strongest triggers, the type-aware
  // predictor concentrates its alarms on env/net histories.
  const Split s = MakeSplit();
  const EventIndex train(s.train_trace);
  const EventIndex eval(s.eval_trace);
  PredictorConfig aware_cfg;
  aware_cfg.type_aware = true;
  PredictorConfig blind_cfg;
  blind_cfg.type_aware = false;
  const FailurePredictor aware(train, aware_cfg);
  const FailurePredictor blind(train, blind_cfg);
  // Alarm only above the network conditional: type-aware fires on env/net
  // histories only; type-blind cannot express this operating point at all
  // (its single conditional sits below the env/net ones).
  const double threshold =
      0.9 * std::min(aware.conditional(FailureCategory::kNetwork),
                     aware.conditional(FailureCategory::kEnvironment));
  const PredictionEvaluation ea = EvaluatePredictor(aware, eval, threshold);
  const PredictionEvaluation eb = EvaluatePredictor(blind, eval, threshold);
  EXPECT_GT(ea.true_positives, 0);
  EXPECT_GT(ea.precision, eb.precision);
}

TEST(Predictor, SweepProducesMonotoneAlarmRates) {
  const Split s = MakeSplit();
  const EventIndex train(s.train_trace);
  const EventIndex eval(s.eval_trace);
  const FailurePredictor p(train, {});
  const auto sweep = SweepPredictor(p, eval);
  ASSERT_GE(sweep.size(), 2u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].threshold, sweep[i - 1].threshold);
    // Higher threshold -> fewer (or equal) alarms.
    EXPECT_LE(sweep[i].alarm_rate, sweep[i - 1].alarm_rate + 1e-12);
  }
}

TEST(Predictor, EmptyEvaluationIndexYieldsZeroedEvaluation) {
  const Split s = MakeSplit();
  const EventIndex train(s.train_trace);
  const FailurePredictor p(train, {});
  // An observed system that logged zero failures: the ratios would be 0/0.
  Trace empty;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "quiet";
  c.num_nodes = 16;
  c.procs_per_node = 2;
  c.observed = {0, 90 * kDay};
  empty.AddSystem(c);
  empty.Finalize();
  const EventIndex eval(empty);

  const PredictionEvaluation e = EvaluatePredictor(p, eval, p.baseline());
  EXPECT_DOUBLE_EQ(e.threshold, p.baseline());
  EXPECT_EQ(e.true_positives, 0);
  EXPECT_EQ(e.false_positives, 0);
  EXPECT_EQ(e.false_negatives, 0);
  EXPECT_EQ(e.true_negatives, 0);
  EXPECT_EQ(e.precision, 0.0);
  EXPECT_EQ(e.recall, 0.0);
  EXPECT_EQ(e.f1, 0.0);
  EXPECT_EQ(e.alarm_rate, 0.0);

  const auto sweep = SweepPredictor(p, eval);
  for (const PredictionEvaluation& step : sweep) {
    EXPECT_EQ(step.true_positives + step.false_positives +
                  step.false_negatives + step.true_negatives,
              0);
    EXPECT_EQ(step.alarm_rate, 0.0);
  }
}

TEST(Predictor, FromTableReproducesLearnedScores) {
  const Split s = MakeSplit();
  const EventIndex train(s.train_trace);
  const FailurePredictor learned(train, {});
  std::array<double, kNumFailureCategories> table{};
  for (FailureCategory c : AllFailureCategories()) {
    table[static_cast<std::size_t>(c)] = learned.conditional(c);
  }
  const FailurePredictor rebuilt = FailurePredictor::FromTable(
      learned.config(), learned.baseline(), table);
  EXPECT_EQ(rebuilt.baseline(), learned.baseline());
  for (FailureCategory c : AllFailureCategories()) {
    EXPECT_EQ(rebuilt.conditional(c), learned.conditional(c));
    EXPECT_EQ(rebuilt.Score(c, 10 * kDay, 11 * kDay),
              learned.Score(c, 10 * kDay, 11 * kDay));
  }
  EXPECT_EQ(rebuilt.Score(std::nullopt, std::nullopt, kDay),
            learned.Score(std::nullopt, std::nullopt, kDay));
}

TEST(Predictor, TypeBlindHasUniformConditionals) {
  const Split s = MakeSplit();
  const EventIndex train(s.train_trace);
  PredictorConfig cfg;
  cfg.type_aware = false;
  const FailurePredictor p(train, cfg);
  const double first = p.conditional(FailureCategory::kEnvironment);
  for (FailureCategory c : AllFailureCategories()) {
    EXPECT_DOUBLE_EQ(p.conditional(c), first);
  }
}

}  // namespace
}  // namespace hpcfail::core
