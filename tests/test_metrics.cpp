// Unit tests for the observability layer (src/obs): counter / gauge /
// histogram semantics, registry behaviour, exact totals under a
// multi-threaded hammer, and golden outputs for the Prometheus and JSON
// exporters. Value assertions are skipped in a -DHPCFAIL_OBS=OFF build,
// where every mutator is compiled to a no-op by design.
#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"

namespace {

using hpcfail::obs::Histogram;
using hpcfail::obs::JsonLine;
using hpcfail::obs::MetricsRegistry;
using hpcfail::obs::MetricsSnapshot;
using hpcfail::obs::PrometheusText;

TEST(Counter, AddIncrementValue) {
  if (!hpcfail::obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  MetricsRegistry reg;
  hpcfail::obs::Counter& c = reg.GetCounter("c_total");
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
}

TEST(Counter, RegistryReturnsStableReference) {
  MetricsRegistry reg;
  hpcfail::obs::Counter& a = reg.GetCounter("same_total", "first help wins");
  hpcfail::obs::Counter& b = reg.GetCounter("same_total", "ignored");
  EXPECT_EQ(&a, &b);
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_NE(snap.FindCounter("same_total"), nullptr);
  EXPECT_EQ(snap.FindCounter("same_total")->help, "first help wins");
}

TEST(Registry, TypeConflictThrows) {
  MetricsRegistry reg;
  reg.GetCounter("x");
  EXPECT_THROW(reg.GetGauge("x"), std::logic_error);
  EXPECT_THROW(reg.GetHistogram("x"), std::logic_error);
  reg.GetGauge("y");
  EXPECT_THROW(reg.GetCounter("y"), std::logic_error);
}

TEST(Gauge, SetAndAdd) {
  if (!hpcfail::obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  MetricsRegistry reg;
  hpcfail::obs::Gauge& g = reg.GetGauge("g");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-0.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.0);
  g.Set(-7.0);
  EXPECT_DOUBLE_EQ(g.Value(), -7.0);
}

TEST(Histogram, BucketMapping) {
  // Bucket i covers (2^(i-kBias-1), 2^(i-kBias)]; exact powers of two stay
  // in their own bucket.
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(Histogram::kBias), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(Histogram::kBias + 1), 2.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(Histogram::kBias - 1), 0.5);
  EXPECT_EQ(Histogram::BucketFor(1.0), Histogram::kBias);
  EXPECT_EQ(Histogram::BucketFor(0.5), Histogram::kBias - 1);
  EXPECT_EQ(Histogram::BucketFor(0.6), Histogram::kBias);
  EXPECT_EQ(Histogram::BucketFor(1.5), Histogram::kBias + 1);
  // Degenerate and extreme values clamp instead of indexing out of range.
  EXPECT_EQ(Histogram::BucketFor(0.0), 0);
  EXPECT_EQ(Histogram::BucketFor(-3.0), 0);
  EXPECT_EQ(Histogram::BucketFor(1e300), Histogram::kNumBuckets - 1);
  // Every bucket's upper bound lands in its own bucket.
  for (int i = 1; i < Histogram::kNumBuckets - 1; ++i) {
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketUpperBound(i)), i) << i;
  }
}

TEST(Histogram, ObserveCountsAndSums) {
  if (!hpcfail::obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram("h_seconds");
  h.Observe(0.75);
  h.Observe(0.75);
  h.Observe(3.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 4.5);
  EXPECT_EQ(h.BucketCount(Histogram::kBias), 2);      // (0.5, 1]
  EXPECT_EQ(h.BucketCount(Histogram::kBias + 2), 1);  // (2, 4]
}

TEST(Metrics, MultiThreadedHammerIsExact) {
  if (!hpcfail::obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  MetricsRegistry reg;
  hpcfail::obs::Counter& c = reg.GetCounter("hammer_total");
  hpcfail::obs::Gauge& g = reg.GetGauge("hammer_gauge");
  Histogram& h = reg.GetHistogram("hammer_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        g.Add(1.0);
        h.Observe(0.5);  // exactly representable: the sum has no rounding
      }
    });
  }
  for (std::thread& w : workers) w.join();
  constexpr long long kTotal = 1LL * kThreads * kPerThread;
  EXPECT_EQ(c.Value(), kTotal);
  EXPECT_DOUBLE_EQ(g.Value(), static_cast<double>(kTotal));
  EXPECT_EQ(h.count(), kTotal);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 * static_cast<double>(kTotal));
  EXPECT_EQ(h.BucketCount(Histogram::kBias - 1), kTotal);
}

TEST(Registry, SnapshotSortsByName) {
  MetricsRegistry reg;
  reg.GetCounter("zebra_total");
  reg.GetCounter("alpha_total");
  reg.GetGauge("mid_gauge");
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha_total");
  EXPECT_EQ(snap.counters[1].name, "zebra_total");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.FindGauge("mid_gauge"), &snap.gauges[0]);
  EXPECT_EQ(snap.FindCounter("missing"), nullptr);
  EXPECT_EQ(snap.FindHistogram("alpha_total"), nullptr);
}

TEST(Registry, ResetForTestZeroesButKeepsRegistration) {
  if (!hpcfail::obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  MetricsRegistry reg;
  hpcfail::obs::Counter& c = reg.GetCounter("r_total");
  hpcfail::obs::Gauge& g = reg.GetGauge("r_gauge");
  Histogram& h = reg.GetHistogram("r_seconds");
  c.Add(5);
  g.Set(1.5);
  h.Observe(2.0);
  reg.ResetForTest();
  EXPECT_EQ(c.Value(), 0);
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  // Same references are still registered under the same names.
  EXPECT_EQ(&reg.GetCounter("r_total"), &c);
  EXPECT_EQ(reg.Snapshot().counters.size(), 1u);
}

TEST(Export, PrometheusGolden) {
  if (!hpcfail::obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  MetricsRegistry reg;
  reg.GetCounter("demo_total", "Demo events").Add(3);
  reg.GetGauge("demo_depth", "Depth").Set(2.5);
  Histogram& h = reg.GetHistogram("demo_seconds", "Latency");
  h.Observe(0.75);
  h.Observe(0.75);
  h.Observe(3.0);
  EXPECT_EQ(PrometheusText(reg.Snapshot()),
            "# HELP demo_total Demo events\n"
            "# TYPE demo_total counter\n"
            "demo_total 3\n"
            "# HELP demo_depth Depth\n"
            "# TYPE demo_depth gauge\n"
            "demo_depth 2.5\n"
            "# HELP demo_seconds Latency\n"
            "# TYPE demo_seconds histogram\n"
            "demo_seconds_bucket{le=\"1\"} 2\n"
            "demo_seconds_bucket{le=\"4\"} 3\n"
            "demo_seconds_bucket{le=\"+Inf\"} 3\n"
            "demo_seconds_sum 4.5\n"
            "demo_seconds_count 3\n");
}

TEST(Export, JsonGolden) {
  if (!hpcfail::obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  MetricsRegistry reg;
  reg.GetCounter("demo_total", "Demo events").Add(3);
  reg.GetGauge("demo_depth", "Depth").Set(2.5);
  Histogram& h = reg.GetHistogram("demo_seconds", "Latency");
  h.Observe(0.75);
  h.Observe(0.75);
  h.Observe(3.0);
  EXPECT_EQ(JsonLine(reg.Snapshot()),
            "{\"counters\":{\"demo_total\":3},"
            "\"gauges\":{\"demo_depth\":2.5},"
            "\"histograms\":{\"demo_seconds\":{\"count\":3,\"sum\":4.5,"
            "\"buckets\":[[1,2],[4,1]]}}}");
}

TEST(Export, NonFiniteGaugeValues) {
  if (!hpcfail::obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  MetricsRegistry reg;
  reg.GetGauge("g_nan").Set(std::numeric_limits<double>::quiet_NaN());
  reg.GetGauge("g_inf").Set(std::numeric_limits<double>::infinity());
  const MetricsSnapshot snap = reg.Snapshot();
  const std::string prom = PrometheusText(snap);
  EXPECT_NE(prom.find("g_nan NaN\n"), std::string::npos);
  EXPECT_NE(prom.find("g_inf +Inf\n"), std::string::npos);
  EXPECT_EQ(JsonLine(snap),
            "{\"counters\":{},"
            "\"gauges\":{\"g_inf\":null,\"g_nan\":null},"
            "\"histograms\":{}}");
}

TEST(Export, RoundTripDoubleFormatting) {
  if (!hpcfail::obs::kEnabled) GTEST_SKIP() << "built with HPCFAIL_OBS=OFF";
  // 0.1 has no short exact form: the exporter must emit enough digits to
  // round-trip but no more than 17 significant digits.
  MetricsRegistry reg;
  reg.GetGauge("g").Set(0.1);
  const std::string prom = PrometheusText(reg.Snapshot());
  const std::size_t pos = prom.find("\ng ");
  ASSERT_NE(pos, std::string::npos);
  const std::string text = prom.substr(pos + 3, prom.find('\n', pos + 1) -
                                                    (pos + 3));
  EXPECT_DOUBLE_EQ(std::stod(text), 0.1);
}

TEST(Registry, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
