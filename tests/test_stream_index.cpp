#include "stream/incremental_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/event_index.h"
#include "synth/generate.h"
#include "synth/scenario.h"

namespace hpcfail::stream {
namespace {

Trace HandTrace() {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sys0";
  c.num_nodes = 8;
  c.procs_per_node = 4;
  c.observed = {0, 100 * kDay};
  c.layout = MachineLayout::Grid(8, 4, 2);
  t.AddSystem(c);
  SystemConfig d = c;
  d.id = SystemId{1};
  d.name = "sys1";
  t.AddSystem(d);
  t.AddFailure(MakeHardwareFailure(SystemId{0}, NodeId{1}, 10 * kDay,
                                   10 * kDay + kHour, HardwareComponent::kCpu));
  t.AddFailure(MakeSoftwareFailure(SystemId{0}, NodeId{2}, 11 * kDay,
                                   11 * kDay + kHour, SoftwareComponent::kDst));
  t.AddFailure(MakeHardwareFailure(SystemId{0}, NodeId{1}, 12 * kDay,
                                   12 * kDay + kHour,
                                   HardwareComponent::kMemory));
  t.AddFailure(MakeFailure(SystemId{1}, NodeId{0}, 10 * kDay,
                           10 * kDay + kHour, FailureCategory::kHuman));
  t.Finalize();
  return t;
}

TEST(IncrementalIndex, RequiresSystemsAndNonNegativeTolerance) {
  EXPECT_THROW(IncrementalEventIndex({}, {}), std::invalid_argument);
  const Trace t = HandTrace();
  EXPECT_THROW(IncrementalEventIndex(t.systems(), {.reorder_tolerance = -1}),
               std::invalid_argument);
  std::vector<SystemConfig> dup = {t.systems()[0], t.systems()[0]};
  EXPECT_THROW(IncrementalEventIndex(dup, {}), std::invalid_argument);
}

TEST(IncrementalIndex, SortedIngestReleasesUpToWatermark) {
  const Trace t = HandTrace();
  IncrementalEventIndex idx(t.systems(), {.reorder_tolerance = 0});
  EXPECT_EQ(idx.watermark(), IncrementalEventIndex::kNoWatermark);
  for (const FailureRecord& r : t.failures()) {
    EXPECT_EQ(idx.Ingest(r), IngestStatus::kAccepted);
  }
  // Tolerance 0: everything before the newest start is released; events AT
  // the watermark stay buffered until something newer arrives.
  EXPECT_EQ(idx.watermark(), 12 * kDay);
  EXPECT_EQ(idx.counters().accepted, 4);
  EXPECT_EQ(idx.counters().released, 3);
  EXPECT_EQ(idx.num_buffered(), 1u);
  idx.Finish();
  EXPECT_EQ(idx.counters().released, 4);
  EXPECT_EQ(idx.num_buffered(), 0u);
  EXPECT_THROW(idx.Ingest(t.failures()[0]), std::logic_error);
  idx.Finish();  // idempotent
}

TEST(IncrementalIndex, RejectionsAreCountedNotSilent) {
  const Trace t = HandTrace();
  IncrementalEventIndex idx(t.systems(), {.reorder_tolerance = kDay});
  for (const FailureRecord& r : t.failures()) idx.Ingest(r);

  // Late: more than a day behind the newest start (12d), watermark is 11d.
  FailureRecord late = t.failures()[0];
  late.start = 10 * kDay;
  late.end = late.start + kHour;
  EXPECT_EQ(idx.Ingest(late), IngestStatus::kRejectedLate);

  FailureRecord unknown = t.failures()[0];
  unknown.system = SystemId{99};
  EXPECT_EQ(idx.Ingest(unknown), IngestStatus::kRejectedUnknownSystem);

  FailureRecord bad_node = t.failures().back();
  bad_node.node = NodeId{999};
  EXPECT_EQ(idx.Ingest(bad_node), IngestStatus::kRejectedBadRecord);

  EXPECT_EQ(idx.counters().rejected_late, 1);
  EXPECT_EQ(idx.counters().rejected_unknown_system, 1);
  EXPECT_EQ(idx.counters().rejected_bad_record, 1);
  EXPECT_EQ(idx.counters().rejected(), 3);
  EXPECT_EQ(idx.counters().accepted, 4);
}

TEST(IncrementalIndex, BadEnumRecordsAreRejectedAtIngest) {
  // Records whose category/subcategory cannot round-trip a checkpoint (out
  // of enum range, or a subcategory on the wrong category) must be turned
  // away at ingest as rejected_bad_record — never stored, so every record a
  // snapshot serializes is restorable.
  const Trace t = HandTrace();
  IncrementalEventIndex idx(t.systems(), {.reorder_tolerance = kDay});
  for (const FailureRecord& r : t.failures()) idx.Ingest(r);
  const long long accepted_before = idx.counters().accepted;

  FailureRecord bad_cat = t.failures().back();
  bad_cat.category = static_cast<FailureCategory>(200);
  bad_cat.hardware.reset();
  bad_cat.software.reset();
  bad_cat.environment.reset();
  EXPECT_EQ(idx.Ingest(bad_cat), IngestStatus::kRejectedBadRecord);

  FailureRecord bad_sub = t.failures().back();
  bad_sub.category = FailureCategory::kHardware;
  bad_sub.hardware = static_cast<HardwareComponent>(100);
  bad_sub.software.reset();
  bad_sub.environment.reset();
  EXPECT_EQ(idx.Ingest(bad_sub), IngestStatus::kRejectedBadRecord);

  FailureRecord wrong_pairing = t.failures().back();
  wrong_pairing.category = FailureCategory::kSoftware;
  wrong_pairing.hardware = HardwareComponent::kCpu;
  wrong_pairing.software.reset();
  wrong_pairing.environment.reset();
  EXPECT_EQ(idx.Ingest(wrong_pairing), IngestStatus::kRejectedBadRecord);

  EXPECT_EQ(idx.counters().rejected_bad_record, 3);
  EXPECT_EQ(idx.counters().accepted, accepted_before);

  // The poison never reached a store, so a checkpoint round-trips cleanly.
  idx.Finish();
  snapshot::Writer w;
  idx.SaveTo(w);
  IncrementalEventIndex restored(t.systems(), {.reorder_tolerance = kDay});
  snapshot::Reader r(w.payload());
  restored.LoadFrom(r);
  EXPECT_EQ(restored.counters().rejected_bad_record, 3);
  EXPECT_EQ(restored.Count(core::EventFilter::Any()),
            idx.Count(core::EventFilter::Any()));
}

TEST(IncrementalIndex, AtWatermarkEventIsStillAccepted) {
  const Trace t = HandTrace();
  IncrementalEventIndex idx(t.systems(), {.reorder_tolerance = kDay});
  for (const FailureRecord& r : t.failures()) idx.Ingest(r);
  FailureRecord at_mark = t.failures()[0];
  at_mark.start = idx.watermark();
  at_mark.end = at_mark.start + kHour;
  EXPECT_EQ(idx.Ingest(at_mark), IngestStatus::kAccepted);
}

TEST(IncrementalIndex, SinkSeesPerSystemTimeOrder) {
  const Trace t = HandTrace();
  IncrementalEventIndex idx(t.systems(), {.reorder_tolerance = 2 * kDay});
  std::vector<std::vector<TimeSec>> seen(t.systems().size());
  idx.SetSink([&seen](std::size_t sys, const FailureRecord& r) {
    seen[sys].push_back(r.start);
  });
  // Out-of-order arrival within tolerance.
  std::vector<FailureRecord> events = t.failures();
  std::swap(events[0], events[2]);  // 12d first, then 11d, 10d, 10d
  for (const FailureRecord& r : events) {
    EXPECT_EQ(idx.Ingest(r), IngestStatus::kAccepted);
  }
  idx.Finish();
  for (const auto& lane : seen) {
    EXPECT_TRUE(std::is_sorted(lane.begin(), lane.end()));
  }
  EXPECT_EQ(seen[0].size(), 3u);
  EXPECT_EQ(seen[1].size(), 1u);
}

TEST(IncrementalIndex, QueriesMatchBatchIndexAfterFinish) {
  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 11);
  const core::EventIndex batch(trace);
  IncrementalEventIndex inc(trace.systems(), {.reorder_tolerance = 0});
  for (const FailureRecord& r : trace.failures()) inc.Ingest(r);
  inc.Finish();

  const core::EventFilter any = core::EventFilter::Any();
  EXPECT_EQ(inc.Count(any), batch.Count(any));
  for (const SystemConfig& s : trace.systems()) {
    ASSERT_EQ(inc.failures_of(s.id).size(), batch.failures_of(s.id).size());
    EXPECT_EQ(inc.NodeCounts(s.id, any), batch.NodeCounts(s.id, any));
    const TimeInterval w{s.observed.begin, s.observed.begin + 30 * kDay};
    for (int n = 0; n < std::min(s.num_nodes, 16); ++n) {
      const NodeId node{n};
      EXPECT_EQ(inc.CountAtNode(s.id, node, w, any),
                batch.CountAtNode(s.id, node, w, any));
      EXPECT_EQ(inc.AnyAtRackPeers(s.id, node, w, any),
                batch.AnyAtRackPeers(s.id, node, w, any));
      int inc_peers = 0, batch_peers = 0;
      EXPECT_EQ(
          inc.DistinctSystemPeersWithEvent(s.id, node, w, any, &inc_peers),
          batch.DistinctSystemPeersWithEvent(s.id, node, w, any,
                                             &batch_peers));
      EXPECT_EQ(inc_peers, batch_peers);
    }
  }
}

TEST(IncrementalIndex, CatchUpMatchesSerialIngestAtEveryThreadCount) {
  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 13);
  std::vector<FailureRecord> events = trace.failures();
  // Local shuffle within a one-day tolerance.
  for (std::size_t i = 0; i + 1 < events.size(); i += 2) {
    if (events[i + 1].start - events[i].start < kDay) {
      std::swap(events[i], events[i + 1]);
    }
  }

  const StreamConfig cfg{.reorder_tolerance = kDay};
  IncrementalEventIndex serial(trace.systems(), cfg);
  std::vector<std::vector<FailureRecord>> serial_seen(trace.systems().size());
  serial.SetSink([&](std::size_t sys, const FailureRecord& r) {
    serial_seen[sys].push_back(r);
  });
  for (const FailureRecord& r : events) serial.Ingest(r);
  serial.Finish();

  for (const int threads : {1, 2, 4, 8}) {
    IncrementalEventIndex sharded(trace.systems(), cfg);
    std::vector<std::vector<FailureRecord>> seen(trace.systems().size());
    sharded.SetSink([&](std::size_t sys, const FailureRecord& r) {
      seen[sys].push_back(r);
    });
    const IngestCounters delta = sharded.CatchUp(events, threads);
    sharded.Finish();
    EXPECT_EQ(delta.accepted, serial.counters().accepted);
    EXPECT_EQ(sharded.counters().released, serial.counters().released);
    for (std::size_t s = 0; s < seen.size(); ++s) {
      EXPECT_EQ(seen[s], serial_seen[s]) << "threads=" << threads;
    }
    for (const SystemConfig& s : trace.systems()) {
      EXPECT_EQ(sharded.failures_of(s.id).size(),
                serial.failures_of(s.id).size());
    }
  }
}

TEST(IncrementalIndex, CatchUpSplitAcrossCallsMatchesOneCall) {
  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 17);
  const std::vector<FailureRecord>& events = trace.failures();
  const std::size_t split = events.size() / 3;

  IncrementalEventIndex one(trace.systems(), {});
  one.CatchUp(events, 2);
  one.Finish();

  IncrementalEventIndex two(trace.systems(), {});
  two.CatchUp(std::span(events).subspan(0, split), 2);
  two.CatchUp(std::span(events).subspan(split), 2);
  two.Finish();

  EXPECT_EQ(one.counters().released, two.counters().released);
  for (const SystemConfig& s : trace.systems()) {
    const auto a = one.failures_of(s.id);
    const auto b = two.failures_of(s.id);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

}  // namespace
}  // namespace hpcfail::stream
