#include "core/interarrival.h"

#include <gtest/gtest.h>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

TEST(Interarrival, GapCountsMatchEventCounts) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 1);
  const EventIndex idx(t);
  const SystemId sys = t.systems()[0].id;
  const InterarrivalAnalysis a = AnalyzeInterarrivals(idx, sys);
  EXPECT_EQ(a.system_gaps_hours.size(), t.FailuresOfSystem(sys).size() - 1);
  for (double g : a.system_gaps_hours) EXPECT_GT(g, 0.0);
}

TEST(Interarrival, HawkesTraceHasClusteringSignature) {
  // The generator's self-excitation must show up as a Weibull shape < 1 on
  // per-node gaps (decreasing hazard == bursty) and positive lag-1
  // autocorrelation of daily counts.
  synth::Scenario sc;
  sc.duration = 3 * kYear;
  auto sys = synth::Group1System("g", 64, 3 * kYear);
  for (double& r : sys.base_rate_per_hour) r *= 10.0;
  sc.systems.push_back(sys);
  const Trace t = synth::GenerateTrace(sc, 2);
  const EventIndex idx(t);
  const InterarrivalAnalysis a = AnalyzeInterarrivals(idx, SystemId{0});
  EXPECT_LT(a.node_weibull.param1, 0.95);
  ASSERT_GT(a.daily_count_acf.size(), 2u);
  EXPECT_GT(a.daily_count_acf[1], 0.02);
}

TEST(Interarrival, PoissonControlHasNoClustering) {
  // Negative control: all cascades/facility events/modulation off -> the
  // process is (piecewise) Poisson, Weibull shape ~1, ACF ~0.
  synth::Scenario sc;
  sc.duration = 3 * kYear;
  auto sys = synth::Group1System("g", 64, 3 * kYear);
  for (double& r : sys.base_rate_per_hour) r *= 10.0;
  for (auto& c : sys.node_cascade) c.children.fill(0.0);
  for (auto& c : sys.rack_cascade) c.children.fill(0.0);
  for (auto& c : sys.system_cascade) c.children.fill(0.0);
  sys.power_supply_cascade.children.fill(0.0);
  sys.fan_cascade.children.fill(0.0);
  sys.power_outage.events_per_year = 0.0;
  sys.power_spike.events_per_year = 0.0;
  sys.ups_failure.events_per_year = 0.0;
  sys.chiller_failure.events_per_year = 0.0;
  sys.modulation_sigma = 0.0;
  sys.node0_rate_multiplier.fill(1.0);
  sc.systems.push_back(sys);
  const Trace t = synth::GenerateTrace(sc, 3);
  const EventIndex idx(t);
  const InterarrivalAnalysis a = AnalyzeInterarrivals(idx, SystemId{0});
  EXPECT_NEAR(a.system_weibull.param1, 1.0, 0.1);
  EXPECT_LT(std::abs(a.daily_count_acf[1]), 0.1);
}

TEST(Interarrival, FilterRestrictsStream) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 4);
  const EventIndex idx(t);
  const SystemId sys = t.systems()[0].id;
  const InterarrivalAnalysis all = AnalyzeInterarrivals(idx, sys);
  const InterarrivalAnalysis hw = AnalyzeInterarrivals(
      idx, sys, EventFilter::Of(FailureCategory::kHardware));
  EXPECT_LT(hw.system_gaps_hours.size(), all.system_gaps_hours.size());
}

TEST(Interarrival, FitsSortedByAic) {
  const Trace t = synth::GenerateTrace(synth::TinyScenario(), 5);
  const EventIndex idx(t);
  const InterarrivalAnalysis a =
      AnalyzeInterarrivals(idx, t.systems()[0].id);
  ASSERT_EQ(a.system_fits.size(), 4u);
  for (std::size_t i = 1; i < a.system_fits.size(); ++i) {
    EXPECT_GE(a.system_fits[i].aic, a.system_fits[i - 1].aic);
  }
}

TEST(Interarrival, ThrowsOnTooFewFailures) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "sparse";
  c.num_nodes = 4;
  c.procs_per_node = 4;
  c.observed = {0, kYear};
  t.AddSystem(c);
  t.AddFailure(MakeFailure(SystemId{0}, NodeId{0}, kDay, kDay + kHour,
                           FailureCategory::kHardware));
  t.Finalize();
  const EventIndex idx(t);
  EXPECT_THROW(AnalyzeInterarrivals(idx, SystemId{0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hpcfail::core
