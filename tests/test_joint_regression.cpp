#include "core/joint_regression.h"

#include <gtest/gtest.h>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

Trace System20Trace(std::uint64_t seed = 81) {
  synth::Scenario sc;
  sc.duration = 2 * kYear;
  auto sys = synth::System20Like(128, 2 * kYear);
  sys.temperature.sample_interval = 12 * kHour;
  sc.systems.push_back(sys);
  return synth::GenerateTrace(sc, seed);
}

TEST(Covariates, RowsCoverAllNodes) {
  const Trace t = System20Trace();
  const EventIndex idx(t);
  const auto rows = BuildJointCovariates(idx, SystemId{0});
  EXPECT_EQ(rows.size(), 128u);
  for (const NodeCovariates& r : rows) {
    EXPECT_GE(r.fails_count, 0.0);
    EXPECT_GT(r.avg_temp, 0.0);       // temperature log exists
    EXPECT_GE(r.max_temp, r.avg_temp);
    EXPECT_GE(r.util, 0.0);
    EXPECT_LE(r.util, 100.0);
    EXPECT_GE(r.pir, 1.0);
    EXPECT_LE(r.pir, kMaxPositionInRack);
  }
}

TEST(Covariates, ExcludeNodeDropsRow) {
  const Trace t = System20Trace();
  const EventIndex idx(t);
  const auto rows = BuildJointCovariates(idx, SystemId{0}, NodeId{0});
  EXPECT_EQ(rows.size(), 127u);
  for (const NodeCovariates& r : rows) EXPECT_NE(r.node, NodeId{0});
}

TEST(JointRegression, FitsBothModels) {
  const Trace t = System20Trace();
  const EventIndex idx(t);
  const JointRegression jr = FitJointRegression(idx, SystemId{0});
  // Intercept + 7 covariates, in Table I order.
  EXPECT_EQ(jr.poisson.coefficients.size(), 8u);
  EXPECT_EQ(jr.negative_binomial.coefficients.size(), 8u);
  EXPECT_EQ(jr.poisson.coefficients[1].name, "avg_temp");
  EXPECT_EQ(jr.poisson.coefficients[7].name, "PIR");
  EXPECT_GT(jr.negative_binomial.theta, 0.0);
}

TEST(JointRegression, UsageVariablesSignificantTemperatureNot) {
  // The paper's Table II/III headline: num_jobs and util are significant;
  // temperature and PIR are not. The generator injects exactly that causal
  // structure. (Assert on the NB fit, which is robust to the node-0
  // overdispersion; the paper reaches the same conclusion with both.)
  const Trace t = System20Trace();
  const EventIndex idx(t);
  const JointRegression jr = FitJointRegression(idx, SystemId{0}, NodeId{0});
  const auto& nb = jr.negative_binomial;
  EXPECT_LT(nb.coefficient("num_jobs").p_value, 0.05);
  EXPECT_GT(nb.coefficient("avg_temp").p_value, 0.01);
  EXPECT_GT(nb.coefficient("PIR").p_value, 0.01);
}

TEST(JointRegression, SubsetRefit) {
  const Trace t = System20Trace();
  const EventIndex idx(t);
  const JointRegression jr = FitJointRegressionSubset(
      idx, SystemId{0}, {"num_jobs", "util"});
  EXPECT_EQ(jr.poisson.coefficients.size(), 3u);
  EXPECT_EQ(jr.poisson.coefficients[1].name, "num_jobs");
  EXPECT_EQ(jr.poisson.coefficients[2].name, "util");
}

TEST(JointRegression, SubsetRejectsUnknownName) {
  const Trace t = System20Trace();
  const EventIndex idx(t);
  EXPECT_THROW(
      FitJointRegressionSubset(idx, SystemId{0}, {"num_jobs", "bogus"}),
      std::invalid_argument);
}

TEST(JointRegression, CovariateNamesMatchTableI) {
  const auto names = JointCovariateNames();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "avg_temp");
  EXPECT_EQ(names[1], "max_temp");
  EXPECT_EQ(names[2], "temp_var");
  EXPECT_EQ(names[3], "num_hightemp");
  EXPECT_EQ(names[4], "num_jobs");
  EXPECT_EQ(names[5], "util");
  EXPECT_EQ(names[6], "PIR");
}

TEST(JointRegression, TooFewRowsThrows) {
  Trace t;
  SystemConfig c;
  c.id = SystemId{0};
  c.name = "small";
  c.num_nodes = 4;  // fewer rows than covariates + 2
  c.procs_per_node = 4;
  c.observed = {0, kYear};
  c.layout = MachineLayout::Grid(4, 4, 1);
  t.AddSystem(c);
  t.Finalize();
  const EventIndex idx(t);
  EXPECT_THROW(FitJointRegression(idx, SystemId{0}), std::invalid_argument);
}

}  // namespace
}  // namespace hpcfail::core
