#include "stats/distribution_fit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.h"

namespace hpcfail::stats {
namespace {

std::vector<double> Draw(Rng& rng, Distribution d, double p1, double p2,
                         int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    switch (d) {
      case Distribution::kExponential:
        out.push_back(rng.Exponential(p1));
        break;
      case Distribution::kWeibull: {
        // Inverse CDF: lambda * (-ln U)^{1/k}.
        out.push_back(p2 * std::pow(-std::log(1.0 - rng.Uniform()),
                                    1.0 / p1));
        break;
      }
      case Distribution::kLogNormal:
        out.push_back(rng.LogNormal(p1, p2));
        break;
      case Distribution::kGamma: {
        std::gamma_distribution<double> g(p1, 1.0 / p2);
        out.push_back(g(rng.engine()));
        break;
      }
    }
  }
  return out;
}

TEST(FitExponential, RecoversRate) {
  Rng rng(1);
  const auto xs = Draw(rng, Distribution::kExponential, 2.5, 0.0, 5000);
  const DistributionFit fit = FitExponential(xs);
  EXPECT_NEAR(fit.param1, 2.5, 0.1);
  EXPECT_NEAR(fit.Mean(), 0.4, 0.02);
  EXPECT_GT(fit.ks_p_value, 0.01);  // correct model fits
}

TEST(FitWeibull, RecoversShapeAndScale) {
  Rng rng(2);
  const auto xs = Draw(rng, Distribution::kWeibull, 0.7, 3.0, 5000);
  const DistributionFit fit = FitWeibull(xs);
  EXPECT_NEAR(fit.param1, 0.7, 0.05);
  EXPECT_NEAR(fit.param2, 3.0, 0.25);
  EXPECT_GT(fit.ks_p_value, 0.01);
}

TEST(FitWeibull, ShapeOneMatchesExponential) {
  Rng rng(3);
  const auto xs = Draw(rng, Distribution::kExponential, 1.5, 0.0, 5000);
  const DistributionFit w = FitWeibull(xs);
  EXPECT_NEAR(w.param1, 1.0, 0.06);  // exponential == Weibull shape 1
}

TEST(FitLogNormal, RecoversParameters) {
  Rng rng(4);
  const auto xs = Draw(rng, Distribution::kLogNormal, 0.5, 1.2, 5000);
  const DistributionFit fit = FitLogNormal(xs);
  EXPECT_NEAR(fit.param1, 0.5, 0.06);
  EXPECT_NEAR(fit.param2, 1.2, 0.06);
  EXPECT_GT(fit.ks_p_value, 0.01);
}

TEST(FitGamma, RecoversParameters) {
  Rng rng(5);
  const auto xs = Draw(rng, Distribution::kGamma, 2.0, 0.5, 5000);
  const DistributionFit fit = FitGamma(xs);
  EXPECT_NEAR(fit.param1, 2.0, 0.2);
  EXPECT_NEAR(fit.param2, 0.5, 0.06);
  EXPECT_NEAR(fit.Mean(), 4.0, 0.2);
}

TEST(FitAll, SelectsTrueModelByAic) {
  Rng rng(6);
  const auto xs = Draw(rng, Distribution::kLogNormal, 0.0, 1.5, 4000);
  const auto fits = FitAll(xs);
  ASSERT_EQ(fits.size(), 4u);
  EXPECT_EQ(fits[0].distribution, Distribution::kLogNormal);
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_GE(fits[i].aic, fits[i - 1].aic);
  }
}

TEST(FitAll, ExponentialDataKeepsExponentialCompetitive) {
  // On exponential data the nesting 2-parameter families (Weibull, gamma)
  // cannot beat the exponential by more than sampling noise plus the AIC
  // penalty, so the exponential stays within a few AIC units of the best.
  Rng rng(7);
  const auto xs = Draw(rng, Distribution::kExponential, 1.0, 0.0, 3000);
  const auto fits = FitAll(xs);
  double exp_aic = 0.0;
  for (const DistributionFit& f : fits) {
    if (f.distribution == Distribution::kExponential) exp_aic = f.aic;
  }
  EXPECT_LT(exp_aic - fits.front().aic, 10.0);
}

TEST(KsTest, DetectsWrongModel) {
  Rng rng(8);
  // Heavy-tailed lognormal data vs exponential fit: KS must reject.
  const auto xs = Draw(rng, Distribution::kLogNormal, 0.0, 2.0, 2000);
  const DistributionFit expo = FitExponential(xs);
  EXPECT_LT(expo.ks_p_value, 0.01);
}

TEST(KsStatistic, PerfectFitIsSmall) {
  Rng rng(9);
  const auto xs = Draw(rng, Distribution::kExponential, 1.0, 0.0, 2000);
  const DistributionFit fit = FitExponential(xs);
  EXPECT_LT(fit.ks_statistic, 0.05);
}

TEST(KolmogorovPValue, KnownBehaviour) {
  EXPECT_DOUBLE_EQ(KolmogorovPValue(0.0, 100), 1.0);
  // sqrt(n)*D = 1.36 is the classic 5% critical point.
  EXPECT_NEAR(KolmogorovPValue(0.136, 100), 0.05, 0.01);
  EXPECT_LT(KolmogorovPValue(0.3, 100), 1e-6);
}

TEST(DistributionFit, CdfProperties) {
  Rng rng(10);
  const auto xs = Draw(rng, Distribution::kWeibull, 1.5, 2.0, 500);
  for (const DistributionFit& fit : FitAll(xs)) {
    EXPECT_DOUBLE_EQ(fit.Cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(fit.Cdf(-1.0), 0.0);
    double prev = 0.0;
    for (double x = 0.1; x < 20.0; x += 0.5) {
      const double c = fit.Cdf(x);
      EXPECT_GE(c, prev - 1e-12);
      EXPECT_LE(c, 1.0);
      prev = c;
    }
    EXPECT_GT(fit.Cdf(1e6), 0.999);
  }
}

TEST(DistributionFit, RejectsBadInput) {
  const std::vector<double> too_few = {1.0, 2.0};
  EXPECT_THROW(FitExponential(too_few), std::invalid_argument);
  const std::vector<double> with_zero = {1.0, 0.0, 2.0};
  EXPECT_THROW(FitWeibull(with_zero), std::invalid_argument);
  const std::vector<double> with_negative = {1.0, -2.0, 2.0};
  EXPECT_THROW(FitGamma(with_negative), std::invalid_argument);
}

TEST(ToString, Names) {
  EXPECT_EQ(ToString(Distribution::kExponential), "exponential");
  EXPECT_EQ(ToString(Distribution::kWeibull), "weibull");
  EXPECT_EQ(ToString(Distribution::kLogNormal), "lognormal");
  EXPECT_EQ(ToString(Distribution::kGamma), "gamma");
}

// Property sweep: Weibull MLE recovers shapes across the clustering (<1)
// and wear-out (>1) regimes.
class WeibullShapeTest : public ::testing::TestWithParam<double> {};

TEST_P(WeibullShapeTest, ShapeRecovered) {
  const double shape = GetParam();
  Rng rng(static_cast<std::uint64_t>(shape * 1000));
  const auto xs = Draw(rng, Distribution::kWeibull, shape, 1.0, 4000);
  const DistributionFit fit = FitWeibull(xs);
  EXPECT_NEAR(fit.param1, shape, 0.08 * shape + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Shapes, WeibullShapeTest,
                         ::testing::Values(0.4, 0.7, 1.0, 1.5, 2.5, 4.0));

}  // namespace
}  // namespace hpcfail::stats
