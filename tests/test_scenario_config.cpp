#include "synth/scenario_config.h"

#include <gtest/gtest.h>

#include <sstream>

#include "synth/generate.h"

namespace hpcfail::synth {
namespace {

TEST(ScenarioConfig, MinimalConfig) {
  std::stringstream cfg("[system]\n");
  const Scenario sc = LoadScenarioConfig(cfg);
  ASSERT_EQ(sc.systems.size(), 1u);
  EXPECT_EQ(sc.systems[0].group, SystemGroup::kSmp);  // group1 default
  EXPECT_EQ(sc.duration, 3 * kYear);
}

TEST(ScenarioConfig, FullConfig) {
  std::stringstream cfg(
      "# a test scenario\n"
      "duration_years = 2\n"
      "neutron_amplitude = 800\n"
      "\n"
      "[system]\n"
      "preset = group1\n"
      "name = prod\n"
      "nodes = 128\n"
      "nodes_per_rack = 16\n"
      "base_rate_scale = 2.5\n"
      "outages_per_year = 4\n"
      "workload = true\n"
      "jobs_per_day = 99\n"
      "temperature = yes\n"
      "cpu_flux_exponent = 0\n"
      "\n"
      "[system]\n"
      "preset = group2\n"
      "nodes = 16\n");
  const Scenario sc = LoadScenarioConfig(cfg);
  EXPECT_EQ(sc.duration, 2 * kYear);
  EXPECT_DOUBLE_EQ(sc.neutron.cycle_amplitude, 800.0);
  ASSERT_EQ(sc.systems.size(), 2u);
  const SystemScenario& s = sc.systems[0];
  EXPECT_EQ(s.name, "prod");
  EXPECT_EQ(s.num_nodes, 128);
  EXPECT_EQ(s.nodes_per_rack, 16);
  EXPECT_DOUBLE_EQ(s.power_outage.events_per_year, 4.0);
  EXPECT_TRUE(s.workload.enabled);
  EXPECT_DOUBLE_EQ(s.workload.jobs_per_day, 99.0);
  EXPECT_TRUE(s.temperature.enabled);
  EXPECT_DOUBLE_EQ(s.cpu_flux_exponent, 0.0);
  // base_rate_scale applied on top of the preset.
  const SystemScenario base = Group1System("x", 128);
  EXPECT_NEAR(s.base_rate_per_hour[1], 2.5 * base.base_rate_per_hour[1],
              1e-15);
  EXPECT_EQ(sc.systems[1].group, SystemGroup::kNuma);
}

TEST(ScenarioConfig, PresetsResolve) {
  for (const char* preset : {"group1", "group2", "system8", "system20"}) {
    std::stringstream cfg(std::string("[system]\npreset = ") + preset + "\n");
    EXPECT_NO_THROW(LoadScenarioConfig(cfg)) << preset;
  }
}

TEST(ScenarioConfig, GeneratedTraceWorks) {
  std::stringstream cfg(
      "duration_years = 0.2\n[system]\nnodes = 16\nbase_rate_scale = 30\n");
  const Scenario sc = LoadScenarioConfig(cfg);
  const Trace t = GenerateTrace(sc, 1);
  EXPECT_GT(t.num_failures(), 10u);
}

TEST(ScenarioConfig, RejectsUnknownKeys) {
  std::stringstream global("durationyears = 2\n[system]\n");
  EXPECT_THROW(LoadScenarioConfig(global), ConfigError);
  std::stringstream system("[system]\nnodez = 4\n");
  EXPECT_THROW(LoadScenarioConfig(system), ConfigError);
}

TEST(ScenarioConfig, RejectsUnknownPresetAndSection) {
  std::stringstream preset("[system]\npreset = exascale\n");
  EXPECT_THROW(LoadScenarioConfig(preset), ConfigError);
  std::stringstream section("[cluster]\n");
  EXPECT_THROW(LoadScenarioConfig(section), ConfigError);
}

TEST(ScenarioConfig, RejectsMalformedValues) {
  std::stringstream nonnum("[system]\nnodes = many\n");
  EXPECT_THROW(LoadScenarioConfig(nonnum), ConfigError);
  std::stringstream nonbool("[system]\nworkload = maybe\n");
  EXPECT_THROW(LoadScenarioConfig(nonbool), ConfigError);
  std::stringstream noeq("[system]\nnodes 4\n");
  EXPECT_THROW(LoadScenarioConfig(noeq), ConfigError);
  std::stringstream negdur("duration_years = -1\n[system]\n");
  EXPECT_THROW(LoadScenarioConfig(negdur), ConfigError);
}

TEST(ScenarioConfig, RejectsEmptyConfig) {
  std::stringstream cfg("# nothing here\n");
  EXPECT_THROW(LoadScenarioConfig(cfg), ConfigError);
}

TEST(ScenarioConfig, ErrorsCarryLineNumbers) {
  std::stringstream cfg("duration_years = 2\n[system]\nbogus = 1\n");
  try {
    LoadScenarioConfig(cfg);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(ScenarioConfig, CommentsAndWhitespaceIgnored) {
  std::stringstream cfg(
      "  # leading comment\n"
      "\n"
      "   [system]   \n"
      "  nodes   =   24   # trailing comment\n");
  const Scenario sc = LoadScenarioConfig(cfg);
  EXPECT_EQ(sc.systems[0].num_nodes, 24);
}

TEST(ScenarioConfig, MissingFileThrows) {
  EXPECT_THROW(LoadScenarioConfigFile("/nonexistent/scenario.conf"),
               std::runtime_error);
}

}  // namespace
}  // namespace hpcfail::synth
