// The artifact cache's contract: a warm load is bit-identical to a cold
// acquisition, and every way an entry can be unusable (truncation, flipped
// bytes, stale schema, wrong key, wrong artifact kind) degrades to a miss
// with a distinct diagnostic, deletes the bad entry, and regenerates —
// the cache can cost a rebuild, never a wrong answer.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/window_analysis.h"
#include "engine/session.h"
#include "engine/single_flight.h"
#include "engine/trace_cache.h"
#include "synth/generate.h"
#include "synth/scenario.h"

namespace hpcfail::engine {
namespace {

using core::ConditionalResult;
using core::EventFilter;
using core::Scope;
using core::WindowAnalyzer;

class EngineCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/hpcfail_cache_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  SessionOptions Options() const {
    SessionOptions o;
    o.cache.dir = dir_;
    return o;
  }

  AnalysisSession MakeSession(std::uint64_t seed = 7) const {
    return AnalysisSession::FromScenario(synth::TinyScenario(), seed,
                                         Options());
  }

  std::string EntryPathOf(const AnalysisSession& s) const {
    ArtifactCache cache(Options().cache);
    return cache.EntryPath(*s.stats().fingerprint);
  }

  std::string dir_;
};

void ExpectSameResult(const ConditionalResult& a, const ConditionalResult& b) {
  EXPECT_EQ(a.conditional.successes, b.conditional.successes);
  EXPECT_EQ(a.conditional.trials, b.conditional.trials);
  EXPECT_EQ(a.conditional.estimate, b.conditional.estimate);
  EXPECT_EQ(a.conditional.ci_low, b.conditional.ci_low);
  EXPECT_EQ(a.conditional.ci_high, b.conditional.ci_high);
  EXPECT_EQ(a.baseline.successes, b.baseline.successes);
  EXPECT_EQ(a.baseline.trials, b.baseline.trials);
  EXPECT_EQ(a.baseline.estimate, b.baseline.estimate);
  EXPECT_TRUE(a.factor == b.factor ||
              (std::isnan(a.factor) && std::isnan(b.factor)));
  EXPECT_EQ(a.test.z, b.test.z);
  EXPECT_EQ(a.test.p_value, b.test.p_value);
  EXPECT_EQ(a.num_triggers, b.num_triggers);
}

void ExpectSameTrace(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.systems().size(), b.systems().size());
  for (std::size_t i = 0; i < a.systems().size(); ++i) {
    const SystemConfig& x = a.systems()[i];
    const SystemConfig& y = b.systems()[i];
    EXPECT_EQ(x.id.value, y.id.value);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.group, y.group);
    EXPECT_EQ(x.num_nodes, y.num_nodes);
    EXPECT_EQ(x.procs_per_node, y.procs_per_node);
    EXPECT_EQ(x.observed.begin, y.observed.begin);
    EXPECT_EQ(x.observed.end, y.observed.end);
    ASSERT_EQ(x.layout.placements().size(), y.layout.placements().size());
    for (std::size_t p = 0; p < x.layout.placements().size(); ++p) {
      EXPECT_EQ(x.layout.placements()[p].rack.value,
                y.layout.placements()[p].rack.value);
      EXPECT_EQ(x.layout.placements()[p].position_in_rack,
                y.layout.placements()[p].position_in_rack);
    }
  }
  ASSERT_EQ(a.failures().size(), b.failures().size());
  for (std::size_t i = 0; i < a.failures().size(); ++i) {
    const FailureRecord& x = a.failures()[i];
    const FailureRecord& y = b.failures()[i];
    EXPECT_EQ(x.system.value, y.system.value);
    EXPECT_EQ(x.node.value, y.node.value);
    EXPECT_EQ(x.start, y.start);
    EXPECT_EQ(x.end, y.end);
    EXPECT_EQ(x.category, y.category);
    EXPECT_EQ(x.hardware, y.hardware);
    EXPECT_EQ(x.software, y.software);
    EXPECT_EQ(x.environment, y.environment);
  }
  ASSERT_EQ(a.maintenance().size(), b.maintenance().size());
  ASSERT_EQ(a.jobs().size(), b.jobs().size());
  for (std::size_t i = 0; i < a.jobs().size(); ++i) {
    EXPECT_EQ(a.jobs()[i].user.value, b.jobs()[i].user.value);
    EXPECT_EQ(a.jobs()[i].nodes.size(), b.jobs()[i].nodes.size());
    EXPECT_EQ(a.jobs()[i].killed_by_node_failure,
              b.jobs()[i].killed_by_node_failure);
  }
  ASSERT_EQ(a.temperatures().size(), b.temperatures().size());
  for (std::size_t i = 0; i < a.temperatures().size(); ++i) {
    EXPECT_EQ(a.temperatures()[i].time, b.temperatures()[i].time);
    EXPECT_EQ(a.temperatures()[i].celsius, b.temperatures()[i].celsius);
  }
  ASSERT_EQ(a.neutron_series().size(), b.neutron_series().size());
}

TEST_F(EngineCacheTest, WarmLoadIsBitIdenticalToColdAcquire) {
  const AnalysisSession cold = MakeSession();
  ASSERT_FALSE(cold.stats().cache_hit);
  ASSERT_TRUE(cold.stats().cache_stored);

  const AnalysisSession warm = MakeSession();
  ASSERT_TRUE(warm.stats().cache_hit);
  EXPECT_EQ(warm.stats().cache_diagnostic, "hit");

  ExpectSameTrace(cold.trace(), warm.trace());

  // The headline analyses must agree bit-for-bit across every scope and
  // window length — the cache may change timing, never results.
  const WindowAnalyzer a(cold.index());
  const WindowAnalyzer b(warm.index());
  const EventFilter any = EventFilter::Any();
  for (const Scope scope :
       {Scope::kSameNode, Scope::kRackPeers, Scope::kSystemPeers}) {
    for (const TimeSec window : {kDay, kWeek, kMonth}) {
      SCOPED_TRACE(std::string(ToString(scope)) + " window=" +
                   std::to_string(window));
      ExpectSameResult(a.Compare(any, any, scope, window),
                       b.Compare(any, any, scope, window));
    }
  }
}

TEST_F(EngineCacheTest, DistinctSeedsGetDistinctEntries) {
  const AnalysisSession s7 = MakeSession(7);
  const AnalysisSession s8 = MakeSession(8);
  EXPECT_NE(*s7.stats().fingerprint, *s8.stats().fingerprint);
  EXPECT_FALSE(s8.stats().cache_hit);  // not served seed 7's trace
  EXPECT_TRUE(std::filesystem::exists(EntryPathOf(s7)));
  EXPECT_TRUE(std::filesystem::exists(EntryPathOf(s8)));
}

TEST_F(EngineCacheTest, NoCacheBypassesLoadAndStore) {
  SessionOptions o = Options();
  o.cache.enabled = false;
  const AnalysisSession s =
      AnalysisSession::FromScenario(synth::TinyScenario(), 7, o);
  EXPECT_FALSE(s.stats().cache_enabled);
  EXPECT_FALSE(s.stats().cache_hit);
  EXPECT_FALSE(s.stats().cache_stored);
  EXPECT_EQ(s.stats().cache_diagnostic, "cache disabled");
  EXPECT_FALSE(std::filesystem::exists(dir_));

  // And the trace is identical to a cached acquisition of the same seed.
  const AnalysisSession cached = MakeSession(7);
  ExpectSameTrace(s.trace(), cached.trace());
}

// ---- Corruption matrix. Every case: distinct diagnostic, entry deleted,
// next session silently regenerates (and re-stores a good entry).

class CorruptionTest : public EngineCacheTest {
 protected:
  // Populates the cache and returns the entry path + fingerprint.
  void Prime() {
    const AnalysisSession s = MakeSession();
    ASSERT_TRUE(s.stats().cache_stored);
    fingerprint_ = *s.stats().fingerprint;
    path_ = EntryPathOf(s);
    ASSERT_TRUE(std::filesystem::exists(path_));
  }

  std::string ReadEntry() const {
    std::ifstream is(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
  }

  void WriteEntry(const std::string& bytes) const {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Writes a hand-composed entry with the given tag/schema/key around the
  // real trace payload for `fingerprint_`'s scenario.
  void ComposeEntry(std::string_view tag, std::uint32_t schema,
                    std::uint64_t stored_key) const {
    const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 7);
    stream::snapshot::Writer w;
    w.PutString(tag);
    w.PutU32(schema);
    w.PutU64(stored_key);
    SerializeTrace(trace, &w);
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    stream::snapshot::WriteEnvelope(os, w.payload());
  }

  // The corrupted entry must (a) miss with `expect_diagnostic`, (b) be
  // deleted, and (c) leave the session fully functional via regeneration.
  void ExpectMissAndSelfHeal(const std::string& expect_diagnostic) {
    ArtifactCache cache(Options().cache);
    std::string diagnostic;
    EXPECT_FALSE(cache.TryLoad(fingerprint_, &diagnostic).has_value());
    EXPECT_NE(diagnostic.find(expect_diagnostic), std::string::npos)
        << "actual diagnostic: " << diagnostic;
    EXPECT_FALSE(std::filesystem::exists(path_)) << "bad entry not deleted";

    // Silent fallback: the session regenerates, matches the pristine trace,
    // and re-stores a loadable entry.
    const AnalysisSession regen = MakeSession();
    EXPECT_FALSE(regen.stats().cache_hit);
    EXPECT_TRUE(regen.stats().cache_stored);
    ExpectSameTrace(regen.trace(),
                    AnalysisSession::FromScenario(synth::TinyScenario(), 7,
                                                  Options())
                        .trace());
    const AnalysisSession warm = MakeSession();
    EXPECT_TRUE(warm.stats().cache_hit);
  }

  std::uint64_t fingerprint_ = 0;
  std::string path_;
};

TEST_F(CorruptionTest, TruncatedFile) {
  Prime();
  const std::string bytes = ReadEntry();
  WriteEntry(bytes.substr(0, bytes.size() / 2));
  ExpectMissAndSelfHeal("corrupt cache entry");
}

TEST_F(CorruptionTest, FlippedByteFailsChecksum) {
  Prime();
  std::string bytes = ReadEntry();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x5a);
  WriteEntry(bytes);
  ExpectMissAndSelfHeal("corrupt cache entry");
}

TEST_F(CorruptionTest, StaleSchemaVersion) {
  Prime();
  ComposeEntry("HFTRACE0", kTraceSchemaVersion + 1, fingerprint_);
  ExpectMissAndSelfHeal("stale cache schema");
}

TEST_F(CorruptionTest, MismatchedFingerprint) {
  Prime();
  ComposeEntry("HFTRACE0", kTraceSchemaVersion, fingerprint_ ^ 0x1);
  ExpectMissAndSelfHeal("cache fingerprint mismatch");
}

TEST_F(CorruptionTest, WrongArtifactTag) {
  Prime();
  ComposeEntry("HFOTHER0", kTraceSchemaVersion, fingerprint_);
  ExpectMissAndSelfHeal("wrong artifact tag");
}

TEST_F(CorruptionTest, DiagnosticsAreDistinct) {
  // The four mandated corruption classes must be tellable apart from the
  // diagnostic alone (an operator debugging a cache should not guess).
  Prime();
  const std::string bytes = ReadEntry();
  std::vector<std::string> diagnostics;

  WriteEntry(bytes.substr(0, 16));  // truncated
  ArtifactCache cache(Options().cache);
  std::string d;
  cache.TryLoad(fingerprint_, &d);
  diagnostics.push_back(d);

  std::string flipped = bytes;
  flipped[flipped.size() - 4] ^= 0x77;  // checksum region
  WriteEntry(flipped);
  cache.TryLoad(fingerprint_, &d);
  diagnostics.push_back(d);

  ComposeEntry("HFTRACE0", kTraceSchemaVersion + 9, fingerprint_);
  cache.TryLoad(fingerprint_, &d);
  diagnostics.push_back(d);

  ComposeEntry("HFTRACE0", kTraceSchemaVersion, ~fingerprint_);
  cache.TryLoad(fingerprint_, &d);
  diagnostics.push_back(d);

  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    EXPECT_FALSE(diagnostics[i].empty());
    for (std::size_t j = i + 1; j < diagnostics.size(); ++j) {
      EXPECT_NE(diagnostics[i], diagnostics[j])
          << "cases " << i << " and " << j << " are indistinguishable";
    }
  }
}

TEST_F(EngineCacheTest, SerializeRoundTripsThroughReader) {
  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 3);
  stream::snapshot::Writer w;
  SerializeTrace(trace, &w);
  stream::snapshot::Reader r(w.payload());
  const Trace back = DeserializeTrace(&r);
  EXPECT_TRUE(r.AtEnd());
  ExpectSameTrace(trace, back);
}

// ---- Single-flight: concurrent sessions for one fingerprint -------------
//
// Before engine/single_flight.h, N threads cold-starting the same scenario
// all missed the cache and ran N acquisitions, racing their tmp+rename
// stores. The KeyedMutex serializes per fingerprint: exactly one thread
// acquires and stores; everyone who waited loads the stored entry ("hit").

TEST_F(EngineCacheTest, ConcurrentColdStartsBuildOnce) {
  constexpr int kThreads = 6;
  std::vector<std::unique_ptr<AnalysisSession>> sessions(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      sessions[static_cast<std::size_t>(i)] =
          std::make_unique<AnalysisSession>(MakeSession());
    });
  }
  for (auto& t : threads) t.join();

  int stored = 0;
  int hits = 0;
  for (const auto& session : sessions) {
    ASSERT_NE(session, nullptr);
    if (session->stats().cache_stored) ++stored;
    if (session->stats().cache_hit) {
      ++hits;
      EXPECT_EQ(session->stats().cache_diagnostic, "hit");
    }
  }
  EXPECT_EQ(stored, 1) << "exactly one thread may run the acquisition";
  EXPECT_EQ(hits, kThreads - 1) << "every waiter must load the stored entry";

  // All traces are the same bytes regardless of who built.
  for (int i = 1; i < kThreads; ++i) {
    ExpectSameTrace(sessions[0]->trace(),
                    sessions[static_cast<std::size_t>(i)]->trace());
  }

  // One entry file; the keyed-mutex table is empty again.
  EXPECT_TRUE(std::filesystem::exists(EntryPathOf(*sessions[0])));
  EXPECT_EQ(KeyedMutex::Global().live_keys(), 0u);
}

// ---- Multi-kind artifacts: the generic TryLoadBody/StoreBody surface, the
// per-kind corruption matrix, the budget sweep, and orphan-tmp cleanup.

class MultiKindTest : public EngineCacheTest {
 protected:
  ArtifactCache Cache() const { return ArtifactCache(Options().cache); }

  // Hand-composes an entry for `kind`'s path with the given header fields.
  void ComposeKindEntry(ArtifactKind kind, std::string_view tag,
                        std::uint32_t schema, std::uint64_t stored_key,
                        std::uint64_t path_key,
                        std::string_view body) const {
    ArtifactCache cache = Cache();
    std::filesystem::create_directories(cache.dir());
    stream::snapshot::Writer w;
    w.PutString(tag);
    w.PutU32(schema);
    w.PutU64(stored_key);
    for (const char c : body) w.PutU8(static_cast<std::uint8_t>(c));
    std::ofstream os(cache.EntryPath(kind, path_key),
                     std::ios::binary | std::ios::trunc);
    stream::snapshot::WriteEnvelope(os, w.payload());
  }
};

TEST_F(MultiKindTest, ParseArtifactKindsSpecs) {
  EXPECT_EQ(ParseArtifactKinds(""), kAllArtifactKinds);
  EXPECT_EQ(ParseArtifactKinds("all"), kAllArtifactKinds);
  EXPECT_EQ(ParseArtifactKinds("none"), 0u);
  EXPECT_EQ(ParseArtifactKinds("trace"),
            ArtifactKindBit(ArtifactKind::kTrace));
  EXPECT_EQ(ParseArtifactKinds("index,bootstrap"),
            ArtifactKindBit(ArtifactKind::kIndex) |
                ArtifactKindBit(ArtifactKind::kBootstrap));
  EXPECT_EQ(ParseArtifactKinds("trace,index,bootstrap"), kAllArtifactKinds);
  EXPECT_EQ(ParseArtifactKinds("trace,trace"),
            ArtifactKindBit(ArtifactKind::kTrace));
  EXPECT_THROW(ParseArtifactKinds("frobnicate"), std::invalid_argument);
  EXPECT_THROW(ParseArtifactKinds("trace,"), std::invalid_argument);
}

TEST_F(MultiKindTest, BodyRoundTripsPerKindUnderOneKey) {
  ArtifactCache cache = Cache();
  const std::uint64_t key = 0x1234abcd5678ef00ULL;
  const std::string index_body = "prebuilt-index-bytes";
  const std::string boot_body = "replicate-table-bytes";
  std::string diag;
  ASSERT_TRUE(cache.StoreBody(ArtifactKind::kIndex, key, index_body, &diag))
      << diag;
  ASSERT_TRUE(
      cache.StoreBody(ArtifactKind::kBootstrap, key, boot_body, &diag))
      << diag;

  // One key, one file per kind: the kinds must not collide.
  EXPECT_NE(cache.EntryPath(ArtifactKind::kIndex, key),
            cache.EntryPath(ArtifactKind::kBootstrap, key));
  EXPECT_TRUE(
      std::filesystem::exists(cache.EntryPath(ArtifactKind::kIndex, key)));
  EXPECT_TRUE(std::filesystem::exists(
      cache.EntryPath(ArtifactKind::kBootstrap, key)));

  const auto index_back =
      cache.TryLoadBody(ArtifactKind::kIndex, key, &diag);
  ASSERT_TRUE(index_back.has_value()) << diag;
  EXPECT_EQ(*index_back, index_body);
  EXPECT_EQ(diag, "hit");
  const auto boot_back =
      cache.TryLoadBody(ArtifactKind::kBootstrap, key, &diag);
  ASSERT_TRUE(boot_back.has_value()) << diag;
  EXPECT_EQ(*boot_back, boot_body);

  // Wrong kind for the key: a miss, not the other kind's bytes.
  EXPECT_FALSE(
      cache.TryLoadBody(ArtifactKind::kTrace, key, &diag).has_value());
  EXPECT_EQ(diag, "no cache entry");
}

TEST_F(MultiKindTest, DisabledKindMissesAndSkipsStores) {
  CacheConfig config = Options().cache;
  config.kinds = ArtifactKindBit(ArtifactKind::kTrace);
  ArtifactCache cache(config);
  std::string diag;
  EXPECT_FALSE(cache.StoreBody(ArtifactKind::kIndex, 42, "body", &diag));
  EXPECT_EQ(diag, "artifact kind disabled");
  EXPECT_FALSE(cache.TryLoadBody(ArtifactKind::kIndex, 42, &diag));
  EXPECT_EQ(diag, "artifact kind disabled");
  EXPECT_FALSE(
      std::filesystem::exists(cache.EntryPath(ArtifactKind::kIndex, 42)));
}

TEST_F(MultiKindTest, CorruptionMatrixCoversIndexAndBootstrapKinds) {
  for (const ArtifactKind kind :
       {ArtifactKind::kIndex, ArtifactKind::kBootstrap}) {
    SCOPED_TRACE(std::string(ToString(kind)));
    ArtifactCache cache = Cache();
    const std::uint64_t key = 99;
    const std::string path = cache.EntryPath(kind, key);
    const std::string_view tag = ArtifactTag(kind);
    const std::uint32_t schema = ArtifactSchemaVersion(kind);
    std::string diag;

    // Flipped byte: checksum failure, entry deleted.
    ASSERT_TRUE(cache.StoreBody(kind, key, "some payload", &diag)) << diag;
    {
      std::ifstream is(path, std::ios::binary);
      std::string bytes{std::istreambuf_iterator<char>(is),
                        std::istreambuf_iterator<char>()};
      bytes[bytes.size() / 2] ^= 0x5a;
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_FALSE(cache.TryLoadBody(kind, key, &diag).has_value());
    EXPECT_NE(diag.find("corrupt cache entry"), std::string::npos) << diag;
    EXPECT_FALSE(std::filesystem::exists(path)) << "bad entry not deleted";

    // Stale schema.
    ComposeKindEntry(kind, tag, schema + 1, key, key, "body");
    EXPECT_FALSE(cache.TryLoadBody(kind, key, &diag).has_value());
    EXPECT_NE(diag.find("stale cache schema"), std::string::npos) << diag;
    EXPECT_FALSE(std::filesystem::exists(path));

    // Wrong tag (another kind's entry renamed into this kind's path).
    ComposeKindEntry(kind, "HFOTHER0", schema, key, key, "body");
    EXPECT_FALSE(cache.TryLoadBody(kind, key, &diag).has_value());
    EXPECT_NE(diag.find("wrong artifact tag"), std::string::npos) << diag;
    EXPECT_FALSE(std::filesystem::exists(path));

    // Fingerprint mismatch (file renamed across keys).
    ComposeKindEntry(kind, tag, schema, key ^ 0x1, key, "body");
    EXPECT_FALSE(cache.TryLoadBody(kind, key, &diag).has_value());
    EXPECT_NE(diag.find("cache fingerprint mismatch"), std::string::npos)
        << diag;
    EXPECT_FALSE(std::filesystem::exists(path));

    // EvictCorrupt: the caller-side self-heal for undecodable bodies.
    ASSERT_TRUE(cache.StoreBody(kind, key, "undecodable", &diag)) << diag;
    cache.EvictCorrupt(kind, key, "body decode failed", &diag);
    EXPECT_NE(diag.find("body decode failed"), std::string::npos) << diag;
    EXPECT_FALSE(std::filesystem::exists(path));
  }
}

TEST_F(MultiKindTest, BudgetSweepEvictsOldestButSparesLiveKeys) {
  CacheConfig config = Options().cache;
  config.budget_bytes = 4 * 1024;
  ArtifactCache cache(config);
  std::filesystem::create_directories(cache.dir());

  // Filler entries this process never stored or hit (hand-written files
  // with valid entry names), backdated so they are the eviction order.
  std::vector<std::string> filler;
  for (int i = 0; i < 6; ++i) {
    const std::string path = cache.EntryPath(
        ArtifactKind::kIndex, 0xf111e20000ULL + static_cast<unsigned>(i));
    std::ofstream os(path, std::ios::binary);
    const std::string blob(2 * 1024, static_cast<char>('a' + i));
    os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    os.close();
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now() -
                  std::chrono::hours(1) - std::chrono::minutes(i));
    filler.push_back(path);
  }

  // The store's post-write sweep must bring the directory under budget by
  // deleting backdated filler — never the entry this process just wrote.
  std::string diag;
  ASSERT_TRUE(cache.StoreBody(ArtifactKind::kBootstrap, 7, "live", &diag))
      << diag;
  EXPECT_TRUE(std::filesystem::exists(
      cache.EntryPath(ArtifactKind::kBootstrap, 7)));
  std::uintmax_t total = 0;
  std::size_t filler_left = 0;
  for (const std::string& path : filler) {
    if (std::filesystem::exists(path)) {
      ++filler_left;
      total += std::filesystem::file_size(path);
    }
  }
  EXPECT_LT(filler_left, filler.size()) << "no filler was evicted";
  EXPECT_LE(total, config.budget_bytes);
  // Oldest-first: every survivor must be newer than every evicted file,
  // i.e. the survivors are a prefix of the (newest-first) filler order.
  for (std::size_t i = 0; i + 1 < filler.size(); ++i) {
    if (!std::filesystem::exists(filler[i])) {
      EXPECT_FALSE(std::filesystem::exists(filler[i + 1]))
          << "newer filler evicted while older filler survived";
    }
  }
}

TEST_F(MultiKindTest, StoreSweepsStaleOrphanTmpFiles) {
  ArtifactCache cache = Cache();
  std::filesystem::create_directories(cache.dir());
  const std::string stale = cache.dir() + "/trace-deadbeef.bin.tmp.999.1";
  const std::string fresh = cache.dir() + "/trace-deadbeef.bin.tmp.999.2";
  { std::ofstream(stale) << "half-written"; }
  { std::ofstream(fresh) << "in-flight"; }
  std::filesystem::last_write_time(
      stale, std::filesystem::file_time_type::clock::now() -
                 std::chrono::hours(2));

  std::string diag;
  ASSERT_TRUE(cache.StoreBody(ArtifactKind::kIndex, 5, "body", &diag))
      << diag;
  EXPECT_FALSE(std::filesystem::exists(stale))
      << "crashed writer's tmp not reclaimed";
  EXPECT_TRUE(std::filesystem::exists(fresh))
      << "a possibly-live tmp was deleted";
}

TEST_F(MultiKindTest, UnwritableDirFailsStoreWithoutTmpResidue) {
  // Point the cache at a path that cannot be a directory (it is a file):
  // the store must fail as a warning and leave nothing behind.
  const std::string blocker = dir_ + ".blocker";
  { std::ofstream(blocker) << "x"; }
  CacheConfig config = Options().cache;
  config.dir = blocker;
  ArtifactCache cache(config);
  std::string diag;
  EXPECT_FALSE(cache.StoreBody(ArtifactKind::kIndex, 1, "body", &diag));
  EXPECT_FALSE(diag.empty());
  EXPECT_TRUE(std::filesystem::is_regular_file(blocker));
  std::filesystem::remove(blocker);
}

// ---- Index snapshots through the session: a warm session restores the
// prebuilt columns and answers identically to the cold build.

TEST_F(EngineCacheTest, WarmSessionRestoresIndexSnapshot) {
  const AnalysisSession cold = MakeSession();
  ASSERT_FALSE(cold.stats().index_cache_hit);
  ASSERT_TRUE(cold.stats().index_cache_stored)
      << cold.stats().index_diagnostic;

  const AnalysisSession warm = MakeSession();
  EXPECT_TRUE(warm.stats().cache_hit);
  EXPECT_TRUE(warm.stats().index_cache_hit) << warm.stats().index_diagnostic;
  EXPECT_EQ(warm.stats().index_diagnostic, "hit");

  const WindowAnalyzer a(cold.index());
  const WindowAnalyzer b(warm.index());
  const EventFilter any = EventFilter::Any();
  for (const Scope scope :
       {Scope::kSameNode, Scope::kRackPeers, Scope::kSystemPeers}) {
    for (const TimeSec window : {kDay, kWeek, kMonth}) {
      SCOPED_TRACE(std::string(ToString(scope)) + " window=" +
                   std::to_string(window));
      ExpectSameResult(a.Compare(any, any, scope, window),
                       b.Compare(any, any, scope, window));
    }
  }
}

TEST_F(EngineCacheTest, IndexKindDisabledFallsBackToColumnBuild) {
  const AnalysisSession prime = MakeSession();
  ASSERT_TRUE(prime.stats().index_cache_stored);

  SessionOptions o = Options();
  o.cache.kinds = ArtifactKindBit(ArtifactKind::kTrace);
  const AnalysisSession s =
      AnalysisSession::FromScenario(synth::TinyScenario(), 7, o);
  EXPECT_TRUE(s.stats().cache_hit);  // trace kind still serves
  EXPECT_FALSE(s.stats().index_cache_hit);
  EXPECT_EQ(s.stats().index_diagnostic, "artifact kind disabled");
}

TEST_F(EngineCacheTest, CorruptIndexSnapshotSelfHealsToBuild) {
  const AnalysisSession prime = MakeSession();
  ASSERT_TRUE(prime.stats().index_cache_stored);
  ArtifactCache cache(Options().cache);
  const std::string path =
      cache.EntryPath(ArtifactKind::kIndex, *prime.stats().fingerprint);
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    std::ifstream is(path, std::ios::binary);
    std::string bytes{std::istreambuf_iterator<char>(is),
                      std::istreambuf_iterator<char>()};
    bytes[bytes.size() - 1] ^= 0x1;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const AnalysisSession healed = MakeSession();
  EXPECT_FALSE(healed.stats().index_cache_hit);
  EXPECT_TRUE(healed.stats().index_cache_stored)
      << healed.stats().index_diagnostic;
  const AnalysisSession warm = MakeSession();
  EXPECT_TRUE(warm.stats().index_cache_hit) << warm.stats().index_diagnostic;
}

TEST(KeyedMutexTest, DistinctKeysDoNotContend) {
  KeyedMutex& km = KeyedMutex::Global();
  auto g1 = km.Lock(101);
  auto g2 = km.Lock(102);  // must not block on g1
  EXPECT_FALSE(g1.waited());
  EXPECT_FALSE(g2.waited());
  EXPECT_EQ(km.live_keys(), 2u);
}

TEST(KeyedMutexTest, SameKeySerializesAndReportsWaiting) {
  KeyedMutex& km = KeyedMutex::Global();
  std::atomic<bool> waited{false};
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      auto guard = km.Lock(777);
      const int now = ++concurrent;
      int expected = max_concurrent.load();
      while (now > expected &&
             !max_concurrent.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (guard.waited()) waited.store(true);
      --concurrent;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(max_concurrent.load(), 1) << "keyed mutex must serialize";
  EXPECT_TRUE(waited.load()) << "at least one thread should have contended";
  EXPECT_EQ(km.live_keys(), 0u) << "entries are reclaimed at last unlock";
}

}  // namespace
}  // namespace hpcfail::engine
