// The artifact cache's contract: a warm load is bit-identical to a cold
// acquisition, and every way an entry can be unusable (truncation, flipped
// bytes, stale schema, wrong key, wrong artifact kind) degrades to a miss
// with a distinct diagnostic, deletes the bad entry, and regenerates —
// the cache can cost a rebuild, never a wrong answer.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/window_analysis.h"
#include "engine/session.h"
#include "engine/single_flight.h"
#include "engine/trace_cache.h"
#include "synth/generate.h"
#include "synth/scenario.h"

namespace hpcfail::engine {
namespace {

using core::ConditionalResult;
using core::EventFilter;
using core::Scope;
using core::WindowAnalyzer;

class EngineCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/hpcfail_cache_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  SessionOptions Options() const {
    SessionOptions o;
    o.cache.dir = dir_;
    return o;
  }

  AnalysisSession MakeSession(std::uint64_t seed = 7) const {
    return AnalysisSession::FromScenario(synth::TinyScenario(), seed,
                                         Options());
  }

  std::string EntryPathOf(const AnalysisSession& s) const {
    ArtifactCache cache(Options().cache);
    return cache.EntryPath(*s.stats().fingerprint);
  }

  std::string dir_;
};

void ExpectSameResult(const ConditionalResult& a, const ConditionalResult& b) {
  EXPECT_EQ(a.conditional.successes, b.conditional.successes);
  EXPECT_EQ(a.conditional.trials, b.conditional.trials);
  EXPECT_EQ(a.conditional.estimate, b.conditional.estimate);
  EXPECT_EQ(a.conditional.ci_low, b.conditional.ci_low);
  EXPECT_EQ(a.conditional.ci_high, b.conditional.ci_high);
  EXPECT_EQ(a.baseline.successes, b.baseline.successes);
  EXPECT_EQ(a.baseline.trials, b.baseline.trials);
  EXPECT_EQ(a.baseline.estimate, b.baseline.estimate);
  EXPECT_TRUE(a.factor == b.factor ||
              (std::isnan(a.factor) && std::isnan(b.factor)));
  EXPECT_EQ(a.test.z, b.test.z);
  EXPECT_EQ(a.test.p_value, b.test.p_value);
  EXPECT_EQ(a.num_triggers, b.num_triggers);
}

void ExpectSameTrace(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.systems().size(), b.systems().size());
  for (std::size_t i = 0; i < a.systems().size(); ++i) {
    const SystemConfig& x = a.systems()[i];
    const SystemConfig& y = b.systems()[i];
    EXPECT_EQ(x.id.value, y.id.value);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.group, y.group);
    EXPECT_EQ(x.num_nodes, y.num_nodes);
    EXPECT_EQ(x.procs_per_node, y.procs_per_node);
    EXPECT_EQ(x.observed.begin, y.observed.begin);
    EXPECT_EQ(x.observed.end, y.observed.end);
    ASSERT_EQ(x.layout.placements().size(), y.layout.placements().size());
    for (std::size_t p = 0; p < x.layout.placements().size(); ++p) {
      EXPECT_EQ(x.layout.placements()[p].rack.value,
                y.layout.placements()[p].rack.value);
      EXPECT_EQ(x.layout.placements()[p].position_in_rack,
                y.layout.placements()[p].position_in_rack);
    }
  }
  ASSERT_EQ(a.failures().size(), b.failures().size());
  for (std::size_t i = 0; i < a.failures().size(); ++i) {
    const FailureRecord& x = a.failures()[i];
    const FailureRecord& y = b.failures()[i];
    EXPECT_EQ(x.system.value, y.system.value);
    EXPECT_EQ(x.node.value, y.node.value);
    EXPECT_EQ(x.start, y.start);
    EXPECT_EQ(x.end, y.end);
    EXPECT_EQ(x.category, y.category);
    EXPECT_EQ(x.hardware, y.hardware);
    EXPECT_EQ(x.software, y.software);
    EXPECT_EQ(x.environment, y.environment);
  }
  ASSERT_EQ(a.maintenance().size(), b.maintenance().size());
  ASSERT_EQ(a.jobs().size(), b.jobs().size());
  for (std::size_t i = 0; i < a.jobs().size(); ++i) {
    EXPECT_EQ(a.jobs()[i].user.value, b.jobs()[i].user.value);
    EXPECT_EQ(a.jobs()[i].nodes.size(), b.jobs()[i].nodes.size());
    EXPECT_EQ(a.jobs()[i].killed_by_node_failure,
              b.jobs()[i].killed_by_node_failure);
  }
  ASSERT_EQ(a.temperatures().size(), b.temperatures().size());
  for (std::size_t i = 0; i < a.temperatures().size(); ++i) {
    EXPECT_EQ(a.temperatures()[i].time, b.temperatures()[i].time);
    EXPECT_EQ(a.temperatures()[i].celsius, b.temperatures()[i].celsius);
  }
  ASSERT_EQ(a.neutron_series().size(), b.neutron_series().size());
}

TEST_F(EngineCacheTest, WarmLoadIsBitIdenticalToColdAcquire) {
  const AnalysisSession cold = MakeSession();
  ASSERT_FALSE(cold.stats().cache_hit);
  ASSERT_TRUE(cold.stats().cache_stored);

  const AnalysisSession warm = MakeSession();
  ASSERT_TRUE(warm.stats().cache_hit);
  EXPECT_EQ(warm.stats().cache_diagnostic, "hit");

  ExpectSameTrace(cold.trace(), warm.trace());

  // The headline analyses must agree bit-for-bit across every scope and
  // window length — the cache may change timing, never results.
  const WindowAnalyzer a(cold.index());
  const WindowAnalyzer b(warm.index());
  const EventFilter any = EventFilter::Any();
  for (const Scope scope :
       {Scope::kSameNode, Scope::kRackPeers, Scope::kSystemPeers}) {
    for (const TimeSec window : {kDay, kWeek, kMonth}) {
      SCOPED_TRACE(std::string(ToString(scope)) + " window=" +
                   std::to_string(window));
      ExpectSameResult(a.Compare(any, any, scope, window),
                       b.Compare(any, any, scope, window));
    }
  }
}

TEST_F(EngineCacheTest, DistinctSeedsGetDistinctEntries) {
  const AnalysisSession s7 = MakeSession(7);
  const AnalysisSession s8 = MakeSession(8);
  EXPECT_NE(*s7.stats().fingerprint, *s8.stats().fingerprint);
  EXPECT_FALSE(s8.stats().cache_hit);  // not served seed 7's trace
  EXPECT_TRUE(std::filesystem::exists(EntryPathOf(s7)));
  EXPECT_TRUE(std::filesystem::exists(EntryPathOf(s8)));
}

TEST_F(EngineCacheTest, NoCacheBypassesLoadAndStore) {
  SessionOptions o = Options();
  o.cache.enabled = false;
  const AnalysisSession s =
      AnalysisSession::FromScenario(synth::TinyScenario(), 7, o);
  EXPECT_FALSE(s.stats().cache_enabled);
  EXPECT_FALSE(s.stats().cache_hit);
  EXPECT_FALSE(s.stats().cache_stored);
  EXPECT_EQ(s.stats().cache_diagnostic, "cache disabled");
  EXPECT_FALSE(std::filesystem::exists(dir_));

  // And the trace is identical to a cached acquisition of the same seed.
  const AnalysisSession cached = MakeSession(7);
  ExpectSameTrace(s.trace(), cached.trace());
}

// ---- Corruption matrix. Every case: distinct diagnostic, entry deleted,
// next session silently regenerates (and re-stores a good entry).

class CorruptionTest : public EngineCacheTest {
 protected:
  // Populates the cache and returns the entry path + fingerprint.
  void Prime() {
    const AnalysisSession s = MakeSession();
    ASSERT_TRUE(s.stats().cache_stored);
    fingerprint_ = *s.stats().fingerprint;
    path_ = EntryPathOf(s);
    ASSERT_TRUE(std::filesystem::exists(path_));
  }

  std::string ReadEntry() const {
    std::ifstream is(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
  }

  void WriteEntry(const std::string& bytes) const {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Writes a hand-composed entry with the given tag/schema/key around the
  // real trace payload for `fingerprint_`'s scenario.
  void ComposeEntry(std::string_view tag, std::uint32_t schema,
                    std::uint64_t stored_key) const {
    const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 7);
    stream::snapshot::Writer w;
    w.PutString(tag);
    w.PutU32(schema);
    w.PutU64(stored_key);
    SerializeTrace(trace, &w);
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    stream::snapshot::WriteEnvelope(os, w.payload());
  }

  // The corrupted entry must (a) miss with `expect_diagnostic`, (b) be
  // deleted, and (c) leave the session fully functional via regeneration.
  void ExpectMissAndSelfHeal(const std::string& expect_diagnostic) {
    ArtifactCache cache(Options().cache);
    std::string diagnostic;
    EXPECT_FALSE(cache.TryLoad(fingerprint_, &diagnostic).has_value());
    EXPECT_NE(diagnostic.find(expect_diagnostic), std::string::npos)
        << "actual diagnostic: " << diagnostic;
    EXPECT_FALSE(std::filesystem::exists(path_)) << "bad entry not deleted";

    // Silent fallback: the session regenerates, matches the pristine trace,
    // and re-stores a loadable entry.
    const AnalysisSession regen = MakeSession();
    EXPECT_FALSE(regen.stats().cache_hit);
    EXPECT_TRUE(regen.stats().cache_stored);
    ExpectSameTrace(regen.trace(),
                    AnalysisSession::FromScenario(synth::TinyScenario(), 7,
                                                  Options())
                        .trace());
    const AnalysisSession warm = MakeSession();
    EXPECT_TRUE(warm.stats().cache_hit);
  }

  std::uint64_t fingerprint_ = 0;
  std::string path_;
};

TEST_F(CorruptionTest, TruncatedFile) {
  Prime();
  const std::string bytes = ReadEntry();
  WriteEntry(bytes.substr(0, bytes.size() / 2));
  ExpectMissAndSelfHeal("corrupt cache entry");
}

TEST_F(CorruptionTest, FlippedByteFailsChecksum) {
  Prime();
  std::string bytes = ReadEntry();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x5a);
  WriteEntry(bytes);
  ExpectMissAndSelfHeal("corrupt cache entry");
}

TEST_F(CorruptionTest, StaleSchemaVersion) {
  Prime();
  ComposeEntry("HFTRACE0", kTraceSchemaVersion + 1, fingerprint_);
  ExpectMissAndSelfHeal("stale cache schema");
}

TEST_F(CorruptionTest, MismatchedFingerprint) {
  Prime();
  ComposeEntry("HFTRACE0", kTraceSchemaVersion, fingerprint_ ^ 0x1);
  ExpectMissAndSelfHeal("cache fingerprint mismatch");
}

TEST_F(CorruptionTest, WrongArtifactTag) {
  Prime();
  ComposeEntry("HFOTHER0", kTraceSchemaVersion, fingerprint_);
  ExpectMissAndSelfHeal("wrong artifact tag");
}

TEST_F(CorruptionTest, DiagnosticsAreDistinct) {
  // The four mandated corruption classes must be tellable apart from the
  // diagnostic alone (an operator debugging a cache should not guess).
  Prime();
  const std::string bytes = ReadEntry();
  std::vector<std::string> diagnostics;

  WriteEntry(bytes.substr(0, 16));  // truncated
  ArtifactCache cache(Options().cache);
  std::string d;
  cache.TryLoad(fingerprint_, &d);
  diagnostics.push_back(d);

  std::string flipped = bytes;
  flipped[flipped.size() - 4] ^= 0x77;  // checksum region
  WriteEntry(flipped);
  cache.TryLoad(fingerprint_, &d);
  diagnostics.push_back(d);

  ComposeEntry("HFTRACE0", kTraceSchemaVersion + 9, fingerprint_);
  cache.TryLoad(fingerprint_, &d);
  diagnostics.push_back(d);

  ComposeEntry("HFTRACE0", kTraceSchemaVersion, ~fingerprint_);
  cache.TryLoad(fingerprint_, &d);
  diagnostics.push_back(d);

  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    EXPECT_FALSE(diagnostics[i].empty());
    for (std::size_t j = i + 1; j < diagnostics.size(); ++j) {
      EXPECT_NE(diagnostics[i], diagnostics[j])
          << "cases " << i << " and " << j << " are indistinguishable";
    }
  }
}

TEST_F(EngineCacheTest, SerializeRoundTripsThroughReader) {
  const Trace trace = synth::GenerateTrace(synth::TinyScenario(), 3);
  stream::snapshot::Writer w;
  SerializeTrace(trace, &w);
  stream::snapshot::Reader r(w.payload());
  const Trace back = DeserializeTrace(&r);
  EXPECT_TRUE(r.AtEnd());
  ExpectSameTrace(trace, back);
}

// ---- Single-flight: concurrent sessions for one fingerprint -------------
//
// Before engine/single_flight.h, N threads cold-starting the same scenario
// all missed the cache and ran N acquisitions, racing their tmp+rename
// stores. The KeyedMutex serializes per fingerprint: exactly one thread
// acquires and stores; everyone who waited loads the stored entry ("hit").

TEST_F(EngineCacheTest, ConcurrentColdStartsBuildOnce) {
  constexpr int kThreads = 6;
  std::vector<std::unique_ptr<AnalysisSession>> sessions(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      sessions[static_cast<std::size_t>(i)] =
          std::make_unique<AnalysisSession>(MakeSession());
    });
  }
  for (auto& t : threads) t.join();

  int stored = 0;
  int hits = 0;
  for (const auto& session : sessions) {
    ASSERT_NE(session, nullptr);
    if (session->stats().cache_stored) ++stored;
    if (session->stats().cache_hit) {
      ++hits;
      EXPECT_EQ(session->stats().cache_diagnostic, "hit");
    }
  }
  EXPECT_EQ(stored, 1) << "exactly one thread may run the acquisition";
  EXPECT_EQ(hits, kThreads - 1) << "every waiter must load the stored entry";

  // All traces are the same bytes regardless of who built.
  for (int i = 1; i < kThreads; ++i) {
    ExpectSameTrace(sessions[0]->trace(),
                    sessions[static_cast<std::size_t>(i)]->trace());
  }

  // One entry file; the keyed-mutex table is empty again.
  EXPECT_TRUE(std::filesystem::exists(EntryPathOf(*sessions[0])));
  EXPECT_EQ(KeyedMutex::Global().live_keys(), 0u);
}

TEST(KeyedMutexTest, DistinctKeysDoNotContend) {
  KeyedMutex& km = KeyedMutex::Global();
  auto g1 = km.Lock(101);
  auto g2 = km.Lock(102);  // must not block on g1
  EXPECT_FALSE(g1.waited());
  EXPECT_FALSE(g2.waited());
  EXPECT_EQ(km.live_keys(), 2u);
}

TEST(KeyedMutexTest, SameKeySerializesAndReportsWaiting) {
  KeyedMutex& km = KeyedMutex::Global();
  std::atomic<bool> waited{false};
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      auto guard = km.Lock(777);
      const int now = ++concurrent;
      int expected = max_concurrent.load();
      while (now > expected &&
             !max_concurrent.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      if (guard.waited()) waited.store(true);
      --concurrent;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(max_concurrent.load(), 1) << "keyed mutex must serialize";
  EXPECT_TRUE(waited.load()) << "at least one thread should have contended";
  EXPECT_EQ(km.live_keys(), 0u) << "entries are reclaimed at last unlock";
}

}  // namespace
}  // namespace hpcfail::engine
