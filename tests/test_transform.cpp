#include "trace/transform.h"

#include <gtest/gtest.h>

#include "synth/generate.h"

namespace hpcfail {
namespace {

Trace SampleTrace() { return synth::GenerateTrace(synth::TinyScenario(), 5); }

TEST(SliceTrace, KeepsOnlyWindowedRecords) {
  const Trace t = SampleTrace();
  const TimeInterval window{30 * kDay, 90 * kDay};
  const Trace sliced = SliceTrace(t, window);
  ASSERT_EQ(sliced.systems().size(), 1u);
  EXPECT_EQ(sliced.systems()[0].observed, window);
  long long expected = 0;
  for (const FailureRecord& f : t.failures()) {
    if (window.contains(f.start)) ++expected;
  }
  EXPECT_EQ(static_cast<long long>(sliced.num_failures()), expected);
  for (const FailureRecord& f : sliced.failures()) {
    EXPECT_TRUE(window.contains(f.start));
  }
  for (const JobRecord& j : sliced.jobs()) {
    EXPECT_TRUE(window.contains(j.dispatch));
  }
}

TEST(SliceTrace, TimesStayAbsolute) {
  const Trace t = SampleTrace();
  const Trace sliced = SliceTrace(t, {30 * kDay, 90 * kDay});
  ASSERT_FALSE(sliced.failures().empty());
  EXPECT_GE(sliced.failures().front().start, 30 * kDay);
}

TEST(SliceTrace, NonOverlappingSystemsDropped) {
  const Trace t = SampleTrace();  // observed [0, 180d)
  const Trace sliced = SliceTrace(t, {200 * kDay, 300 * kDay});
  EXPECT_TRUE(sliced.systems().empty());
  EXPECT_EQ(sliced.num_failures(), 0u);
}

TEST(SliceTrace, RejectsInvalidWindow) {
  const Trace t = SampleTrace();
  EXPECT_THROW(SliceTrace(t, {10, 10}), std::invalid_argument);
  EXPECT_THROW(SliceTrace(t, {20, 10}), std::invalid_argument);
}

TEST(SliceTrace, SplitsPartitionTheTrace) {
  // Train/test split property: the two halves partition every stream.
  const Trace t = SampleTrace();
  const TimeSec mid = 90 * kDay;
  const Trace train = SliceTrace(t, {0, mid});
  const Trace test = SliceTrace(t, {mid, 180 * kDay});
  EXPECT_EQ(train.num_failures() + test.num_failures(), t.num_failures());
  EXPECT_EQ(train.jobs().size() + test.jobs().size(), t.jobs().size());
  EXPECT_EQ(train.temperatures().size() + test.temperatures().size(),
            t.temperatures().size());
}

TEST(FilterSystems, KeepsRequestedSystemsOnly) {
  const Trace t =
      synth::GenerateTrace(synth::LanlLikeScenario(0.05, 60 * kDay), 6);
  const std::vector<SystemId> want = {SystemId{0}, SystemId{7}};
  const Trace filtered = FilterSystems(t, want);
  EXPECT_EQ(filtered.systems().size(), 2u);
  for (const FailureRecord& f : filtered.failures()) {
    EXPECT_TRUE(f.system == SystemId{0} || f.system == SystemId{7});
  }
  EXPECT_EQ(filtered.FailuresOfSystem(SystemId{0}).size(),
            t.FailuresOfSystem(SystemId{0}).size());
  EXPECT_FALSE(filtered.neutron_series().empty());
}

TEST(FilterSystems, UnknownSystemThrows) {
  const Trace t = SampleTrace();
  const std::vector<SystemId> want = {SystemId{99}};
  EXPECT_THROW(FilterSystems(t, want), std::out_of_range);
}

TEST(MergeTraces, CombinesDisjointSystems) {
  synth::Scenario a;
  a.duration = 60 * kDay;
  a.systems.push_back(synth::Group1System("a", 16, 60 * kDay));
  synth::Scenario b = a;
  b.systems[0].name = "b";
  const Trace ta = synth::GenerateTrace(a, 1);
  Trace tb_raw = synth::GenerateTrace(b, 2);
  // Renumber tb's system to avoid the id collision.
  Trace tb;
  SystemConfig cfg = tb_raw.systems()[0];
  cfg.id = SystemId{1};
  tb.AddSystem(cfg);
  for (FailureRecord f : tb_raw.failures()) {
    f.system = SystemId{1};
    tb.AddFailure(std::move(f));
  }
  tb.Finalize();

  const Trace merged = MergeTraces(ta, tb);
  EXPECT_EQ(merged.systems().size(), 2u);
  EXPECT_EQ(merged.num_failures(),
            ta.num_failures() + tb.num_failures());
  EXPECT_EQ(merged.FailuresOfSystem(SystemId{1}).size(),
            tb.num_failures());
}

TEST(MergeTraces, RejectsDuplicateSystemIds) {
  const Trace a = SampleTrace();
  const Trace b = SampleTrace();
  EXPECT_THROW(MergeTraces(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace hpcfail
