// SessionPool's concurrency contract: single-flight builds (N concurrent
// acquires of one key run ONE build), LRU eviction bounded by capacity,
// deadline-aware waiters, and failure propagation to every waiter of the
// failed round — after which the key is buildable again. The pooled value
// is a PooledEntry (monolithic session OR sharded SessionSet); both kinds
// share the same pool mechanics.
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/session.h"
#include "engine/session_set.h"
#include "serve/session_pool.h"
#include "synth/scenario.h"

namespace hpcfail::serve {
namespace {

// Builds are real (tiny) sessions: the pool's value type is immovable from
// the test's perspective, so there is no cheaper stand-in to construct.
PooledEntry BuildTiny(std::uint64_t seed) {
  engine::SessionOptions options;
  options.cache.enabled = false;
  return MakeSessionEntry(engine::AnalysisSession::FromScenario(
      synth::TinyScenario(90 * kDay), seed, options));
}

PooledEntry BuildTinySet(std::uint64_t seed) {
  engine::SessionSetOptions options;
  options.cache.enabled = false;
  options.shard.systems_per_block = 1;
  return MakeSetEntry(std::make_shared<engine::SessionSet>(
      engine::MakeScenarioSource(synth::TinyScenario(90 * kDay), seed),
      std::move(options)));
}

TEST(SessionPool, HitAfterBuild) {
  SessionPool pool({4});
  const auto first = pool.Acquire(1, [] { return BuildTiny(1); });
  EXPECT_EQ(first.outcome, SessionPool::Outcome::kBuilt);
  ASSERT_NE(first.entry.session, nullptr);

  const auto second = pool.Acquire(1, [] {
    ADD_FAILURE() << "hit must not rebuild";
    return BuildTiny(1);
  });
  EXPECT_EQ(second.outcome, SessionPool::Outcome::kHit);
  EXPECT_EQ(second.entry.session.get(), first.entry.session.get());

  const auto s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.resident, 1u);
}

TEST(SessionPool, SetEntriesPoolLikeSessions) {
  SessionPool pool({4});
  const auto built = pool.Acquire(5, [] { return BuildTinySet(5); });
  EXPECT_EQ(built.outcome, SessionPool::Outcome::kBuilt);
  EXPECT_EQ(built.entry.session, nullptr);
  ASSERT_NE(built.entry.set, nullptr);
  EXPECT_TRUE(built.entry.ready());
  EXPECT_GT(built.entry.set->plan().num_shards(), 0u);

  // A hit returns the same SessionSet; shard state accumulated by one
  // request (built shards) is visible to the next.
  (void)built.entry.set->GetShard({0, 0});
  const auto hit = pool.Acquire(5, [] {
    ADD_FAILURE() << "hit must not rebuild";
    return BuildTinySet(5);
  });
  EXPECT_EQ(hit.outcome, SessionPool::Outcome::kHit);
  ASSERT_EQ(hit.entry.set.get(), built.entry.set.get());
  EXPECT_NE(hit.entry.set->FindResident({0, 0}), nullptr);

  // Session and set entries coexist under distinct keys.
  const auto mono = pool.Acquire(6, [] { return BuildTiny(6); });
  EXPECT_NE(mono.entry.session, nullptr);
  EXPECT_EQ(mono.entry.set, nullptr);
  EXPECT_EQ(pool.stats().resident, 2u);
}

TEST(SessionPool, ConcurrentAcquiresRunOneBuild) {
  SessionPool pool({4});
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const engine::AnalysisSession>> got(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const auto acquired = pool.Acquire(42, [&] {
        ++builds;
        // Widen the race window so waiters really coalesce.
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return BuildTiny(42);
      });
      got[static_cast<std::size_t>(i)] = acquired.entry.session;
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(builds.load(), 1);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].get(), got[0].get());
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits + s.build_waits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(SessionPool, LruEvictionIsBoundedAndOrdered) {
  SessionPool pool({2});
  (void)pool.Acquire(1, [] { return BuildTiny(1); });
  (void)pool.Acquire(2, [] { return BuildTiny(2); });
  // Touch 1 so 2 becomes the LRU victim.
  (void)pool.Acquire(1, [] { return BuildTiny(1); });
  (void)pool.Acquire(3, [] { return BuildTiny(3); });  // evicts 2

  EXPECT_EQ(pool.stats().resident, 2u);
  EXPECT_EQ(pool.stats().evictions, 1u);

  // 1 survived; 2 is gone and rebuilds.
  EXPECT_EQ(pool.Acquire(1, [] { return BuildTiny(1); }).outcome,
            SessionPool::Outcome::kHit);
  EXPECT_EQ(pool.Acquire(2, [] { return BuildTiny(2); }).outcome,
            SessionPool::Outcome::kBuilt);
  EXPECT_EQ(pool.stats().resident, 2u);
}

TEST(SessionPool, EvictedSessionSurvivesWhileReferenced) {
  SessionPool pool({1});
  const auto held = pool.Acquire(1, [] { return BuildTiny(1); });
  (void)pool.Acquire(2, [] { return BuildTiny(2); });  // evicts key 1
  EXPECT_EQ(pool.stats().evictions, 1u);
  // The shared_ptr keeps the evicted session alive and usable.
  ASSERT_NE(held.entry.session, nullptr);
  EXPECT_GT(held.entry.session->trace().systems().size(), 0u);
}

TEST(SessionPool, WaiterDeadlineExpiresToTimedOut) {
  SessionPool pool({2});
  std::atomic<bool> release{false};
  std::thread builder([&] {
    (void)pool.Acquire(7, [&] {
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      return BuildTiny(7);
    });
  });
  // Wait until the build is registered as in flight.
  while (pool.stats().building == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto waited = pool.Acquire(
      7, [] { return BuildTiny(7); }, Deadline::AfterMillis(30));
  EXPECT_EQ(waited.outcome, SessionPool::Outcome::kTimedOut);
  EXPECT_FALSE(waited.entry.ready());
  EXPECT_EQ(waited.entry.session, nullptr);
  EXPECT_EQ(pool.stats().timeouts, 1u);

  release.store(true);
  builder.join();
  // The abandoned build still published: the next acquire is a hit.
  EXPECT_EQ(pool.Acquire(7, [] { return BuildTiny(7); }).outcome,
            SessionPool::Outcome::kHit);
}

TEST(SessionPool, BuildFailurePropagatesThenKeyRecovers) {
  SessionPool pool({2});
  std::atomic<bool> waiter_started{false};
  std::atomic<bool> waiter_threw{false};
  std::thread builder([&] {
    EXPECT_THROW(pool.Acquire(9,
                              [&]() -> PooledEntry {
                                while (!waiter_started.load()) {
                                  std::this_thread::sleep_for(
                                      std::chrono::milliseconds(1));
                                }
                                std::this_thread::sleep_for(
                                    std::chrono::milliseconds(10));
                                throw std::runtime_error("synthetic failure");
                              }),
                 std::runtime_error);
  });
  while (pool.stats().building == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread waiter([&] {
    waiter_started.store(true);
    try {
      (void)pool.Acquire(9, [] { return BuildTiny(9); });
    } catch (const std::runtime_error& e) {
      waiter_threw.store(true);
      EXPECT_NE(std::string(e.what()).find("synthetic failure"),
                std::string::npos);
    }
  });
  builder.join();
  waiter.join();
  EXPECT_TRUE(waiter_threw.load());
  EXPECT_EQ(pool.stats().build_failures, 1u);

  // The failed key is buildable again, not poisoned.
  EXPECT_EQ(pool.Acquire(9, [] { return BuildTiny(9); }).outcome,
            SessionPool::Outcome::kBuilt);
}

TEST(SessionPool, EmptyEntryIsABuildFailure) {
  SessionPool pool({2});
  EXPECT_THROW((void)pool.Acquire(13, [] { return PooledEntry{}; }),
               std::runtime_error);
  EXPECT_EQ(pool.stats().build_failures, 1u);
  // The key is buildable again afterwards.
  EXPECT_EQ(pool.Acquire(13, [] { return BuildTiny(13); }).outcome,
            SessionPool::Outcome::kBuilt);
}

TEST(SessionPool, NonStdExceptionReleasesWaitersAndRecovers) {
  SessionPool pool({2});
  std::atomic<bool> waiter_started{false};
  std::atomic<bool> waiter_threw{false};
  std::thread builder([&] {
    try {
      (void)pool.Acquire(11, [&]() -> PooledEntry {
        while (!waiter_started.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        throw 42;  // not derived from std::exception
      });
      ADD_FAILURE() << "non-std exception must propagate to the builder";
    } catch (int e) {
      EXPECT_EQ(e, 42);
    }
  });
  while (pool.stats().building == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Unlimited deadline: without catch(...) cleanup in Acquire this waiter
  // would block forever on a flight that never completes.
  std::thread waiter([&] {
    waiter_started.store(true);
    try {
      (void)pool.Acquire(11, [] { return BuildTiny(11); });
    } catch (const std::runtime_error&) {
      waiter_threw.store(true);
    }
  });
  builder.join();
  waiter.join();
  EXPECT_TRUE(waiter_threw.load());
  EXPECT_EQ(pool.stats().build_failures, 1u);

  // The failed key is buildable again, not wedged as "building".
  EXPECT_EQ(pool.Acquire(11, [] { return BuildTiny(11); }).outcome,
            SessionPool::Outcome::kBuilt);
}

TEST(SessionPool, ClearDropsReadyEntries) {
  SessionPool pool({4});
  (void)pool.Acquire(1, [] { return BuildTiny(1); });
  (void)pool.Acquire(2, [] { return BuildTinySet(2); });
  EXPECT_EQ(pool.stats().resident, 2u);
  pool.Clear();
  EXPECT_EQ(pool.stats().resident, 0u);
  EXPECT_EQ(pool.Acquire(1, [] { return BuildTiny(1); }).outcome,
            SessionPool::Outcome::kBuilt);
}

TEST(SessionPool, ZeroCapacityRejected) {
  EXPECT_THROW(SessionPool pool({0}), std::invalid_argument);
}

}  // namespace
}  // namespace hpcfail::serve
