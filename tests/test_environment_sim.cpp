#include "synth/environment_sim.h"

#include <gtest/gtest.h>

namespace hpcfail::synth {
namespace {

SystemScenario TempScenario() {
  SystemScenario s = Group1System("t", 8, 30 * kDay);
  s.temperature.enabled = true;
  s.temperature.sample_interval = kHour;
  return s;
}

TEST(TemperatureSim, DisabledProducesNothing) {
  SystemScenario s = Group1System("t", 8, 30 * kDay);
  stats::Rng rng(1);
  EXPECT_TRUE(SimulateTemperature(s, SystemId{0}, {}, {}, rng).empty());
}

TEST(TemperatureSim, SampleCountAndFields) {
  const SystemScenario s = TempScenario();
  stats::Rng rng(2);
  const auto samples = SimulateTemperature(s, SystemId{4}, {}, {}, rng);
  EXPECT_EQ(samples.size(),
            static_cast<std::size_t>(8 * (30 * kDay / kHour)));
  for (std::size_t i = 0; i < samples.size(); i += 97) {
    EXPECT_EQ(samples[i].system, SystemId{4});
    EXPECT_GE(samples[i].node.value, 0);
    EXPECT_LT(samples[i].node.value, 8);
    EXPECT_GE(samples[i].time, 0);
    EXPECT_LT(samples[i].time, 30 * kDay);
  }
}

TEST(TemperatureSim, BaselineNearConfiguredMean) {
  const SystemScenario s = TempScenario();
  stats::Rng rng(3);
  const auto samples = SimulateTemperature(s, SystemId{0}, {}, {}, rng);
  double sum = 0.0;
  for (const TemperatureSample& t : samples) sum += t.celsius;
  EXPECT_NEAR(sum / static_cast<double>(samples.size()),
              s.temperature.baseline_mean_c, 2.0);
}

TEST(TemperatureSim, FanFailureCausesLocalExcursion) {
  const SystemScenario s = TempScenario();
  std::vector<FailureRecord> failures;
  failures.push_back(MakeHardwareFailure(SystemId{0}, NodeId{3}, 10 * kDay,
                                         10 * kDay + kHour,
                                         HardwareComponent::kFan));
  stats::Rng rng(4);
  const auto samples = SimulateTemperature(s, SystemId{0}, failures, {}, rng);
  double peak_node3 = 0.0, peak_node2 = 0.0;
  for (const TemperatureSample& t : samples) {
    if (t.time >= 10 * kDay && t.time < 10 * kDay + 6 * kHour) {
      if (t.node == NodeId{3}) peak_node3 = std::max(peak_node3, t.celsius);
      if (t.node == NodeId{2}) peak_node2 = std::max(peak_node2, t.celsius);
    }
  }
  // The failing node spikes far above its neighbor.
  EXPECT_GT(peak_node3, peak_node2 + 10.0);
  EXPECT_GT(peak_node3, kHighTempThresholdC);
}

TEST(TemperatureSim, ChillerEventWarmsWholeSystem) {
  const SystemScenario s = TempScenario();
  stats::Rng rng(5);
  const auto samples =
      SimulateTemperature(s, SystemId{0}, {}, {15 * kDay}, rng);
  double during = 0.0, before = 0.0;
  int n_during = 0, n_before = 0;
  for (const TemperatureSample& t : samples) {
    if (t.time >= 15 * kDay && t.time < 15 * kDay + 6 * kHour) {
      during += t.celsius;
      ++n_during;
    } else if (t.time >= 14 * kDay && t.time < 14 * kDay + 6 * kHour) {
      before += t.celsius;
      ++n_before;
    }
  }
  ASSERT_GT(n_during, 0);
  ASSERT_GT(n_before, 0);
  EXPECT_GT(during / n_during, before / n_before + 4.0);
}

TEST(TemperatureSim, ExcursionDecays) {
  const SystemScenario s = TempScenario();
  std::vector<FailureRecord> failures;
  failures.push_back(MakeHardwareFailure(SystemId{0}, NodeId{0}, 10 * kDay,
                                         10 * kDay + kHour,
                                         HardwareComponent::kFan));
  stats::Rng rng(6);
  const auto samples = SimulateTemperature(s, SystemId{0}, failures, {}, rng);
  // Well after excursion_duration the node is back to baseline.
  double later = 0.0;
  int n_later = 0;
  for (const TemperatureSample& t : samples) {
    if (t.node == NodeId{0} && t.time >= 12 * kDay && t.time < 13 * kDay) {
      later += t.celsius;
      ++n_later;
    }
  }
  ASSERT_GT(n_later, 0);
  EXPECT_LT(later / n_later, kHighTempThresholdC);
}

TEST(NeutronSim, SeriesLengthAndPositivity) {
  NeutronSpec spec;
  stats::Rng rng(7);
  const auto series = SimulateNeutronSeries(spec, 3 * kYear, rng);
  // One sample at every interval start strictly inside [0, duration).
  EXPECT_EQ(series.size(),
            static_cast<std::size_t>((3 * kYear + kMonth - 1) / kMonth));
  for (const NeutronSample& s : series) {
    EXPECT_GT(s.counts_per_minute, 0.0);
  }
}

TEST(NeutronSim, SolarCycleCreatesTrend) {
  NeutronSpec spec;
  spec.noise_stddev = 0.0;
  stats::Rng rng(8);
  const auto series = SimulateNeutronSeries(spec, 5 * kYear, rng);
  // Starting at the minimum of the cycle, counts must rise over the window.
  EXPECT_GT(series.back().counts_per_minute,
            series.front().counts_per_minute + 100.0);
}

TEST(CpuFluxFactors, EmptyOrZeroExponentIsFlat) {
  const auto flat = CpuFluxFactors({}, 4000.0, 2.0, kYear);
  for (double f : flat) EXPECT_DOUBLE_EQ(f, 1.0);
  NeutronSpec spec;
  stats::Rng rng(9);
  const auto series = SimulateNeutronSeries(spec, kYear, rng);
  const auto zero = CpuFluxFactors(series, 4000.0, 0.0, kYear);
  for (double f : zero) EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(CpuFluxFactors, TracksFluxMonotonically) {
  std::vector<NeutronSample> series;
  for (int m = 0; m < 12; ++m) {
    series.push_back({static_cast<TimeSec>(m) * kMonth,
                      3500.0 + 100.0 * m});
  }
  const auto factors = CpuFluxFactors(series, 4000.0, 2.0, kYear);
  // ceil(365d / 30d) = 13 months; the last has no samples and stays at 1.
  ASSERT_EQ(factors.size(), 13u);
  EXPECT_LT(factors.front(), 1.0);
  EXPECT_GT(factors[11], 1.0);
  EXPECT_DOUBLE_EQ(factors[12], 1.0);
  for (std::size_t m = 1; m < 12; ++m) {
    EXPECT_GE(factors[m], factors[m - 1]);
  }
}

TEST(CpuFluxFactors, ClampsExtremes) {
  std::vector<NeutronSample> series = {{0, 100000.0}, {kMonth, 1.0}};
  const auto factors = CpuFluxFactors(series, 4000.0, 3.0, 2 * kMonth);
  EXPECT_DOUBLE_EQ(factors[0], 3.0);
  EXPECT_DOUBLE_EQ(factors[1], 0.3);
}

}  // namespace
}  // namespace hpcfail::synth
