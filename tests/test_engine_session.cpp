// AnalysisSession is the one entry point from "inputs" to "trace + index";
// these tests pin its stats surface, the store-sharing IndexFor contract,
// and the FromCsvDir round trip.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/session.h"
#include "synth/scenario.h"
#include "trace/csv.h"

namespace hpcfail::engine {
namespace {

class EngineSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/hpcfail_session_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  SessionOptions Options() const {
    SessionOptions o;
    o.cache.dir = dir_ + "/cache";
    return o;
  }

  std::string dir_;
};

TEST_F(EngineSessionTest, FromScenarioPopulatesStats) {
  const AnalysisSession s =
      AnalysisSession::FromScenario(synth::TinyScenario(), 11, Options());
  const AnalysisSession::Stats& st = s.stats();
  EXPECT_EQ(st.source, SourceKind::kScenario);
  EXPECT_FALSE(st.label.empty());
  ASSERT_TRUE(st.fingerprint.has_value());
  EXPECT_TRUE(st.cache_enabled);
  EXPECT_GT(st.num_systems, 0u);
  EXPECT_EQ(st.num_systems, s.trace().systems().size());
  EXPECT_EQ(st.num_failures, s.trace().failures().size());
  EXPECT_GE(st.load_seconds, 0.0);
}

TEST_F(EngineSessionTest, StatsJsonCarriesEveryField) {
  const AnalysisSession s =
      AnalysisSession::FromScenario(synth::TinyScenario(), 11, Options());
  const std::string json = s.StatsJson();
  for (const char* key :
       {"\"source\":", "\"label\":", "\"fingerprint\":", "\"cache_enabled\":",
        "\"cache_hit\":", "\"cache_stored\":", "\"cache_diagnostic\":",
        "\"load_seconds\":", "\"num_systems\":", "\"num_failures\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing: "
                                                 << json;
  }
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be a single line";
  EXPECT_NE(json.find("\"source\":\"scenario\""), std::string::npos) << json;
}

TEST_F(EngineSessionTest, SameInputsAreDeterministic) {
  SessionOptions no_cache;
  no_cache.cache.enabled = false;
  const AnalysisSession a =
      AnalysisSession::FromScenario(synth::TinyScenario(), 5, no_cache);
  const AnalysisSession b =
      AnalysisSession::FromScenario(synth::TinyScenario(), 5, no_cache);
  EXPECT_EQ(*a.stats().fingerprint, *b.stats().fingerprint);
  ASSERT_EQ(a.trace().failures().size(), b.trace().failures().size());
  EXPECT_EQ(a.trace().failures(), b.trace().failures());
}

TEST_F(EngineSessionTest, IndexCoversAllSystems) {
  const AnalysisSession s =
      AnalysisSession::FromScenario(synth::TinyScenario(), 11, Options());
  EXPECT_EQ(s.index().systems().size(), s.trace().systems().size());
  std::size_t indexed = 0;
  for (const SystemConfig& sys : s.trace().systems()) {
    indexed += s.index().failures_of(sys.id).size();
  }
  EXPECT_EQ(indexed, s.trace().failures().size());
}

TEST_F(EngineSessionTest, IndexForMakesSubsetViewsOverSharedStores) {
  const AnalysisSession s =
      AnalysisSession::FromScenario(synth::TinyScenario(), 11, Options());
  ASSERT_FALSE(s.trace().systems().empty());
  const SystemId first = s.trace().systems().front().id;

  const std::vector<SystemId> subset = {first};
  const core::EventIndex view = s.IndexFor(subset);
  ASSERT_EQ(view.systems().size(), 1u);
  EXPECT_EQ(view.systems().front().value, first.value);

  // The subset view serves the same per-system data as the full index —
  // same store build, narrower system list.
  const auto full = s.index().failures_of(first);
  const auto sub = view.failures_of(first);
  ASSERT_EQ(full.size(), sub.size());
  EXPECT_EQ(full.store(), sub.store()) << "subset view must share stores";
}

TEST_F(EngineSessionTest, IndexForUnknownSystemThrows) {
  const AnalysisSession s =
      AnalysisSession::FromScenario(synth::TinyScenario(), 11, Options());
  const std::vector<SystemId> bogus = {SystemId{9999}};
  EXPECT_THROW((void)s.IndexFor(bogus), std::out_of_range);
}

TEST_F(EngineSessionTest, FromCsvDirRoundTripsAndCaches) {
  const AnalysisSession made =
      AnalysisSession::FromScenario(synth::TinyScenario(), 11, Options());
  const std::string trace_dir = dir_ + "/trace";
  csv::SaveTrace(made.trace(), trace_dir);

  const AnalysisSession cold = AnalysisSession::FromCsvDir(trace_dir,
                                                           Options());
  EXPECT_EQ(cold.stats().source, SourceKind::kCsvDir);
  EXPECT_FALSE(cold.stats().cache_hit);
  EXPECT_TRUE(cold.stats().cache_stored);
  EXPECT_EQ(cold.trace().failures(), made.trace().failures());

  const AnalysisSession warm = AnalysisSession::FromCsvDir(trace_dir,
                                                           Options());
  EXPECT_TRUE(warm.stats().cache_hit);
  EXPECT_EQ(warm.trace().failures(), cold.trace().failures());
}

}  // namespace
}  // namespace hpcfail::engine
