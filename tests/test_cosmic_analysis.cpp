#include "core/cosmic_analysis.h"

#include <gtest/gtest.h>

#include "synth/generate.h"

namespace hpcfail::core {
namespace {

// A group-1 system with strong CPU-flux coupling over a long window.
Trace CosmicTrace(double exponent, std::uint64_t seed) {
  synth::Scenario sc;
  sc.duration = 5 * kYear;
  sc.neutron.cycle_amplitude = 800.0;  // strong swing over the window
  auto sys = synth::Group1System("sys", 64, 5 * kYear);
  for (double& r : sys.base_rate_per_hour) r *= 10.0;  // dense statistics
  sys.cpu_flux_exponent = exponent;
  sc.systems.push_back(sys);
  return synth::GenerateTrace(sc, seed);
}

TEST(Cosmic, SeriesCoverMonths) {
  const Trace t = CosmicTrace(2.5, 71);
  const EventIndex idx(t);
  const CosmicAnalysis c = AnalyzeCosmic(idx, SystemId{0});
  EXPECT_GT(c.dram.size(), 50u);
  EXPECT_EQ(c.dram.size(), c.cpu.size());
  for (const MonthlyFluxPoint& p : c.dram) {
    EXPECT_GT(p.avg_neutron_counts, 0.0);
    EXPECT_GE(p.failure_probability, 0.0);
    EXPECT_LE(p.failure_probability, 1.0);
  }
}

TEST(Cosmic, CpuCorrelatedWhenCoupled) {
  // Section IX / Fig. 14 right: CPU failures track neutron flux.
  const Trace t = CosmicTrace(2.5, 72);
  const EventIndex idx(t);
  const CosmicAnalysis c = AnalyzeCosmic(idx, SystemId{0});
  EXPECT_GT(c.cpu_corr.r, 0.2);
  EXPECT_GT(c.cpu_glm.coefficient("neutron_counts").estimate, 0.0);
  EXPECT_LT(c.cpu_glm.coefficient("neutron_counts").p_value, 0.05);
}

TEST(Cosmic, DramUncorrelated) {
  // Fig. 14 left: no DRAM-flux association (ECC masks soft errors).
  const Trace t = CosmicTrace(2.5, 73);
  const EventIndex idx(t);
  const CosmicAnalysis c = AnalyzeCosmic(idx, SystemId{0});
  EXPECT_LT(std::abs(c.dram_corr.r), 0.25);
}

TEST(Cosmic, NoCouplingMeansNoCpuCorrelation) {
  // System-20-like negative control: exponent 0.
  const Trace t = CosmicTrace(0.0, 74);
  const EventIndex idx(t);
  const CosmicAnalysis c = AnalyzeCosmic(idx, SystemId{0});
  EXPECT_GT(c.cpu_glm.coefficient("neutron_counts").p_value, 0.01);
}

TEST(Cosmic, ThrowsWithoutNeutronSeries) {
  Trace t;
  SystemConfig cfg;
  cfg.id = SystemId{0};
  cfg.name = "sys";
  cfg.num_nodes = 4;
  cfg.procs_per_node = 4;
  cfg.observed = {0, kYear};
  t.AddSystem(cfg);
  t.Finalize();
  const EventIndex idx(t);
  EXPECT_THROW(AnalyzeCosmic(idx, SystemId{0}), std::invalid_argument);
}

TEST(Cosmic, ThrowsOnSubMonthTrace) {
  Trace t;
  SystemConfig cfg;
  cfg.id = SystemId{0};
  cfg.name = "sys";
  cfg.num_nodes = 4;
  cfg.procs_per_node = 4;
  cfg.observed = {0, 10 * kDay};
  t.AddSystem(cfg);
  t.SetNeutronSeries({{0, 4000.0}});
  t.Finalize();
  const EventIndex idx(t);
  EXPECT_THROW(AnalyzeCosmic(idx, SystemId{0}), std::invalid_argument);
}

TEST(Cosmic, FailingNodesCountedDistinctly) {
  // Two failures of the same node in one month count one failing node.
  Trace t;
  SystemConfig cfg;
  cfg.id = SystemId{0};
  cfg.name = "sys";
  cfg.num_nodes = 10;
  cfg.procs_per_node = 4;
  cfg.observed = {0, 2 * kMonth};
  t.AddSystem(cfg);
  t.SetNeutronSeries({{0, 4000.0}, {kMonth, 4100.0}});
  t.AddFailure(MakeHardwareFailure(SystemId{0}, NodeId{3}, kDay, kDay + kHour,
                                   HardwareComponent::kMemory));
  t.AddFailure(MakeHardwareFailure(SystemId{0}, NodeId{3}, 2 * kDay,
                                   2 * kDay + kHour,
                                   HardwareComponent::kMemory));
  t.AddFailure(MakeHardwareFailure(SystemId{0}, NodeId{4}, kMonth + kDay,
                                   kMonth + kDay + kHour,
                                   HardwareComponent::kCpu));
  t.Finalize();
  const EventIndex idx(t);
  const CosmicAnalysis c = AnalyzeCosmic(idx, SystemId{0});
  ASSERT_EQ(c.dram.size(), 2u);
  EXPECT_EQ(c.dram[0].failing_nodes, 1);
  EXPECT_DOUBLE_EQ(c.dram[0].failure_probability, 0.1);
  EXPECT_EQ(c.dram[1].failing_nodes, 0);
  EXPECT_EQ(c.cpu[1].failing_nodes, 1);
}

}  // namespace
}  // namespace hpcfail::core
