#include "synth/workload_sim.h"

#include <gtest/gtest.h>

namespace hpcfail::synth {
namespace {

SystemScenario WorkloadScenario() {
  SystemScenario s = System20Like(/*num_nodes=*/32, /*duration=*/120 * kDay);
  s.workload.jobs_per_day = 40.0;
  s.workload.num_users = 15;
  return s;
}

TEST(Workload, DisabledProducesEmptyStreams) {
  SystemScenario s = Group1System("a", 8, 30 * kDay);
  stats::Rng rng(1);
  const WorkloadResult r = SimulateWorkload(s, SystemId{0}, 0, rng);
  EXPECT_TRUE(r.jobs.empty());
  EXPECT_TRUE(r.churn.empty());
  ASSERT_EQ(r.usage_multiplier.size(), 8u);
  for (double m : r.usage_multiplier) EXPECT_DOUBLE_EQ(m, 1.0);
}

TEST(Workload, JobsAreConsistent) {
  const SystemScenario s = WorkloadScenario();
  stats::Rng rng(2);
  const WorkloadResult r = SimulateWorkload(s, SystemId{3}, 100, rng);
  ASSERT_FALSE(r.jobs.empty());
  for (const JobRecord& j : r.jobs) {
    EXPECT_TRUE(j.consistent()) << j.id.value;
    EXPECT_EQ(j.system, SystemId{3});
    EXPECT_GE(j.dispatch, 0);
    EXPECT_LE(j.end, s.duration);
    for (NodeId n : j.nodes) {
      EXPECT_GE(n.value, 0);
      EXPECT_LT(n.value, s.num_nodes);
    }
    EXPECT_EQ(j.procs,
              static_cast<int>(j.nodes.size()) * s.procs_per_node);
  }
}

TEST(Workload, JobIdsStartAtFirstIdAndAreUnique) {
  const SystemScenario s = WorkloadScenario();
  stats::Rng rng(3);
  const WorkloadResult r = SimulateWorkload(s, SystemId{0}, 500, rng);
  std::vector<int> ids;
  for (const JobRecord& j : r.jobs) {
    EXPECT_GE(j.id.value, 500);
    ids.push_back(j.id.value);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(Workload, JobCountNearExpectation) {
  const SystemScenario s = WorkloadScenario();
  stats::Rng rng(4);
  const WorkloadResult r = SimulateWorkload(s, SystemId{0}, 0, rng);
  // 40 jobs/day * 120 days user jobs + node-0 login jobs.
  const double expected_user_jobs = 40.0 * 120.0;
  long user_jobs = 0;
  for (const JobRecord& j : r.jobs) {
    if (j.user != UserId{0}) ++user_jobs;
  }
  EXPECT_NEAR(static_cast<double>(user_jobs), expected_user_jobs,
              5.0 * std::sqrt(expected_user_jobs));
}

TEST(Workload, NodeZeroRunsLoginJobs) {
  const SystemScenario s = WorkloadScenario();
  stats::Rng rng(5);
  const WorkloadResult r = SimulateWorkload(s, SystemId{0}, 0, rng);
  long login_jobs = 0;
  for (const JobRecord& j : r.jobs) {
    if (j.user == UserId{0}) {
      ++login_jobs;
      ASSERT_EQ(j.nodes.size(), 1u);
      EXPECT_EQ(j.nodes[0], NodeId{0});
    }
  }
  EXPECT_GT(login_jobs, 1000);  // ~40/day * 120 days
  // Node 0 ends up with by far the most jobs (Fig. 7's marker).
  int max_other = 0;
  for (std::size_t n = 1; n < r.usage.size(); ++n) {
    max_other = std::max(max_other, r.usage[n].num_jobs);
  }
  EXPECT_GT(r.usage[0].num_jobs, max_other);
}

TEST(Workload, UtilizationWithinBounds) {
  const SystemScenario s = WorkloadScenario();
  stats::Rng rng(6);
  const WorkloadResult r = SimulateWorkload(s, SystemId{0}, 0, rng);
  for (const NodeUsage& u : r.usage) {
    EXPECT_GE(u.utilization, 0.0);
    EXPECT_LE(u.utilization, 1.0);
    EXPECT_LE(u.busy_time, s.duration);
  }
}

TEST(Workload, SchedulerAffinityCreatesUtilizationGradient) {
  const SystemScenario s = WorkloadScenario();
  stats::Rng rng(7);
  const WorkloadResult r = SimulateWorkload(s, SystemId{0}, 0, rng);
  // Average utilization of the first quartile of nodes exceeds the last.
  const std::size_t q = r.usage.size() / 4;
  double low_ids = 0.0, high_ids = 0.0;
  for (std::size_t n = 0; n < q; ++n) low_ids += r.usage[n].utilization;
  for (std::size_t n = r.usage.size() - q; n < r.usage.size(); ++n) {
    high_ids += r.usage[n].utilization;
  }
  EXPECT_GT(low_ids, high_ids);
}

TEST(Workload, ChurnTriggersMatchJobNodePairs) {
  const SystemScenario s = WorkloadScenario();
  stats::Rng rng(8);
  const WorkloadResult r = SimulateWorkload(s, SystemId{0}, 0, rng);
  std::size_t pairs = 0;
  for (const JobRecord& j : r.jobs) pairs += j.nodes.size();
  EXPECT_EQ(r.churn.size(), pairs);
  for (const ChurnTrigger& c : r.churn) {
    EXPECT_GE(c.time, 0);
    EXPECT_LT(c.time, s.duration);
    EXPECT_GT(c.risk, 0.0);
  }
}

TEST(Workload, UsageMultiplierReflectsUtilization) {
  const SystemScenario s = WorkloadScenario();
  stats::Rng rng(9);
  const WorkloadResult r = SimulateWorkload(s, SystemId{0}, 0, rng);
  for (std::size_t n = 0; n < r.usage.size(); ++n) {
    EXPECT_NEAR(r.usage_multiplier[n],
                1.0 + s.workload.busy_hazard_boost * r.usage[n].utilization,
                1e-12);
  }
}

TEST(Workload, DeterministicPerSeed) {
  const SystemScenario s = WorkloadScenario();
  stats::Rng rng1(10), rng2(10);
  const WorkloadResult a = SimulateWorkload(s, SystemId{0}, 0, rng1);
  const WorkloadResult b = SimulateWorkload(s, SystemId{0}, 0, rng2);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.usage_multiplier, b.usage_multiplier);
}

TEST(Workload, UserRisksAreHeterogeneous) {
  const SystemScenario s = WorkloadScenario();
  stats::Rng rng(11);
  const WorkloadResult r = SimulateWorkload(s, SystemId{0}, 0, rng);
  double lo = 1e9, hi = 0.0;
  for (std::size_t u = 1; u < r.user_risk.size(); ++u) {
    lo = std::min(lo, r.user_risk[u]);
    hi = std::max(hi, r.user_risk[u]);
  }
  EXPECT_GT(hi / lo, 2.0);  // Section VI: users differ materially
}

}  // namespace
}  // namespace hpcfail::synth
