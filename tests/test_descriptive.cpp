#include "stats/descriptive.h"

#include <gtest/gtest.h>

namespace hpcfail::stats {
namespace {

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Mean, KnownValue) { EXPECT_DOUBLE_EQ(Mean(kSample), 5.0); }

TEST(Mean, ThrowsOnEmpty) {
  EXPECT_THROW(Mean(std::span<const double>{}), std::invalid_argument);
}

TEST(Variance, SampleVariance) {
  // Sum of squared deviations = 32, n-1 = 7.
  EXPECT_NEAR(Variance(kSample), 32.0 / 7.0, 1e-12);
}

TEST(Variance, PopulationVariance) {
  EXPECT_NEAR(PopulationVariance(kSample), 4.0, 1e-12);
}

TEST(Variance, DegenerateCases) {
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(Variance(one), 0.0);
  EXPECT_DOUBLE_EQ(PopulationVariance(one), 0.0);
}

TEST(StdDev, IsSqrtOfVariance) {
  EXPECT_NEAR(StdDev(kSample) * StdDev(kSample), Variance(kSample), 1e-12);
}

TEST(MinMax, KnownValues) {
  EXPECT_DOUBLE_EQ(Min(kSample), 2.0);
  EXPECT_DOUBLE_EQ(Max(kSample), 9.0);
}

TEST(Sum, KahanAccuracy) {
  // 1 + 1e16 - 1e16 naive summation would lose the 1.
  const std::vector<double> v = {1.0, 1e16, -1e16};
  EXPECT_DOUBLE_EQ(Sum(v), 1.0);
}

TEST(Quantile, MedianAndInterpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 1.75);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> v = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(Median(v), 5.0);
}

TEST(Quantile, RejectsBadArguments) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW(Quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(Quantile(v, 1.1), std::invalid_argument);
  EXPECT_THROW(Quantile(std::span<const double>{}, 0.5),
               std::invalid_argument);
}

TEST(Histogram, CountsAndClamping) {
  const std::vector<double> v = {-1.0, 0.5, 1.5, 2.5, 10.0};
  const std::vector<int> h = Histogram(v, 0.0, 3.0, 3);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], 2);  // -1.0 clamped in, 0.5
  EXPECT_EQ(h[1], 1);  // 1.5
  EXPECT_EQ(h[2], 2);  // 2.5, 10.0 clamped in
}

TEST(Histogram, RejectsBadArguments) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW(Histogram(v, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(v, 1.0, 1.0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace hpcfail::stats
