file(REMOVE_RECURSE
  "CMakeFiles/test_location_analysis.dir/test_location_analysis.cpp.o"
  "CMakeFiles/test_location_analysis.dir/test_location_analysis.cpp.o.d"
  "test_location_analysis"
  "test_location_analysis.pdb"
  "test_location_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_location_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
