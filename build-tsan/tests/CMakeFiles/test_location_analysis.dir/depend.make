# Empty dependencies file for test_location_analysis.
# This may be replaced when dependencies are built.
