# Empty compiler generated dependencies file for test_bootstrap.
# This may be replaced when dependencies are built.
