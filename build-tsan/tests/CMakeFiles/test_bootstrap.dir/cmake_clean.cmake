file(REMOVE_RECURSE
  "CMakeFiles/test_bootstrap.dir/test_bootstrap.cpp.o"
  "CMakeFiles/test_bootstrap.dir/test_bootstrap.cpp.o.d"
  "test_bootstrap"
  "test_bootstrap.pdb"
  "test_bootstrap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
