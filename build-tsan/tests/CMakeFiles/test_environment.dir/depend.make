# Empty dependencies file for test_environment.
# This may be replaced when dependencies are built.
