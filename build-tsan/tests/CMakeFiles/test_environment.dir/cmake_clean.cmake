file(REMOVE_RECURSE
  "CMakeFiles/test_environment.dir/test_environment.cpp.o"
  "CMakeFiles/test_environment.dir/test_environment.cpp.o.d"
  "test_environment"
  "test_environment.pdb"
  "test_environment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
