file(REMOVE_RECURSE
  "CMakeFiles/test_correlation.dir/test_correlation.cpp.o"
  "CMakeFiles/test_correlation.dir/test_correlation.cpp.o.d"
  "test_correlation"
  "test_correlation.pdb"
  "test_correlation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
