# Empty dependencies file for test_correlation.
# This may be replaced when dependencies are built.
