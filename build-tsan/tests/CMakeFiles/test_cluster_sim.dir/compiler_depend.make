# Empty compiler generated dependencies file for test_cluster_sim.
# This may be replaced when dependencies are built.
