file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_sim.dir/test_cluster_sim.cpp.o"
  "CMakeFiles/test_cluster_sim.dir/test_cluster_sim.cpp.o.d"
  "test_cluster_sim"
  "test_cluster_sim.pdb"
  "test_cluster_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
