file(REMOVE_RECURSE
  "CMakeFiles/test_downtime.dir/test_downtime.cpp.o"
  "CMakeFiles/test_downtime.dir/test_downtime.cpp.o.d"
  "test_downtime"
  "test_downtime.pdb"
  "test_downtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_downtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
