# Empty dependencies file for test_downtime.
# This may be replaced when dependencies are built.
