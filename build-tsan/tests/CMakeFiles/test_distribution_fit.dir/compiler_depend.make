# Empty compiler generated dependencies file for test_distribution_fit.
# This may be replaced when dependencies are built.
