file(REMOVE_RECURSE
  "CMakeFiles/test_distribution_fit.dir/test_distribution_fit.cpp.o"
  "CMakeFiles/test_distribution_fit.dir/test_distribution_fit.cpp.o.d"
  "test_distribution_fit"
  "test_distribution_fit.pdb"
  "test_distribution_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distribution_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
