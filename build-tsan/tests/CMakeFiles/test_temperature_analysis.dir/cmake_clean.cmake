file(REMOVE_RECURSE
  "CMakeFiles/test_temperature_analysis.dir/test_temperature_analysis.cpp.o"
  "CMakeFiles/test_temperature_analysis.dir/test_temperature_analysis.cpp.o.d"
  "test_temperature_analysis"
  "test_temperature_analysis.pdb"
  "test_temperature_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_temperature_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
