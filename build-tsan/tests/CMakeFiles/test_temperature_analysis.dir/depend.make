# Empty dependencies file for test_temperature_analysis.
# This may be replaced when dependencies are built.
