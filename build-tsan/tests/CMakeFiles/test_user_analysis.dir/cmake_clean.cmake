file(REMOVE_RECURSE
  "CMakeFiles/test_user_analysis.dir/test_user_analysis.cpp.o"
  "CMakeFiles/test_user_analysis.dir/test_user_analysis.cpp.o.d"
  "test_user_analysis"
  "test_user_analysis.pdb"
  "test_user_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_user_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
