# Empty compiler generated dependencies file for test_user_analysis.
# This may be replaced when dependencies are built.
