# Empty dependencies file for test_node_skew.
# This may be replaced when dependencies are built.
