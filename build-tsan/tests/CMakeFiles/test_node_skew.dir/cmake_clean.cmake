file(REMOVE_RECURSE
  "CMakeFiles/test_node_skew.dir/test_node_skew.cpp.o"
  "CMakeFiles/test_node_skew.dir/test_node_skew.cpp.o.d"
  "test_node_skew"
  "test_node_skew.pdb"
  "test_node_skew[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
