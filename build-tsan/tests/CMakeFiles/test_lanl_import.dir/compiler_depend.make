# Empty compiler generated dependencies file for test_lanl_import.
# This may be replaced when dependencies are built.
