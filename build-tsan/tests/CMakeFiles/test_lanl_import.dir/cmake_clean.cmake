file(REMOVE_RECURSE
  "CMakeFiles/test_lanl_import.dir/test_lanl_import.cpp.o"
  "CMakeFiles/test_lanl_import.dir/test_lanl_import.cpp.o.d"
  "test_lanl_import"
  "test_lanl_import.pdb"
  "test_lanl_import[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lanl_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
