file(REMOVE_RECURSE
  "CMakeFiles/test_layout.dir/test_layout.cpp.o"
  "CMakeFiles/test_layout.dir/test_layout.cpp.o.d"
  "test_layout"
  "test_layout.pdb"
  "test_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
