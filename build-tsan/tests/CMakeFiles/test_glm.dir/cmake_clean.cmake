file(REMOVE_RECURSE
  "CMakeFiles/test_glm.dir/test_glm.cpp.o"
  "CMakeFiles/test_glm.dir/test_glm.cpp.o.d"
  "test_glm"
  "test_glm.pdb"
  "test_glm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_glm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
