# Empty dependencies file for test_glm.
# This may be replaced when dependencies are built.
