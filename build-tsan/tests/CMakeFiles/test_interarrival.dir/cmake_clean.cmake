file(REMOVE_RECURSE
  "CMakeFiles/test_interarrival.dir/test_interarrival.cpp.o"
  "CMakeFiles/test_interarrival.dir/test_interarrival.cpp.o.d"
  "test_interarrival"
  "test_interarrival.pdb"
  "test_interarrival[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
