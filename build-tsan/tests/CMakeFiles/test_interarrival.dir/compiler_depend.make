# Empty compiler generated dependencies file for test_interarrival.
# This may be replaced when dependencies are built.
