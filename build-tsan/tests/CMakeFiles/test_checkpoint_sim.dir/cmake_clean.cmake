file(REMOVE_RECURSE
  "CMakeFiles/test_checkpoint_sim.dir/test_checkpoint_sim.cpp.o"
  "CMakeFiles/test_checkpoint_sim.dir/test_checkpoint_sim.cpp.o.d"
  "test_checkpoint_sim"
  "test_checkpoint_sim.pdb"
  "test_checkpoint_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkpoint_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
