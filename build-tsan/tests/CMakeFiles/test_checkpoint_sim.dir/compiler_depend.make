# Empty compiler generated dependencies file for test_checkpoint_sim.
# This may be replaced when dependencies are built.
