# Empty dependencies file for test_joint_regression.
# This may be replaced when dependencies are built.
