file(REMOVE_RECURSE
  "CMakeFiles/test_joint_regression.dir/test_joint_regression.cpp.o"
  "CMakeFiles/test_joint_regression.dir/test_joint_regression.cpp.o.d"
  "test_joint_regression"
  "test_joint_regression.pdb"
  "test_joint_regression[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_joint_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
