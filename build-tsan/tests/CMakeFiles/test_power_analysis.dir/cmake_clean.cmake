file(REMOVE_RECURSE
  "CMakeFiles/test_power_analysis.dir/test_power_analysis.cpp.o"
  "CMakeFiles/test_power_analysis.dir/test_power_analysis.cpp.o.d"
  "test_power_analysis"
  "test_power_analysis.pdb"
  "test_power_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
