file(REMOVE_RECURSE
  "CMakeFiles/test_environment_sim.dir/test_environment_sim.cpp.o"
  "CMakeFiles/test_environment_sim.dir/test_environment_sim.cpp.o.d"
  "test_environment_sim"
  "test_environment_sim.pdb"
  "test_environment_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_environment_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
