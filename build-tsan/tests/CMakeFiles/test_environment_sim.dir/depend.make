# Empty dependencies file for test_environment_sim.
# This may be replaced when dependencies are built.
