# Empty compiler generated dependencies file for test_failure.
# This may be replaced when dependencies are built.
