file(REMOVE_RECURSE
  "CMakeFiles/test_failure.dir/test_failure.cpp.o"
  "CMakeFiles/test_failure.dir/test_failure.cpp.o.d"
  "test_failure"
  "test_failure.pdb"
  "test_failure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
