file(REMOVE_RECURSE
  "CMakeFiles/test_cosmic_analysis.dir/test_cosmic_analysis.cpp.o"
  "CMakeFiles/test_cosmic_analysis.dir/test_cosmic_analysis.cpp.o.d"
  "test_cosmic_analysis"
  "test_cosmic_analysis.pdb"
  "test_cosmic_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cosmic_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
