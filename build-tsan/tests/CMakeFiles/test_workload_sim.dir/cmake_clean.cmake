file(REMOVE_RECURSE
  "CMakeFiles/test_workload_sim.dir/test_workload_sim.cpp.o"
  "CMakeFiles/test_workload_sim.dir/test_workload_sim.cpp.o.d"
  "test_workload_sim"
  "test_workload_sim.pdb"
  "test_workload_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
