# Empty compiler generated dependencies file for test_usage_analysis.
# This may be replaced when dependencies are built.
