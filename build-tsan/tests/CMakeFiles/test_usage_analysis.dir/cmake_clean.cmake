file(REMOVE_RECURSE
  "CMakeFiles/test_usage_analysis.dir/test_usage_analysis.cpp.o"
  "CMakeFiles/test_usage_analysis.dir/test_usage_analysis.cpp.o.d"
  "test_usage_analysis"
  "test_usage_analysis.pdb"
  "test_usage_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usage_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
