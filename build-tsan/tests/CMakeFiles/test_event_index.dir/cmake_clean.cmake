file(REMOVE_RECURSE
  "CMakeFiles/test_event_index.dir/test_event_index.cpp.o"
  "CMakeFiles/test_event_index.dir/test_event_index.cpp.o.d"
  "test_event_index"
  "test_event_index.pdb"
  "test_event_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
