# Empty dependencies file for test_event_index.
# This may be replaced when dependencies are built.
