file(REMOVE_RECURSE
  "CMakeFiles/test_proportion.dir/test_proportion.cpp.o"
  "CMakeFiles/test_proportion.dir/test_proportion.cpp.o.d"
  "test_proportion"
  "test_proportion.pdb"
  "test_proportion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proportion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
