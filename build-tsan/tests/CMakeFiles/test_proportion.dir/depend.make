# Empty dependencies file for test_proportion.
# This may be replaced when dependencies are built.
