# Empty dependencies file for test_window_analysis.
# This may be replaced when dependencies are built.
