file(REMOVE_RECURSE
  "CMakeFiles/test_window_analysis.dir/test_window_analysis.cpp.o"
  "CMakeFiles/test_window_analysis.dir/test_window_analysis.cpp.o.d"
  "test_window_analysis"
  "test_window_analysis.pdb"
  "test_window_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_window_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
