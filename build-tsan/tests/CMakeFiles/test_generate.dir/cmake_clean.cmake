file(REMOVE_RECURSE
  "CMakeFiles/test_generate.dir/test_generate.cpp.o"
  "CMakeFiles/test_generate.dir/test_generate.cpp.o.d"
  "test_generate"
  "test_generate.pdb"
  "test_generate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
