# Empty compiler generated dependencies file for test_generate.
# This may be replaced when dependencies are built.
