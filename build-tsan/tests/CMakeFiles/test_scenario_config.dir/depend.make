# Empty dependencies file for test_scenario_config.
# This may be replaced when dependencies are built.
