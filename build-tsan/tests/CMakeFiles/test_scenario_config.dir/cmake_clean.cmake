file(REMOVE_RECURSE
  "CMakeFiles/test_scenario_config.dir/test_scenario_config.cpp.o"
  "CMakeFiles/test_scenario_config.dir/test_scenario_config.cpp.o.d"
  "test_scenario_config"
  "test_scenario_config.pdb"
  "test_scenario_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
