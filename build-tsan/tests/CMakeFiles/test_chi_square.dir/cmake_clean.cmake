file(REMOVE_RECURSE
  "CMakeFiles/test_chi_square.dir/test_chi_square.cpp.o"
  "CMakeFiles/test_chi_square.dir/test_chi_square.cpp.o.d"
  "test_chi_square"
  "test_chi_square.pdb"
  "test_chi_square[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chi_square.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
