# Empty compiler generated dependencies file for test_chi_square.
# This may be replaced when dependencies are built.
