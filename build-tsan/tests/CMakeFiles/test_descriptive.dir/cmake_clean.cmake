file(REMOVE_RECURSE
  "CMakeFiles/test_descriptive.dir/test_descriptive.cpp.o"
  "CMakeFiles/test_descriptive.dir/test_descriptive.cpp.o.d"
  "test_descriptive"
  "test_descriptive.pdb"
  "test_descriptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_descriptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
