# Empty dependencies file for test_prediction.
# This may be replaced when dependencies are built.
