file(REMOVE_RECURSE
  "CMakeFiles/test_prediction.dir/test_prediction.cpp.o"
  "CMakeFiles/test_prediction.dir/test_prediction.cpp.o.d"
  "test_prediction"
  "test_prediction.pdb"
  "test_prediction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
