# Empty compiler generated dependencies file for failure_prediction.
# This may be replaced when dependencies are built.
