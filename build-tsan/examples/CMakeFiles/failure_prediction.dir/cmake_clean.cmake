file(REMOVE_RECURSE
  "CMakeFiles/failure_prediction.dir/failure_prediction.cpp.o"
  "CMakeFiles/failure_prediction.dir/failure_prediction.cpp.o.d"
  "failure_prediction"
  "failure_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
