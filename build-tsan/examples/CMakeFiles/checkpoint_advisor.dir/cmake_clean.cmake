file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_advisor.dir/checkpoint_advisor.cpp.o"
  "CMakeFiles/checkpoint_advisor.dir/checkpoint_advisor.cpp.o.d"
  "checkpoint_advisor"
  "checkpoint_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
