# Empty compiler generated dependencies file for checkpoint_advisor.
# This may be replaced when dependencies are built.
