# Empty compiler generated dependencies file for fleet_health.
# This may be replaced when dependencies are built.
