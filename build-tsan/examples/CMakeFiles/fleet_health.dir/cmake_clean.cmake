file(REMOVE_RECURSE
  "CMakeFiles/fleet_health.dir/fleet_health.cpp.o"
  "CMakeFiles/fleet_health.dir/fleet_health.cpp.o.d"
  "fleet_health"
  "fleet_health.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_health.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
