# Empty compiler generated dependencies file for power_postmortem.
# This may be replaced when dependencies are built.
