file(REMOVE_RECURSE
  "CMakeFiles/power_postmortem.dir/power_postmortem.cpp.o"
  "CMakeFiles/power_postmortem.dir/power_postmortem.cpp.o.d"
  "power_postmortem"
  "power_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
