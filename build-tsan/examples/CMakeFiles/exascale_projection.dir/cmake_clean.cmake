file(REMOVE_RECURSE
  "CMakeFiles/exascale_projection.dir/exascale_projection.cpp.o"
  "CMakeFiles/exascale_projection.dir/exascale_projection.cpp.o.d"
  "exascale_projection"
  "exascale_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exascale_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
