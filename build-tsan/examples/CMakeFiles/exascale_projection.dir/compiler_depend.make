# Empty compiler generated dependencies file for exascale_projection.
# This may be replaced when dependencies are built.
