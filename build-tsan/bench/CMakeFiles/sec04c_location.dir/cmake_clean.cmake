file(REMOVE_RECURSE
  "CMakeFiles/sec04c_location.dir/sec04c_location.cpp.o"
  "CMakeFiles/sec04c_location.dir/sec04c_location.cpp.o.d"
  "sec04c_location"
  "sec04c_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec04c_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
