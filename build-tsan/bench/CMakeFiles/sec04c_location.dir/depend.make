# Empty dependencies file for sec04c_location.
# This may be replaced when dependencies are built.
