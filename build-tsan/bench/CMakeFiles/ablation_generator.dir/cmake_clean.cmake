file(REMOVE_RECURSE
  "CMakeFiles/ablation_generator.dir/ablation_generator.cpp.o"
  "CMakeFiles/ablation_generator.dir/ablation_generator.cpp.o.d"
  "ablation_generator"
  "ablation_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
