# Empty dependencies file for ablation_generator.
# This may be replaced when dependencies are built.
