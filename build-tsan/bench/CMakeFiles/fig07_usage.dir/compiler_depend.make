# Empty compiler generated dependencies file for fig07_usage.
# This may be replaced when dependencies are built.
