file(REMOVE_RECURSE
  "CMakeFiles/fig07_usage.dir/fig07_usage.cpp.o"
  "CMakeFiles/fig07_usage.dir/fig07_usage.cpp.o.d"
  "fig07_usage"
  "fig07_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
