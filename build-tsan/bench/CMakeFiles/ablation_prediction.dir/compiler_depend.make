# Empty compiler generated dependencies file for ablation_prediction.
# This may be replaced when dependencies are built.
