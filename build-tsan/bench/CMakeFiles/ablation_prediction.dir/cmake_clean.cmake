file(REMOVE_RECURSE
  "CMakeFiles/ablation_prediction.dir/ablation_prediction.cpp.o"
  "CMakeFiles/ablation_prediction.dir/ablation_prediction.cpp.o.d"
  "ablation_prediction"
  "ablation_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
