# Empty compiler generated dependencies file for fig03_same_system.
# This may be replaced when dependencies are built.
