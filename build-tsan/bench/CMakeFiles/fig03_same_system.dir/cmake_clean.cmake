file(REMOVE_RECURSE
  "CMakeFiles/fig03_same_system.dir/fig03_same_system.cpp.o"
  "CMakeFiles/fig03_same_system.dir/fig03_same_system.cpp.o.d"
  "fig03_same_system"
  "fig03_same_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_same_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
