file(REMOVE_RECURSE
  "CMakeFiles/fig04_node_skew.dir/fig04_node_skew.cpp.o"
  "CMakeFiles/fig04_node_skew.dir/fig04_node_skew.cpp.o.d"
  "fig04_node_skew"
  "fig04_node_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_node_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
