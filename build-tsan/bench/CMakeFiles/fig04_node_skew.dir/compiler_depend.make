# Empty compiler generated dependencies file for fig04_node_skew.
# This may be replaced when dependencies are built.
