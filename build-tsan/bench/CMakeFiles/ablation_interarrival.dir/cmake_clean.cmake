file(REMOVE_RECURSE
  "CMakeFiles/ablation_interarrival.dir/ablation_interarrival.cpp.o"
  "CMakeFiles/ablation_interarrival.dir/ablation_interarrival.cpp.o.d"
  "ablation_interarrival"
  "ablation_interarrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
