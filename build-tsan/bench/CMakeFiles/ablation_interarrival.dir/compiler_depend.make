# Empty compiler generated dependencies file for ablation_interarrival.
# This may be replaced when dependencies are built.
