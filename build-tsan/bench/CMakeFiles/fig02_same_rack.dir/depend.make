# Empty dependencies file for fig02_same_rack.
# This may be replaced when dependencies are built.
