file(REMOVE_RECURSE
  "CMakeFiles/fig02_same_rack.dir/fig02_same_rack.cpp.o"
  "CMakeFiles/fig02_same_rack.dir/fig02_same_rack.cpp.o.d"
  "fig02_same_rack"
  "fig02_same_rack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_same_rack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
