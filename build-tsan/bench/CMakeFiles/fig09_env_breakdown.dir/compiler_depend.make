# Empty compiler generated dependencies file for fig09_env_breakdown.
# This may be replaced when dependencies are built.
