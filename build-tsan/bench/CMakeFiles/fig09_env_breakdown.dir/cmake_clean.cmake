file(REMOVE_RECURSE
  "CMakeFiles/fig09_env_breakdown.dir/fig09_env_breakdown.cpp.o"
  "CMakeFiles/fig09_env_breakdown.dir/fig09_env_breakdown.cpp.o.d"
  "fig09_env_breakdown"
  "fig09_env_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_env_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
