file(REMOVE_RECURSE
  "CMakeFiles/fig10_power_hw.dir/fig10_power_hw.cpp.o"
  "CMakeFiles/fig10_power_hw.dir/fig10_power_hw.cpp.o.d"
  "fig10_power_hw"
  "fig10_power_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_power_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
