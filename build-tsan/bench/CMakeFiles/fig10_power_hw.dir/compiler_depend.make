# Empty compiler generated dependencies file for fig10_power_hw.
# This may be replaced when dependencies are built.
