# Empty compiler generated dependencies file for fig11_power_sw.
# This may be replaced when dependencies are built.
