file(REMOVE_RECURSE
  "CMakeFiles/fig11_power_sw.dir/fig11_power_sw.cpp.o"
  "CMakeFiles/fig11_power_sw.dir/fig11_power_sw.cpp.o.d"
  "fig11_power_sw"
  "fig11_power_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_power_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
