# Empty compiler generated dependencies file for ext_survival.
# This may be replaced when dependencies are built.
