file(REMOVE_RECURSE
  "CMakeFiles/ext_survival.dir/ext_survival.cpp.o"
  "CMakeFiles/ext_survival.dir/ext_survival.cpp.o.d"
  "ext_survival"
  "ext_survival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_survival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
