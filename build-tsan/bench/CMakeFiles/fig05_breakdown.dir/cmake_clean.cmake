file(REMOVE_RECURSE
  "CMakeFiles/fig05_breakdown.dir/fig05_breakdown.cpp.o"
  "CMakeFiles/fig05_breakdown.dir/fig05_breakdown.cpp.o.d"
  "fig05_breakdown"
  "fig05_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
