# Empty compiler generated dependencies file for fig05_breakdown.
# This may be replaced when dependencies are built.
