# Empty compiler generated dependencies file for table02_03_regression.
# This may be replaced when dependencies are built.
