# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table02_03_regression.
