file(REMOVE_RECURSE
  "CMakeFiles/table02_03_regression.dir/table02_03_regression.cpp.o"
  "CMakeFiles/table02_03_regression.dir/table02_03_regression.cpp.o.d"
  "table02_03_regression"
  "table02_03_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_03_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
