file(REMOVE_RECURSE
  "CMakeFiles/ablation_psu_replacement.dir/ablation_psu_replacement.cpp.o"
  "CMakeFiles/ablation_psu_replacement.dir/ablation_psu_replacement.cpp.o.d"
  "ablation_psu_replacement"
  "ablation_psu_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_psu_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
