# Empty compiler generated dependencies file for ablation_psu_replacement.
# This may be replaced when dependencies are built.
