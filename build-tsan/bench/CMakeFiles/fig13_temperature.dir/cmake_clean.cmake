file(REMOVE_RECURSE
  "CMakeFiles/fig13_temperature.dir/fig13_temperature.cpp.o"
  "CMakeFiles/fig13_temperature.dir/fig13_temperature.cpp.o.d"
  "fig13_temperature"
  "fig13_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
