# Empty compiler generated dependencies file for fig13_temperature.
# This may be replaced when dependencies are built.
