file(REMOVE_RECURSE
  "CMakeFiles/ablation_checkpoint.dir/ablation_checkpoint.cpp.o"
  "CMakeFiles/ablation_checkpoint.dir/ablation_checkpoint.cpp.o.d"
  "ablation_checkpoint"
  "ablation_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
