# Empty dependencies file for ablation_checkpoint.
# This may be replaced when dependencies are built.
