file(REMOVE_RECURSE
  "CMakeFiles/perf_engine.dir/perf_engine.cpp.o"
  "CMakeFiles/perf_engine.dir/perf_engine.cpp.o.d"
  "perf_engine"
  "perf_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
