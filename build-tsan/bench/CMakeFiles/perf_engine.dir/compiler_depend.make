# Empty compiler generated dependencies file for perf_engine.
# This may be replaced when dependencies are built.
