# Empty compiler generated dependencies file for fig06_prone_nodes.
# This may be replaced when dependencies are built.
