file(REMOVE_RECURSE
  "CMakeFiles/fig06_prone_nodes.dir/fig06_prone_nodes.cpp.o"
  "CMakeFiles/fig06_prone_nodes.dir/fig06_prone_nodes.cpp.o.d"
  "fig06_prone_nodes"
  "fig06_prone_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_prone_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
