# Empty dependencies file for fig08_users.
# This may be replaced when dependencies are built.
