file(REMOVE_RECURSE
  "CMakeFiles/fig08_users.dir/fig08_users.cpp.o"
  "CMakeFiles/fig08_users.dir/fig08_users.cpp.o.d"
  "fig08_users"
  "fig08_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
