file(REMOVE_RECURSE
  "CMakeFiles/fig12_spacetime.dir/fig12_spacetime.cpp.o"
  "CMakeFiles/fig12_spacetime.dir/fig12_spacetime.cpp.o.d"
  "fig12_spacetime"
  "fig12_spacetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_spacetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
