# Empty dependencies file for fig12_spacetime.
# This may be replaced when dependencies are built.
