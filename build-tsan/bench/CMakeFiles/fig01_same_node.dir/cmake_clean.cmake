file(REMOVE_RECURSE
  "CMakeFiles/fig01_same_node.dir/fig01_same_node.cpp.o"
  "CMakeFiles/fig01_same_node.dir/fig01_same_node.cpp.o.d"
  "fig01_same_node"
  "fig01_same_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_same_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
