# Empty compiler generated dependencies file for fig01_same_node.
# This may be replaced when dependencies are built.
