# Empty dependencies file for fig14_cosmic.
# This may be replaced when dependencies are built.
