file(REMOVE_RECURSE
  "CMakeFiles/fig14_cosmic.dir/fig14_cosmic.cpp.o"
  "CMakeFiles/fig14_cosmic.dir/fig14_cosmic.cpp.o.d"
  "fig14_cosmic"
  "fig14_cosmic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cosmic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
