file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_report.dir/hpcfail_report.cpp.o"
  "CMakeFiles/hpcfail_report.dir/hpcfail_report.cpp.o.d"
  "hpcfail_report"
  "hpcfail_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
