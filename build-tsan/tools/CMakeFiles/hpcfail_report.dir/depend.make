# Empty dependencies file for hpcfail_report.
# This may be replaced when dependencies are built.
