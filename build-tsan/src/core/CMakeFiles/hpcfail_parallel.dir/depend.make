# Empty dependencies file for hpcfail_parallel.
# This may be replaced when dependencies are built.
