file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_parallel.dir/parallel.cpp.o"
  "CMakeFiles/hpcfail_parallel.dir/parallel.cpp.o.d"
  "libhpcfail_parallel.a"
  "libhpcfail_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
