file(REMOVE_RECURSE
  "libhpcfail_parallel.a"
)
