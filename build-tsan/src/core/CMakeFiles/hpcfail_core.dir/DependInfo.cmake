
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint_sim.cpp" "src/core/CMakeFiles/hpcfail_core.dir/checkpoint_sim.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/checkpoint_sim.cpp.o.d"
  "/root/repo/src/core/cosmic_analysis.cpp" "src/core/CMakeFiles/hpcfail_core.dir/cosmic_analysis.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/cosmic_analysis.cpp.o.d"
  "/root/repo/src/core/downtime.cpp" "src/core/CMakeFiles/hpcfail_core.dir/downtime.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/downtime.cpp.o.d"
  "/root/repo/src/core/event_index.cpp" "src/core/CMakeFiles/hpcfail_core.dir/event_index.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/event_index.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/hpcfail_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/export.cpp.o.d"
  "/root/repo/src/core/interarrival.cpp" "src/core/CMakeFiles/hpcfail_core.dir/interarrival.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/interarrival.cpp.o.d"
  "/root/repo/src/core/joint_regression.cpp" "src/core/CMakeFiles/hpcfail_core.dir/joint_regression.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/joint_regression.cpp.o.d"
  "/root/repo/src/core/location_analysis.cpp" "src/core/CMakeFiles/hpcfail_core.dir/location_analysis.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/location_analysis.cpp.o.d"
  "/root/repo/src/core/node_skew.cpp" "src/core/CMakeFiles/hpcfail_core.dir/node_skew.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/node_skew.cpp.o.d"
  "/root/repo/src/core/power_analysis.cpp" "src/core/CMakeFiles/hpcfail_core.dir/power_analysis.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/power_analysis.cpp.o.d"
  "/root/repo/src/core/prediction.cpp" "src/core/CMakeFiles/hpcfail_core.dir/prediction.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/prediction.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/hpcfail_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/report.cpp.o.d"
  "/root/repo/src/core/survival_analysis.cpp" "src/core/CMakeFiles/hpcfail_core.dir/survival_analysis.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/survival_analysis.cpp.o.d"
  "/root/repo/src/core/temperature_analysis.cpp" "src/core/CMakeFiles/hpcfail_core.dir/temperature_analysis.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/temperature_analysis.cpp.o.d"
  "/root/repo/src/core/usage_analysis.cpp" "src/core/CMakeFiles/hpcfail_core.dir/usage_analysis.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/usage_analysis.cpp.o.d"
  "/root/repo/src/core/user_analysis.cpp" "src/core/CMakeFiles/hpcfail_core.dir/user_analysis.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/user_analysis.cpp.o.d"
  "/root/repo/src/core/window_analysis.cpp" "src/core/CMakeFiles/hpcfail_core.dir/window_analysis.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/window_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/trace/CMakeFiles/hpcfail_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/hpcfail_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/hpcfail_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
