# Empty dependencies file for hpcfail_core.
# This may be replaced when dependencies are built.
