file(REMOVE_RECURSE
  "libhpcfail_core.a"
)
