
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/csv.cpp" "src/trace/CMakeFiles/hpcfail_trace.dir/csv.cpp.o" "gcc" "src/trace/CMakeFiles/hpcfail_trace.dir/csv.cpp.o.d"
  "/root/repo/src/trace/environment.cpp" "src/trace/CMakeFiles/hpcfail_trace.dir/environment.cpp.o" "gcc" "src/trace/CMakeFiles/hpcfail_trace.dir/environment.cpp.o.d"
  "/root/repo/src/trace/failure.cpp" "src/trace/CMakeFiles/hpcfail_trace.dir/failure.cpp.o" "gcc" "src/trace/CMakeFiles/hpcfail_trace.dir/failure.cpp.o.d"
  "/root/repo/src/trace/lanl_import.cpp" "src/trace/CMakeFiles/hpcfail_trace.dir/lanl_import.cpp.o" "gcc" "src/trace/CMakeFiles/hpcfail_trace.dir/lanl_import.cpp.o.d"
  "/root/repo/src/trace/layout.cpp" "src/trace/CMakeFiles/hpcfail_trace.dir/layout.cpp.o" "gcc" "src/trace/CMakeFiles/hpcfail_trace.dir/layout.cpp.o.d"
  "/root/repo/src/trace/system.cpp" "src/trace/CMakeFiles/hpcfail_trace.dir/system.cpp.o" "gcc" "src/trace/CMakeFiles/hpcfail_trace.dir/system.cpp.o.d"
  "/root/repo/src/trace/transform.cpp" "src/trace/CMakeFiles/hpcfail_trace.dir/transform.cpp.o" "gcc" "src/trace/CMakeFiles/hpcfail_trace.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
