# Empty dependencies file for hpcfail_trace.
# This may be replaced when dependencies are built.
