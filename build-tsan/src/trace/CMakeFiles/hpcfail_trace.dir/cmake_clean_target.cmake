file(REMOVE_RECURSE
  "libhpcfail_trace.a"
)
