file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_trace.dir/csv.cpp.o"
  "CMakeFiles/hpcfail_trace.dir/csv.cpp.o.d"
  "CMakeFiles/hpcfail_trace.dir/environment.cpp.o"
  "CMakeFiles/hpcfail_trace.dir/environment.cpp.o.d"
  "CMakeFiles/hpcfail_trace.dir/failure.cpp.o"
  "CMakeFiles/hpcfail_trace.dir/failure.cpp.o.d"
  "CMakeFiles/hpcfail_trace.dir/lanl_import.cpp.o"
  "CMakeFiles/hpcfail_trace.dir/lanl_import.cpp.o.d"
  "CMakeFiles/hpcfail_trace.dir/layout.cpp.o"
  "CMakeFiles/hpcfail_trace.dir/layout.cpp.o.d"
  "CMakeFiles/hpcfail_trace.dir/system.cpp.o"
  "CMakeFiles/hpcfail_trace.dir/system.cpp.o.d"
  "CMakeFiles/hpcfail_trace.dir/transform.cpp.o"
  "CMakeFiles/hpcfail_trace.dir/transform.cpp.o.d"
  "libhpcfail_trace.a"
  "libhpcfail_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
