
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/anova.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/anova.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/anova.cpp.o.d"
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/chi_square.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/chi_square.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/chi_square.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distribution_fit.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/distribution_fit.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/distribution_fit.cpp.o.d"
  "/root/repo/src/stats/glm.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/glm.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/glm.cpp.o.d"
  "/root/repo/src/stats/linalg.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/linalg.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/linalg.cpp.o.d"
  "/root/repo/src/stats/proportion.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/proportion.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/proportion.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/special.cpp.o.d"
  "/root/repo/src/stats/survival.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/survival.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/survival.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/hpcfail_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
