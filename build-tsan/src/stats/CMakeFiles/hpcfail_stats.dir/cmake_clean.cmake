file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_stats.dir/anova.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/anova.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/chi_square.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/chi_square.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/correlation.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/descriptive.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/distribution_fit.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/distribution_fit.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/glm.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/glm.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/linalg.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/linalg.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/proportion.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/proportion.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/special.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/special.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/survival.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/survival.cpp.o.d"
  "libhpcfail_stats.a"
  "libhpcfail_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
