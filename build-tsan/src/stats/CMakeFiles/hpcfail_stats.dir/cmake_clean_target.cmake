file(REMOVE_RECURSE
  "libhpcfail_stats.a"
)
