# Empty dependencies file for hpcfail_stats.
# This may be replaced when dependencies are built.
