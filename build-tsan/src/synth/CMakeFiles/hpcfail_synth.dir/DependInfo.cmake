
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/cluster_sim.cpp" "src/synth/CMakeFiles/hpcfail_synth.dir/cluster_sim.cpp.o" "gcc" "src/synth/CMakeFiles/hpcfail_synth.dir/cluster_sim.cpp.o.d"
  "/root/repo/src/synth/environment_sim.cpp" "src/synth/CMakeFiles/hpcfail_synth.dir/environment_sim.cpp.o" "gcc" "src/synth/CMakeFiles/hpcfail_synth.dir/environment_sim.cpp.o.d"
  "/root/repo/src/synth/generate.cpp" "src/synth/CMakeFiles/hpcfail_synth.dir/generate.cpp.o" "gcc" "src/synth/CMakeFiles/hpcfail_synth.dir/generate.cpp.o.d"
  "/root/repo/src/synth/scenario.cpp" "src/synth/CMakeFiles/hpcfail_synth.dir/scenario.cpp.o" "gcc" "src/synth/CMakeFiles/hpcfail_synth.dir/scenario.cpp.o.d"
  "/root/repo/src/synth/scenario_config.cpp" "src/synth/CMakeFiles/hpcfail_synth.dir/scenario_config.cpp.o" "gcc" "src/synth/CMakeFiles/hpcfail_synth.dir/scenario_config.cpp.o.d"
  "/root/repo/src/synth/workload_sim.cpp" "src/synth/CMakeFiles/hpcfail_synth.dir/workload_sim.cpp.o" "gcc" "src/synth/CMakeFiles/hpcfail_synth.dir/workload_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/trace/CMakeFiles/hpcfail_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/hpcfail_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/hpcfail_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
