file(REMOVE_RECURSE
  "libhpcfail_synth.a"
)
