file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_synth.dir/cluster_sim.cpp.o"
  "CMakeFiles/hpcfail_synth.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/hpcfail_synth.dir/environment_sim.cpp.o"
  "CMakeFiles/hpcfail_synth.dir/environment_sim.cpp.o.d"
  "CMakeFiles/hpcfail_synth.dir/generate.cpp.o"
  "CMakeFiles/hpcfail_synth.dir/generate.cpp.o.d"
  "CMakeFiles/hpcfail_synth.dir/scenario.cpp.o"
  "CMakeFiles/hpcfail_synth.dir/scenario.cpp.o.d"
  "CMakeFiles/hpcfail_synth.dir/scenario_config.cpp.o"
  "CMakeFiles/hpcfail_synth.dir/scenario_config.cpp.o.d"
  "CMakeFiles/hpcfail_synth.dir/workload_sim.cpp.o"
  "CMakeFiles/hpcfail_synth.dir/workload_sim.cpp.o.d"
  "libhpcfail_synth.a"
  "libhpcfail_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
