# Empty dependencies file for hpcfail_synth.
# This may be replaced when dependencies are built.
